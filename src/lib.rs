//! # memento
//!
//! Umbrella crate for the reproduction of **"Memento: Making Sliding Windows
//! Efficient for Heavy Hitters"** (Ben Basat, Einziger, Keslassy, Orda,
//! Vargaftik, Waisbard — CoNEXT 2018, arXiv:1810.02899).
//!
//! It re-exports the workspace crates under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `memento-core` | Memento, WCSS, H-Memento, the paper's analysis |
//! | [`sketches`] | `memento-sketches` | Space Saving, exact counters, overflow queues, samplers |
//! | [`hierarchy`] | `memento-hierarchy` | IP prefix hierarchies, HHH set machinery |
//! | [`traces`] | `memento-traces` | synthetic traces, flood injection, trace I/O |
//! | [`baselines`] | `memento-baselines` | MST, window-MST, RHHH, detection disciplines, exact oracles |
//! | [`netwide`] | `memento-netwide` | D-Memento / D-H-Memento, communication methods, simulator |
//! | [`shard`] | `memento-shard` | multi-core sharding engine for estimators and HHH algorithms |
//! | [`lb`] | `memento-lb` | load-balancer substrate, ACL mitigation, HTTP-flood scenario |
//!
//! The most common entry points are also re-exported at the top level.
//!
//! ```
//! use memento::{Memento, HMemento, SrcHierarchy};
//!
//! let mut hh = Memento::new(512, 100_000, 1.0 / 64.0, 7);
//! let mut hhh = HMemento::new(SrcHierarchy, 512, 100_000, 0.1, 0.01, 7);
//! for i in 0..10_000u64 {
//!     hh.update(i % 100);
//!     hhh.update((i % 100) as u32);
//! }
//! assert!(hh.estimate(&0) >= 0.0);
//! assert!(!hhh.output(0.005).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use memento_baselines as baselines;
pub use memento_core as core;
pub use memento_hierarchy as hierarchy;
pub use memento_lb as lb;
pub use memento_netwide as netwide;
pub use memento_shard as shard;
pub use memento_sketches as sketches;
pub use memento_traces as traces;

pub use memento_baselines::{ExactWindowHhh, Mst, Rhhh, WindowMst};
pub use memento_core::{analysis, traits, HMemento, Memento, Wcss};
pub use memento_core::{DeltaWindow, FrozenHhh, FrozenWindow, HhhQuery, WindowPatch, WindowQuery};
pub use memento_core::{GrainClock, GrainMap, TimedHhh, TimedWindow};
pub use memento_core::{HhhAlgorithm, SlidingWindowEstimator};
pub use memento_hierarchy::{Hierarchy, Prefix1D, Prefix2D, SrcDstHierarchy, SrcHierarchy};
pub use memento_netwide::{CommMethod, DHMementoController, DMementoController, NetworkSimulator};
pub use memento_shard::{
    EngineSnapshot, HhhEngineSnapshot, HhhSnapshotReader, PublishPolicy, ShardedEstimator,
    ShardedHhh, SnapshotReader,
};
pub use memento_sketches::ExactTimedWindow;
pub use memento_traces::{ArrivalModel, Packet, TimedPacket, TraceGenerator, TracePreset};
