//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate, providing the [`Zipf`] distribution the synthetic trace generator
//! draws flow ranks and octet ranks from.
//!
//! Sampling is inverse-CDF over a precomputed cumulative table: `O(n)` setup
//! (once per generator), `O(log n)` per draw, exact probabilities
//! `P(k) ∝ k^{-s}`. The largest universe in the workspace is 250k flows, so
//! the table costs ~2 MB at worst — paid once per trace preset.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;

use rand::{Rng, RngCore};

/// Types that can be sampled from a distribution (the `rand_distr` trait).
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// The number of elements must be at least 1.
    NumElements,
    /// The exponent must be finite and non-negative.
    Exponent,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NumElements => write!(f, "zipf: number of elements must be >= 1"),
            ZipfError::Exponent => write!(f, "zipf: exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^{-s}`. Samples are returned as the float rank (matching
/// `rand_distr::Zipf`, whose callers convert with `as usize`).
#[derive(Debug, Clone)]
pub struct Zipf<F> {
    /// Cumulative probabilities; `cdf[k-1] = P(rank <= k)`.
    cdf: Vec<f64>,
    _marker: PhantomData<F>,
}

impl Zipf<f64> {
    /// Creates a Zipf distribution over `n` elements with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NumElements);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::Exponent);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the tail.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(Zipf {
            cdf,
            _marker: PhantomData,
        })
    }

    /// Number of elements `n`.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }
}

impl Distribution<f64> for Zipf<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        // First index with cdf >= u; partition_point returns it directly.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
    }

    #[test]
    fn ranks_stay_in_domain_and_skew_toward_small_ranks() {
        let z = Zipf::new(100, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0u64; 100];
        let n = 200_000;
        for _ in 0..n {
            let r = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&r));
            counts[r as usize - 1] += 1;
        }
        // Rank 1 should be about twice as frequent as rank 2 at s = 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.0).abs() < 0.25, "ratio = {ratio}");
        // And the head must dominate the tail.
        let head: u64 = counts[..10].iter().sum();
        assert!(head as f64 / n as f64 > 0.5);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(8, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u64; 8];
        for _ in 0..80_000 {
            counts[z.sample(&mut rng) as usize - 1] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts = {counts:?}");
        }
    }
}
