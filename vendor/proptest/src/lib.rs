//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's property tests use: the [`proptest!`]
//! macro, [`prop_assert!`] / [`prop_assert_eq!`], [`ProptestConfig`],
//! integer-range and tuple strategies, and `prop::collection::vec`.
//!
//! Each test runs `config.cases` randomized cases from a generator seeded
//! deterministically from the test's name (reproducible runs, no flaky CI).
//! Failing cases report their generated inputs. Shrinking is not
//! implemented — failures print the original counterexample instead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::ops::Range;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error produced by a failing `prop_assert!`.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test random generator (xoshiro256++ over SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds the generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Rejection sampling to stay unbiased.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// A value generator (no shrinking in this stand-in).
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy always producing a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One weighted arm of a [`Union`]: its weight and a boxed generator over
/// the union's shared value type.
pub type UnionArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// A weighted union of strategies over one value type, built by
/// [`prop_oneof!`]: each generation picks one arm with probability
/// proportional to its weight.
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

impl<V> Union<V> {
    /// Creates a union from `(weight, generator)` arms.
    ///
    /// # Panics
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof needs at least one arm with positive weight"
        );
        Union { arms }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (weight, arm) in &self.arms {
            if pick < u64::from(*weight) {
                return arm(rng);
            }
            pick -= u64::from(*weight);
        }
        unreachable!("pick is below the weight total")
    }
}

/// Weighted choice between strategies producing the same value type
/// (proptest's `prop_oneof!`, weighted form only: `weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {{
        $crate::Union::new(vec![
            $((
                $weight as u32,
                {
                    let strategy = $strategy;
                    Box::new(move |rng: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&strategy, rng)
                    }) as Box<dyn Fn(&mut $crate::TestRng) -> _>
                },
            )),+
        ])
    }};
}

/// Strategy combinators, mirroring proptest's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt::Debug;
        use std::ops::Range;

        /// Strategy producing `Vec`s of values from an element strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// `Vec` strategy with a length drawn from `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.len.clone().generate(rng);
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the current case with
/// the generated inputs attached.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` randomized cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let inputs = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                let rendered = format!("{:?}", inputs);
                let ($($arg,)+) = inputs;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case + 1, config.cases, e, rendered
                    );
                }
            }
        }
        $crate::__proptest_impl!{ config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_length_range() {
        let mut rng = crate::TestRng::deterministic("vecs");
        for _ in 0..200 {
            let v = Strategy::generate(&prop::collection::vec(0u8..4, 2..9), &mut rng);
            assert!((2..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(
            xs in prop::collection::vec(0u32..100, 1..50),
            (a, b) in (0u8..4, 4u8..8),
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(a < b, "a themed {a} must be below {b}");
            prop_assert_eq!(xs.len(), xs.len());
        }
    }

    #[test]
    fn oneof_respects_weights_and_just_is_constant() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let strategy = prop_oneof![
            9 => Just(7u64),
            1 => 100u64..110,
        ];
        let mut constants = 0;
        for _ in 0..1_000 {
            match Strategy::generate(&strategy, &mut rng) {
                7u64 => constants += 1,
                v => assert!((100..110).contains(&v), "unexpected value {v}"),
            }
        }
        // ~90% of draws should take the heavy arm.
        assert!(
            (800..=1_000).contains(&constants),
            "constants = {constants}"
        );
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            #[allow(dead_code)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        always_fails();
    }
}
