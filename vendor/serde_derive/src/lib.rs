//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a marker on
//! plain-old-data types; nothing serializes at runtime (the wire-format byte
//! accounting in `memento-netwide` is analytic). These derives therefore
//! expand to nothing; the `serde` stub crate provides the matching marker
//! traits so bounds (if ever written) still name real items.

use proc_macro::TokenStream;

/// Marker derive standing in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Marker derive standing in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
