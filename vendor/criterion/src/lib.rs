//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate implements
//! the API subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] — backed by a real (if
//! simple) harness: per benchmark it warms up, then runs timed samples until
//! the measurement budget is spent and reports the median sample time,
//! throughput and spread on stdout.
//!
//! Like real criterion, running under `cargo test` (the harness receives
//! `--test`) only smoke-runs each closure once so test runs stay fast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration (reported as Melem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as MiB/s).
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an identifier from a function name and a parameter.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Creates an identifier from a parameter only.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`]. The stand-in times one
/// routine call per setup call regardless of the hint (equivalent to real
/// criterion's `PerIteration`), which is exact for setup-heavy benches; the
/// variants exist for API parity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input (real criterion batches many per setup).
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One setup per timed iteration — what the stand-in always does.
    PerIteration,
}

/// Passed to the benchmark closure; drives the timed iterations.
pub struct Bencher<'a> {
    mode: Mode,
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (cargo bench).
    Measure,
    /// Single smoke iteration (cargo test).
    Smoke,
}

impl Bencher<'_> {
    /// Calls `routine` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        // Measurement: collect at least `sample_size` samples, stopping early
        // only once the measurement budget is exhausted.
        let measure_start = Instant::now();
        loop {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            let enough = self.samples.len() >= self.sample_size;
            let budget_spent = measure_start.elapsed() >= self.measurement_time;
            if enough && budget_spent {
                break;
            }
            if self.samples.len() >= 4 * self.sample_size {
                break;
            }
        }
    }

    /// Calls `routine` on a fresh input from `setup` per timed iteration,
    /// excluding the setup cost from the measurement (criterion's
    /// `iter_batched`; the `size` hint is accepted for API parity).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }
        let measure_start = Instant::now();
        loop {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            let enough = self.samples.len() >= self.sample_size;
            let budget_spent = measure_start.elapsed() >= self.measurement_time;
            if enough && budget_spent {
                break;
            }
            if self.samples.len() >= 4 * self.sample_size {
                break;
            }
        }
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, id);
        let mut samples = Vec::new();
        let mode = self.criterion.mode;
        let mut bencher = Bencher {
            mode,
            samples: &mut samples,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        self.criterion.report(&full, self.throughput, &samples);
        self
    }

    /// Finishes the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness.
pub struct Criterion {
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        // Under `cargo test` the harness binary is invoked with `--test`;
        // `cargo bench` passes `--bench`. Smoke-run in the former case.
        let smoke = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if smoke { Mode::Smoke } else { Mode::Measure },
        }
    }
}

impl Criterion {
    /// Applies command-line configuration (no-op in the stub; kept for API
    /// parity with `criterion::Criterion::configure_from_args`).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            throughput: None,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::new();
        let mode = self.mode;
        let mut bencher = Bencher {
            mode,
            samples: &mut samples,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        };
        f(&mut bencher);
        let id = id.to_string();
        self.report(&id, None, &samples);
        self
    }

    fn report(&self, id: &str, throughput: Option<Throughput>, samples: &[Duration]) {
        if self.mode == Mode::Smoke {
            println!("{id:<60} smoke-ok");
            return;
        }
        if samples.is_empty() {
            println!("{id:<60} no samples");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                let melem = n as f64 / median.as_secs_f64() / 1e6;
                format!(" thrpt: {melem:>10.3} Melem/s")
            }
            Some(Throughput::Bytes(n)) => {
                let mib = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!(" thrpt: {mib:>10.3} MiB/s")
            }
            None => String::new(),
        };
        println!(
            "{id:<60} time: [{lo:>10.3?} {median:>10.3?} {hi:>10.3?}]{rate} ({} samples)",
            sorted.len()
        );
    }
}

/// Defines a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_as_function_slash_parameter() {
        let id = BenchmarkId::new("update", "tau_2^-6");
        assert_eq!(id.to_string(), "update/tau_2^-6");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn measure_mode_collects_samples() {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Measure,
            samples: &mut samples,
            sample_size: 5,
            measurement_time: Duration::from_millis(10),
            warm_up_time: Duration::from_millis(1),
        };
        let mut acc = 0u64;
        bencher.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(samples.len() >= 5);
    }

    #[test]
    fn smoke_mode_runs_exactly_once() {
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            mode: Mode::Smoke,
            samples: &mut samples,
            sample_size: 5,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_secs(1),
        };
        let mut runs = 0;
        bencher.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(samples.is_empty());
    }
}
