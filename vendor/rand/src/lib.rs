//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *API subset it actually uses*: [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`), [`rngs::StdRng`], [`thread_rng`] and
//! [`seq::SliceRandom::shuffle`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — statistically solid and fast,
//! though the exact value streams differ from upstream `rand` (all tests in
//! this workspace assert statistical properties, not specific draws).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A low-level source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
    /// Creates a generator from operating-system entropy (stand-in: system
    /// clock mixed with a per-process counter).
    fn from_entropy() -> Self {
        Self::seed_from_u64(crate::entropy_seed())
    }
}

/// Types that can be sampled uniformly "at large" by [`Rng::gen`]: the full
/// domain for integers, `[0, 1)` for floats.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integers with uniform range sampling (via Lemire-style rejection).
pub trait UniformInt: Copy {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn uniform_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            #[inline]
            fn uniform_below<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                debug_assert!(span > 0);
                // Rejection sampling on the top bits: unbiased and branch-light.
                let zone = u128::MAX - (u128::MAX - span + 1) % span;
                loop {
                    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    if v <= zone {
                        return (low as i128 + (v % span) as i128) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                UniformInt::uniform_below(self.start, self.end, rng)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if hi < <$t>::MAX {
                    UniformInt::uniform_below(lo, hi + 1, rng)
                } else if lo > <$t>::MIN {
                    UniformInt::uniform_below(lo - 1, hi, rng) + 1
                } else {
                    StandardSample::sample_standard(rng)
                }
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = StandardSample::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// High-level convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (full domain for integers, `[0,1)` floats).
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    /// Non-deterministic generator handed out by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    nanos ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed) ^ std::process::id() as u64
}

/// Returns a fresh pseudo-random generator seeded from ambient entropy.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(<rngs::StdRng as SeedableRng>::seed_from_u64(entropy_seed()))
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (the subset the workspace uses).
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// `rand::prelude`-alike for convenience.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_covers_and_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(5usize..15);
            assert!((5..15).contains(&v));
            seen[v - 5] = true;
        }
        assert!(seen.iter().all(|&s| s), "not all values hit: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(0u8..=255);
            let _ = v; // full-domain inclusive range must not panic
        }
        let f = rng.gen_range(f64::MIN_POSITIVE..1.0);
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u8> = (0..=255).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..=255).collect::<Vec<u8>>());
        assert_ne!(v, (0..=255).collect::<Vec<u8>>());
    }

    #[test]
    fn thread_rng_produces_distinct_streams() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
