//! Offline stand-in for the [`serde`](https://serde.rs) framework.
//!
//! This workspace derives `Serialize`/`Deserialize` on its wire-facing types
//! so that swapping in the real `serde` is a manifest change, but the build
//! environment has no crates.io access and nothing actually serializes at
//! runtime. The stub provides marker traits and re-exports the no-op derive
//! macros from the vendored `serde_derive`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
