//! Quickstart: sliding-window heavy hitters with Memento.
//!
//! Generates a skewed synthetic trace, feeds it to Memento (sampled), to WCSS
//! (the unsampled reference) and to an exact sliding-window counter, then
//! compares the three on the top flows.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use memento::sketches::ExactWindow;
use memento::{Memento, TraceGenerator, TracePreset, Wcss};

fn main() {
    // Window of 100k packets, 512 counters, one Full update every 32 packets.
    let window = 100_000;
    let counters = 512;
    let tau = 1.0 / 32.0;

    let mut memento = Memento::new(counters, window, tau, 42);
    let mut wcss = Wcss::new(counters, window);
    let mut exact = ExactWindow::new(window);

    // A backbone-like synthetic trace (stands in for the paper's CAIDA trace).
    let mut trace = TraceGenerator::new(TracePreset::backbone(), 7);
    let packets = 400_000;
    println!("processing {packets} packets (window = {window}, tau = {tau:.4})...");
    for _ in 0..packets {
        let pkt = trace.next_packet();
        let flow = pkt.flow();
        memento.update(flow);
        wcss.update(flow);
        exact.add(flow);
    }

    // Compare the three on the true top-10 flows of the current window.
    let mut top = exact.heavy_hitters(0);
    top.truncate(10);
    println!(
        "\n{:>20} {:>12} {:>12} {:>12}",
        "flow", "exact", "wcss", "memento"
    );
    for (flow, real) in &top {
        println!(
            "{:>20x} {:>12} {:>12.0} {:>12.0}",
            flow,
            real,
            wcss.estimate(flow),
            memento.estimate(flow)
        );
    }

    // Report the heavy hitters above 1% of the window.
    let threshold = 0.01 * window as f64;
    let hh = memento.heavy_hitters(threshold);
    println!(
        "\nflows above 1% of the window according to Memento: {}",
        hh.len()
    );
    for (flow, est) in hh.iter().take(5) {
        println!(
            "  flow {flow:x}: ~{est:.0} packets (exact {})",
            exact.query(flow)
        );
    }

    println!(
        "\nMemento performed {} Full updates out of {} packets ({:.2}% of the work of WCSS)",
        memento.full_updates(),
        memento.processed(),
        100.0 * memento.full_updates() as f64 / memento.processed() as f64
    );
}
