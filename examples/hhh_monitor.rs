//! Hierarchical heavy-hitter monitoring with H-Memento.
//!
//! Watches a synthetic edge-router trace and periodically prints the subnets
//! (1D source hierarchy) and source/destination prefix pairs (2D hierarchy)
//! that exceed a threshold of the sliding window, comparing the 1D output
//! against an exact oracle.
//!
//! Run with:
//! ```text
//! cargo run --release --example hhh_monitor
//! ```

use memento::{
    ExactWindowHhh, HMemento, SrcDstHierarchy, SrcHierarchy, TraceGenerator, TracePreset,
};

fn main() {
    let window = 50_000;
    let theta = 0.05;
    // tau >= H * 2^-10, the accuracy floor the paper's evaluation uses.
    let tau_1d = (5.0f64 * 2f64.powi(-6)).min(1.0);
    let tau_2d = (25.0f64 * 2f64.powi(-6)).min(1.0);

    let mut hhh_1d = HMemento::new(SrcHierarchy, 512 * 5, window, tau_1d, 0.01, 3);
    let mut hhh_2d = HMemento::new(SrcDstHierarchy, 512 * 25, window, tau_2d, 0.01, 3);
    let mut oracle = ExactWindowHhh::new(SrcHierarchy, window);

    let mut trace = TraceGenerator::new(TracePreset::edge(), 11);
    let total = 200_000;
    let report_every = 50_000;

    println!("monitoring {total} packets, window {window}, theta {theta}");
    for i in 1..=total {
        let pkt = trace.next_packet();
        hhh_1d.update(pkt.src);
        hhh_2d.update(pkt.src_dst());
        oracle.update(pkt.src);

        if i % report_every == 0 {
            println!("\n=== after {i} packets ===");
            let approx = hhh_1d.output(theta);
            let exact = oracle.output(theta);
            println!("source-hierarchy HHH (H-Memento, tau={tau_1d:.3}):");
            for p in &approx {
                let marker = if exact.contains(p) { ' ' } else { '*' };
                println!("  {marker} {p}  ~{:.0} packets", hhh_1d.estimate(p));
            }
            println!(
                "  ({} exact HHHs, * marks prefixes only the approximation reports)",
                exact.len()
            );
            let missed: Vec<_> = exact.iter().filter(|p| !approx.contains(p)).collect();
            if missed.is_empty() {
                println!("  no exact HHH was missed");
            } else {
                println!("  MISSED: {missed:?}");
            }

            let approx2 = hhh_2d.output(theta);
            println!(
                "source x destination HHH (top {} pairs):",
                approx2.len().min(5)
            );
            for p in approx2.iter().take(5) {
                println!("    {p}  ~{:.0} packets", hhh_2d.estimate(p));
            }
        }
    }

    println!(
        "\n1D H-Memento did {} Full updates for {} packets (constant-time updates regardless of H)",
        hhh_1d.full_updates(),
        hhh_1d.processed()
    );
}
