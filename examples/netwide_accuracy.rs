//! Network-wide accuracy under a bandwidth budget (the setting of Figure 9).
//!
//! Spreads a datacenter-like trace over ten measurement points and compares
//! the controller's per-subnet estimates against the exact network-wide
//! sliding window for the three communication methods, all under the same
//! 1-byte-per-packet budget. Also prints the analytically optimal batch size
//! from the paper's §5.2 model.
//!
//! Run with:
//! ```text
//! cargo run --release --example netwide_accuracy
//! ```

use memento::analysis::NetworkBudget;
use memento::hierarchy::Prefix1D;
use memento::netwide::{NetworkSimulator, SimConfig, SimMetrics, WireFormat};
use memento::{CommMethod, SrcHierarchy, TraceGenerator, TracePreset};

fn main() {
    let window = 100_000;
    let budget = 1.0;

    // What batch size does the paper's analysis recommend for this setting?
    let model = NetworkBudget {
        header_overhead: 64.0,
        sample_bytes: 4.0,
        points: 10,
        hierarchy: 5,
        window,
        delta: 0.0001,
        budget,
    };
    let (optimal_b, bound) = model.optimal_batch(1_000);
    println!(
        "analysis: optimal batch size b* = {optimal_b}, guaranteed error <= {:.0} packets ({:.2}% of the window)\n",
        bound,
        100.0 * bound / window as f64
    );

    let methods = [
        CommMethod::Aggregation,
        CommMethod::Sample,
        CommMethod::Batch(100),
        CommMethod::Batch(optimal_b),
    ];

    println!(
        "{:<16} {:>14} {:>14} {:>12} {:>10}",
        "method", "RMSE (/8 est.)", "MAE", "reports", "bytes/pkt"
    );
    for method in methods {
        let config = SimConfig {
            points: 10,
            window,
            budget,
            counters: 4_096,
            method,
            delta: 0.01,
            seed: 9,
        };
        let mut sim = NetworkSimulator::new(SrcHierarchy, config, WireFormat::tcp_src());
        let mut trace = TraceGenerator::new(TracePreset::datacenter(), 5);
        let mut metrics = SimMetrics::new();
        let total = 3 * window;
        for i in 0..total {
            let pkt = trace.next_packet();
            sim.process(pkt.src);
            // On-arrival error of the packet's /8 estimate, after warm-up.
            if i > window && i % 50 == 0 {
                let p = Prefix1D::new(pkt.src, 8);
                metrics.record(sim.estimate(&p), sim.exact(&p) as f64);
            }
        }
        println!(
            "{:<16} {:>14.0} {:>14.0} {:>12} {:>10.3}",
            method.name(),
            metrics.rmse(),
            metrics.mae(),
            sim.reports(),
            sim.bytes_per_packet()
        );
    }

    println!(
        "\nBatch (especially at the analytic b*) delivers the best accuracy for the same budget;"
    );
    println!("Sample wastes most of its budget on headers; Aggregation reports too rarely.");
}
