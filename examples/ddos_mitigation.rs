//! Network-wide HTTP-flood detection and mitigation (the paper's §6.4
//! application).
//!
//! Ten simulated load balancers report to a centralized controller under a
//! 1-byte-per-packet budget; an HTTP flood from 50 random 8-bit subnets is
//! injected at 70% of the traffic; detected subnets are blocked via the
//! proxies' ACLs. The example prints the detection timeline and the fraction
//! of flood requests that reached the backends for the Batch, Sample and
//! Aggregation communication methods.
//!
//! Run with:
//! ```text
//! cargo run --release --example ddos_mitigation
//! ```

use memento::lb::scenario::FloodConfig;
use memento::lb::{FloodExperiment, FloodExperimentConfig};
use memento::{CommMethod, TracePreset};

fn main() {
    let window = 100_000;
    let base = FloodExperimentConfig {
        proxies: 10,
        backends_per_proxy: 4,
        window,
        budget: 1.0,
        counters: 4_096,
        method: CommMethod::Batch(44),
        theta: 0.01,
        total_packets: 4 * window,
        flood: FloodConfig {
            num_subnets: 50,
            flood_probability: 0.7,
            start: window,
        },
        preset: TracePreset::backbone(),
        check_interval: 2_000,
        mitigate: true,
        seed: 2018,
    };

    println!(
        "HTTP flood: 50 subnets at 70% of traffic from packet {}, window {window}, budget 1 B/pkt\n",
        base.flood.start
    );

    for method in [
        CommMethod::Batch(44),
        CommMethod::Sample,
        CommMethod::Aggregation,
    ] {
        let mut cfg = base.clone();
        cfg.method = method;
        let result = FloodExperiment::new(cfg).run();
        println!("--- {} ---", result.method);
        println!(
            "  detected {}/{} attacking subnets",
            result.detected_subnets(),
            result.attack_prefixes.len()
        );
        println!(
            "  flood requests reaching backends: {} of {} ({:.2}%)",
            result.missed_attack_requests,
            result.total_attack_requests,
            100.0 * result.miss_rate()
        );
        println!(
            "  mean detection delay vs OPT: {:.0} packets",
            result.mean_delay_vs_opt()
        );
        println!(
            "  control bandwidth used: {:.3} bytes/packet",
            result.bytes_per_packet
        );
        print!("  detection timeline (packets -> detected subnets): ");
        for (i, detected) in result
            .detection_curve
            .iter()
            .filter(|(i, _)| i % (base.window / 2) < base.check_interval)
        {
            print!("{i}:{detected} ");
        }
        println!("\n");
    }

    println!("Batch achieves near-optimal detection; Aggregation's large, infrequent snapshots miss most of the flood.");
}
