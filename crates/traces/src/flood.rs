//! The HTTP-flood attack scenario of §6.4.
//!
//! The paper builds its flood trace as follows: pick 50 random 8-bit subnets;
//! pick a random start line; up to that line the base trace is unmodified;
//! from that line on, each emitted line is — with probability 0.7 — a flood
//! request from a uniformly chosen attacking subnet, and with probability 0.3
//! the next line of the original trace. The attacking subnets therefore carry
//! ~70% of the traffic once the flood begins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use memento_hierarchy::Prefix1D;

use crate::packet::Packet;

/// One packet of the flood trace, labeled with ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodPacket {
    /// The packet itself.
    pub packet: Packet,
    /// True when the packet belongs to the injected flood.
    pub is_attack: bool,
    /// Index of the attacking subnet (0..num_subnets) for attack packets.
    pub subnet: Option<usize>,
}

/// Configuration of the flood scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodConfig {
    /// Number of attacking 8-bit subnets (the paper uses 50).
    pub num_subnets: usize,
    /// Probability that a post-start line is a flood line (the paper uses 0.7).
    pub flood_probability: f64,
    /// Line at which the flood begins.
    pub start: usize,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            num_subnets: 50,
            flood_probability: 0.7,
            start: 0,
        }
    }
}

/// Iterator adapter that injects an HTTP flood into a base trace.
#[derive(Debug, Clone)]
pub struct FloodScenario<I> {
    base: I,
    config: FloodConfig,
    subnets: Vec<u8>,
    victims: Vec<u32>,
    rng: StdRng,
    emitted: usize,
}

impl<I: Iterator<Item = Packet>> FloodScenario<I> {
    /// Creates a flood scenario over a base trace.
    ///
    /// # Panics
    /// Panics if `num_subnets` is 0 or larger than 256, or if
    /// `flood_probability` is not in `(0, 1)`.
    pub fn new(base: I, config: FloodConfig, seed: u64) -> Self {
        assert!(
            config.num_subnets > 0 && config.num_subnets <= 256,
            "num_subnets must be in 1..=256"
        );
        assert!(
            config.flood_probability > 0.0 && config.flood_probability < 1.0,
            "flood probability must be in (0,1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        // Choose distinct random 8-bit subnets.
        let mut subnets = Vec::with_capacity(config.num_subnets);
        let mut used = [false; 256];
        while subnets.len() < config.num_subnets {
            let s: u8 = rng.gen();
            if !used[s as usize] {
                used[s as usize] = true;
                subnets.push(s);
            }
        }
        // A handful of victim (destination) addresses, as a flood targets a
        // small set of service endpoints behind the load balancers.
        let victims: Vec<u32> = (0..4).map(|_| rng.gen()).collect();
        FloodScenario {
            base,
            config,
            subnets,
            victims,
            rng,
            emitted: 0,
        }
    }

    /// The attacking subnets as `/8` prefixes (ground truth for detection).
    pub fn attack_prefixes(&self) -> Vec<Prefix1D> {
        self.subnets
            .iter()
            .map(|&s| Prefix1D::new((s as u32) << 24, 8))
            .collect()
    }

    /// The configured scenario parameters.
    pub fn config(&self) -> &FloodConfig {
        &self.config
    }

    fn flood_packet(&mut self) -> (Packet, usize) {
        let idx = self.rng.gen_range(0..self.subnets.len());
        let subnet = self.subnets[idx];
        // A flood source inside the subnet; low-order bits vary so the attack
        // is spread over many hosts (per-flow detection would miss it).
        let host: u32 = self.rng.gen_range(0..1 << 24);
        let src = ((subnet as u32) << 24) | host;
        let dst = self.victims[self.rng.gen_range(0..self.victims.len())];
        (Packet::new(src, dst), idx)
    }
}

impl<I: Iterator<Item = Packet>> Iterator for FloodScenario<I> {
    type Item = FloodPacket;

    fn next(&mut self) -> Option<FloodPacket> {
        let out = if self.emitted >= self.config.start
            && self.rng.gen::<f64>() < self.config.flood_probability
        {
            let (packet, subnet) = self.flood_packet();
            FloodPacket {
                packet,
                is_attack: true,
                subnet: Some(subnet),
            }
        } else {
            let packet = self.base.next()?;
            FloodPacket {
                packet,
                is_attack: false,
                subnet: None,
            }
        };
        self.emitted += 1;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{TraceGenerator, TracePreset};

    fn scenario(start: usize, seed: u64) -> FloodScenario<TraceGenerator> {
        let base = TraceGenerator::new(TracePreset::tiny(), seed);
        FloodScenario::new(
            base,
            FloodConfig {
                num_subnets: 50,
                flood_probability: 0.7,
                start,
            },
            seed,
        )
    }

    #[test]
    fn flood_starts_at_the_configured_line() {
        let mut s = scenario(1000, 3);
        let pre: Vec<FloodPacket> = (&mut s).take(1000).collect();
        assert!(pre.iter().all(|p| !p.is_attack));
        let post: Vec<FloodPacket> = (&mut s).take(5000).collect();
        let attacks = post.iter().filter(|p| p.is_attack).count();
        let frac = attacks as f64 / post.len() as f64;
        assert!((frac - 0.7).abs() < 0.05, "attack fraction = {frac}");
    }

    #[test]
    fn attack_packets_come_from_attack_prefixes() {
        let mut s = scenario(0, 9);
        let prefixes = s.attack_prefixes();
        assert_eq!(prefixes.len(), 50);
        for p in (&mut s).take(3000) {
            if p.is_attack {
                let subnet = p.subnet.expect("attack packets carry a subnet index");
                assert!(prefixes[subnet].contains_addr(p.packet.src));
                assert!(prefixes.iter().any(|pre| pre.contains_addr(p.packet.src)));
            }
        }
    }

    #[test]
    fn attack_subnets_are_distinct() {
        let s = scenario(0, 11);
        let prefixes = s.attack_prefixes();
        let set: std::collections::HashSet<_> = prefixes.iter().collect();
        assert_eq!(set.len(), prefixes.len());
    }

    #[test]
    #[should_panic(expected = "num_subnets")]
    fn too_many_subnets_panics() {
        let base = TraceGenerator::new(TracePreset::tiny(), 0);
        let _ = FloodScenario::new(
            base,
            FloodConfig {
                num_subnets: 300,
                flood_probability: 0.7,
                start: 0,
            },
            0,
        );
    }
}
