//! # memento-traces
//!
//! Packet-trace substrate for the [Memento (CoNEXT 2018)][paper] reproduction.
//!
//! The paper evaluates on three real packet traces — a CAIDA backbone link, a
//! university datacenter and an edge router — that are not redistributable.
//! This crate provides the closest synthetic equivalents (documented in
//! `DESIGN.md` §5): heavy-tailed flow-size distributions with per-preset skew
//! and subnet locality, so that all evaluated quantities (speedups, RMSE,
//! HHH accuracy per prefix level, detection latency) exercise the same code
//! paths and exhibit the same qualitative behaviour. Real traces can be
//! substituted through the CSV reader in [`io`].
//!
//! Components:
//!
//! * [`Packet`] — the (source, destination) key of one packet.
//! * [`synthetic`] — the trace generator and the [`TracePreset`]s standing in
//!   for the paper's Backbone / Datacenter / Edge traces.
//! * [`flood`] — the HTTP-flood transformation of §6.4 (50 random 8-bit
//!   subnets injected at 70% of the traffic from a random start point).
//! * [`emerging`] — the "new heavy hitter appears mid-measurement" scenario
//!   behind Figure 1b.
//! * [`io`] — CSV trace reader/writer (count-based and timestamped).
//! * [`timed`] — deterministic arrival-clock stamping ([`ArrivalModel`])
//!   so traces can be replayed at recorded timestamps through the time
//!   plane (`TimedWindow` in `memento-core`).
//!
//! [paper]: https://arxiv.org/abs/1810.02899

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emerging;
pub mod flood;
pub mod io;
pub mod packet;
pub mod synthetic;
pub mod timed;

pub use emerging::EmergingFlowScenario;
pub use flood::{FloodPacket, FloodScenario};
pub use packet::Packet;
pub use synthetic::{TraceGenerator, TracePreset};
pub use timed::{ArrivalModel, TimedPacket};
