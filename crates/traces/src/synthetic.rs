//! Synthetic packet-trace generation.
//!
//! Stand-in for the paper's three real traces (see DESIGN.md §5). A preset
//! fixes (i) the number of distinct flows, (ii) the skew of the flow-size
//! Zipf distribution, and (iii) the skew of the per-octet address
//! distribution that creates subnet locality (so that subnets, not just
//! flows, are heavy-tailed — which is what the HHH experiments need).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Zipf};

use crate::packet::Packet;

/// Parameters of a synthetic trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TracePreset {
    /// Human-readable name (used in bench output).
    pub name: &'static str,
    /// Number of distinct flows in the universe.
    pub num_flows: usize,
    /// Zipf exponent of the flow-size distribution (larger = more skewed).
    pub flow_skew: f64,
    /// Zipf exponent of each address octet (larger = traffic concentrates in
    /// fewer subnets).
    pub octet_skew: f64,
}

impl TracePreset {
    /// Backbone-like preset: the heaviest-tailed of the three — many distinct
    /// flows, moderate skew (stands in for the CAIDA equinix-chicago trace).
    pub fn backbone() -> Self {
        TracePreset {
            name: "backbone",
            num_flows: 250_000,
            flow_skew: 0.9,
            octet_skew: 0.7,
        }
    }

    /// Datacenter-like preset: the most skewed of the three, few very large
    /// flows and strong subnet concentration (stands in for the IMC'10 UNIV1
    /// trace; the paper notes this trace is noticeably skewed).
    pub fn datacenter() -> Self {
        TracePreset {
            name: "datacenter",
            num_flows: 40_000,
            flow_skew: 1.2,
            octet_skew: 1.1,
        }
    }

    /// Edge-router-like preset: in between the other two (stands in for the
    /// UCLA edge trace).
    pub fn edge() -> Self {
        TracePreset {
            name: "edge",
            num_flows: 100_000,
            flow_skew: 1.0,
            octet_skew: 0.9,
        }
    }

    /// All three presets, in the order the paper's figures list them.
    pub fn all() -> Vec<TracePreset> {
        vec![Self::edge(), Self::datacenter(), Self::backbone()]
    }

    /// A small preset for unit tests and doc examples.
    pub fn tiny() -> Self {
        TracePreset {
            name: "tiny",
            num_flows: 500,
            flow_skew: 1.1,
            octet_skew: 1.0,
        }
    }
}

/// Infinite iterator of packets drawn from a [`TracePreset`].
///
/// Flow identities are fixed up front (each flow gets a source and
/// destination address whose octets are drawn from a skewed distribution
/// routed through per-position permutations); each emitted packet then picks
/// a flow from a Zipf distribution over flow ranks.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    flows: Vec<Packet>,
    zipf: Zipf<f64>,
    rng: StdRng,
    preset: TracePreset,
}

impl TraceGenerator {
    /// Creates a deterministic generator for a preset.
    pub fn new(preset: TracePreset, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let flows = Self::build_flow_universe(&preset, &mut rng);
        let zipf = Zipf::new(preset.num_flows as u64, preset.flow_skew)
            .expect("zipf parameters are validated by the preset");
        TraceGenerator {
            flows,
            zipf,
            rng,
            preset,
        }
    }

    /// The preset this generator was built from.
    pub fn preset(&self) -> &TracePreset {
        &self.preset
    }

    /// Number of distinct flows in the universe.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    fn build_flow_universe(preset: &TracePreset, rng: &mut StdRng) -> Vec<Packet> {
        // Per-octet-position permutations: the Zipf rank of an octet is
        // mapped through a random permutation so that the "popular" octet
        // values differ per position and per seed while remaining skewed.
        let mut perms: Vec<[u8; 256]> = Vec::with_capacity(8);
        for _ in 0..8 {
            let mut p: Vec<u8> = (0..=255u8).collect();
            p.shuffle(rng);
            let mut arr = [0u8; 256];
            arr.copy_from_slice(&p);
            perms.push(arr);
        }
        let octet_dist =
            Zipf::new(256, preset.octet_skew).expect("octet zipf parameters are valid");
        let mut universe = std::collections::HashSet::with_capacity(preset.num_flows);
        let mut flows = Vec::with_capacity(preset.num_flows);
        while flows.len() < preset.num_flows {
            let mut octets = [0u8; 8];
            for (pos, o) in octets.iter_mut().enumerate() {
                let rank = octet_dist.sample(rng) as usize - 1; // 0-based rank
                *o = perms[pos][rank.min(255)];
            }
            let pkt = Packet::from_octets(
                [octets[0], octets[1], octets[2], octets[3]],
                [octets[4], octets[5], octets[6], octets[7]],
            );
            if universe.insert(pkt.flow()) {
                flows.push(pkt);
            }
        }
        flows
    }

    /// Generates `n` packets into a vector.
    pub fn generate(&mut self, n: usize) -> Vec<Packet> {
        (0..n).map(|_| self.next_packet()).collect()
    }

    /// Draws the next packet.
    #[inline]
    pub fn next_packet(&mut self) -> Packet {
        let rank = self.zipf.sample(&mut self.rng) as usize - 1;
        self.flows[rank.min(self.flows.len() - 1)]
    }

    /// Draws a uniformly random flow from the universe (used by scenarios
    /// that need "background" addresses).
    pub fn random_flow(&mut self) -> Packet {
        let idx = self.rng.gen_range(0..self.flows.len());
        self.flows[idx]
    }
}

impl Iterator for TraceGenerator {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        Some(self.next_packet())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = TraceGenerator::new(TracePreset::tiny(), 1);
        let mut b = TraceGenerator::new(TracePreset::tiny(), 1);
        assert_eq!(a.generate(500), b.generate(500));
        let mut c = TraceGenerator::new(TracePreset::tiny(), 2);
        assert_ne!(a.generate(500), c.generate(500));
    }

    #[test]
    fn flow_distribution_is_heavy_tailed() {
        let mut gen = TraceGenerator::new(TracePreset::tiny(), 7);
        let pkts = gen.generate(20_000);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for p in &pkts {
            *counts.entry(p.flow()).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        let top10: u64 = sizes.iter().take(10).sum();
        // With Zipf skew ~1.1 over 500 flows the top-10 flows must carry a
        // large share of the traffic.
        assert!(
            top10 as f64 / total as f64 > 0.3,
            "trace is not heavy-tailed: top10 share = {}",
            top10 as f64 / total as f64
        );
        // And still many distinct flows must appear.
        assert!(
            counts.len() > 100,
            "too few distinct flows: {}",
            counts.len()
        );
    }

    #[test]
    fn presets_are_ordered_by_skew() {
        let dc = TracePreset::datacenter();
        let bb = TracePreset::backbone();
        let edge = TracePreset::edge();
        assert!(dc.flow_skew > edge.flow_skew);
        assert!(edge.flow_skew > bb.flow_skew);
        assert!(dc.num_flows < edge.num_flows);
        assert!(edge.num_flows < bb.num_flows);
        assert_eq!(TracePreset::all().len(), 3);
    }

    #[test]
    fn subnets_show_locality() {
        // The /8 distribution of sources must also be skewed (needed for HHH
        // experiments to be meaningful).
        let mut gen = TraceGenerator::new(TracePreset::tiny(), 3);
        let pkts = gen.generate(20_000);
        let mut by_subnet: HashMap<u8, u64> = HashMap::new();
        for p in &pkts {
            *by_subnet.entry((p.src >> 24) as u8).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = by_subnet.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sizes.iter().sum();
        assert!(
            sizes[0] as f64 / total as f64 > 0.05,
            "top /8 subnet too small: {}",
            sizes[0] as f64 / total as f64
        );
    }

    #[test]
    fn random_flow_comes_from_universe() {
        let mut gen = TraceGenerator::new(TracePreset::tiny(), 3);
        let universe: std::collections::HashSet<u64> =
            (0..gen.num_flows()).map(|i| gen.flows[i].flow()).collect();
        for _ in 0..100 {
            assert!(universe.contains(&gen.random_flow().flow()));
        }
    }
}
