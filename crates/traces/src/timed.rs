//! Arrival-time stamping for trace replay on a real clock.
//!
//! The count-based pipeline treats a trace as a pure packet sequence; the
//! time plane (PR 9) replays the same sequence *at its recorded arrival
//! timestamps*, driving `TimedWindow::record_at` / `advance_to` so that idle
//! gaps and floods exercise the grain clock instead of being flattened into
//! a uniform stream. This module stamps synthetic traces with deterministic
//! arrival clocks modelling the workloads the gate's `bursty-replay` row
//! measures: uniform pacing, idle-gap-then-flood bursts, and a diurnal
//! rate rotation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;

/// One packet together with its arrival timestamp in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedPacket {
    /// Arrival time, in nanoseconds since the start of the trace.
    pub nanos: u64,
    /// The packet itself.
    pub packet: Packet,
}

impl TimedPacket {
    /// Bundles a packet with its arrival time.
    pub fn new(nanos: u64, packet: Packet) -> Self {
        Self { nanos, packet }
    }
}

/// Deterministic arrival-clock models for stamping a packet sequence.
///
/// All gaps are drawn from a seeded [`StdRng`], so the same
/// `(model, seed, len)` triple always yields the same clock — replay
/// experiments and the differential tests depend on that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalModel {
    /// Constant spacing: one packet every `gap_nanos` nanoseconds (with a
    /// ±25% jitter so grain boundaries do not align with packet indices).
    Uniform {
        /// Mean inter-arrival gap in nanoseconds.
        gap_nanos: u64,
    },
    /// Bursty arrivals: floods of `burst_len` packets at `flood_gap_nanos`
    /// spacing, separated by idle gaps of `idle_nanos`. This is the shape
    /// that stresses the wholesale-clear path (idle gap outruns the ring)
    /// followed by schedule-overrun re-anchoring (flood outruns the grain
    /// budget).
    Bursty {
        /// Packets per flood.
        burst_len: u64,
        /// Inter-arrival gap inside a flood, in nanoseconds.
        flood_gap_nanos: u64,
        /// Idle gap between floods, in nanoseconds.
        idle_nanos: u64,
    },
    /// Diurnal rotation: the mean gap alternates between `fast_gap_nanos`
    /// and `slow_gap_nanos` every `period` packets, modelling day/night
    /// rate rotation across many windows.
    Diurnal {
        /// Mean gap during the fast half-period, in nanoseconds.
        fast_gap_nanos: u64,
        /// Mean gap during the slow half-period, in nanoseconds.
        slow_gap_nanos: u64,
        /// Packets per half-period.
        period: u64,
    },
}

impl ArrivalModel {
    /// Stamps `packets` with arrival times under this model, deterministically
    /// from `seed`. Timestamps are strictly derived from accumulated gaps and
    /// therefore monotone non-decreasing.
    pub fn stamp(&self, packets: &[Packet], seed: u64) -> Vec<TimedPacket> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        let mut out = Vec::with_capacity(packets.len());
        for (i, &packet) in packets.iter().enumerate() {
            let gap = match *self {
                ArrivalModel::Uniform { gap_nanos } => jitter(&mut rng, gap_nanos),
                ArrivalModel::Bursty {
                    burst_len,
                    flood_gap_nanos,
                    idle_nanos,
                } => {
                    let len = burst_len.max(1);
                    if (i as u64).is_multiple_of(len) && i > 0 {
                        idle_nanos
                    } else {
                        jitter(&mut rng, flood_gap_nanos)
                    }
                }
                ArrivalModel::Diurnal {
                    fast_gap_nanos,
                    slow_gap_nanos,
                    period,
                } => {
                    let phase = (i as u64 / period.max(1)) % 2;
                    let mean = if phase == 0 {
                        fast_gap_nanos
                    } else {
                        slow_gap_nanos
                    };
                    jitter(&mut rng, mean)
                }
            };
            now = now.saturating_add(gap);
            out.push(TimedPacket::new(now, packet));
        }
        out
    }
}

/// Draws a gap uniformly from `[3·mean/4, 5·mean/4]` (or exactly `mean`
/// when it is too small to jitter).
fn jitter(rng: &mut StdRng, mean: u64) -> u64 {
    let quarter = mean / 4;
    if quarter == 0 {
        return mean;
    }
    mean - quarter + rng.gen_range(0..=quarter * 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{TraceGenerator, TracePreset};

    fn packets(n: usize) -> Vec<Packet> {
        TraceGenerator::new(TracePreset::tiny(), 7).generate(n)
    }

    #[test]
    fn stamping_is_deterministic_and_monotone() {
        let pkts = packets(500);
        let model = ArrivalModel::Bursty {
            burst_len: 64,
            flood_gap_nanos: 100,
            idle_nanos: 1_000_000,
        };
        let a = model.stamp(&pkts, 11);
        let b = model.stamp(&pkts, 11);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].nanos <= w[1].nanos));
        let c = model.stamp(&pkts, 12);
        assert_ne!(a, c, "different seeds should move the clock");
    }

    #[test]
    fn bursty_model_interleaves_idle_gaps() {
        let pkts = packets(300);
        let stamped = ArrivalModel::Bursty {
            burst_len: 100,
            flood_gap_nanos: 10,
            idle_nanos: 5_000,
        }
        .stamp(&pkts, 3);
        let idle_gaps = stamped
            .windows(2)
            .filter(|w| w[1].nanos - w[0].nanos >= 5_000)
            .count();
        assert_eq!(idle_gaps, 2, "one idle gap per flood boundary");
    }

    #[test]
    fn diurnal_model_rotates_the_rate() {
        let pkts = packets(400);
        let stamped = ArrivalModel::Diurnal {
            fast_gap_nanos: 100,
            slow_gap_nanos: 10_000,
            period: 200,
        }
        .stamp(&pkts, 5);
        let fast_span = stamped[199].nanos - stamped[0].nanos;
        let slow_span = stamped[399].nanos - stamped[200].nanos;
        assert!(
            slow_span > fast_span * 10,
            "slow half-period should dominate: {fast_span} vs {slow_span}"
        );
    }
}
