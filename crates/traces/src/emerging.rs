//! The "new heavy hitter appears mid-measurement" scenario of §3 / Figure 1b.
//!
//! A new flow appears at a configurable point in the stream and from then on
//! consumes, at a constant rate, a given fraction of the traffic. The figure
//! sweeps that fraction (expressed as a multiple of the detection threshold
//! θ) and measures how long each measurement discipline takes to report the
//! flow as a heavy hitter.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;

/// Iterator producing the emerging-heavy-hitter workload.
#[derive(Debug, Clone)]
pub struct EmergingFlowScenario<I> {
    base: I,
    /// The new flow's packet.
    new_flow: Packet,
    /// Fraction of post-appearance traffic belonging to the new flow.
    fraction: f64,
    /// Packet index at which the new flow appears.
    start: usize,
    emitted: usize,
    rng: StdRng,
}

impl<I: Iterator<Item = Packet>> EmergingFlowScenario<I> {
    /// Creates the scenario.
    ///
    /// # Panics
    /// Panics if `fraction` is not in `(0, 1)`.
    pub fn new(base: I, new_flow: Packet, fraction: f64, start: usize, seed: u64) -> Self {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must be in (0,1), got {fraction}"
        );
        EmergingFlowScenario {
            base,
            new_flow,
            fraction,
            start,
            emitted: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The new flow whose detection time is being measured.
    pub fn new_flow(&self) -> Packet {
        self.new_flow
    }

    /// Packet index at which the new flow appears.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Post-appearance traffic fraction of the new flow.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }
}

impl<I: Iterator<Item = Packet>> Iterator for EmergingFlowScenario<I> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        let out = if self.emitted >= self.start && self.rng.gen::<f64>() < self.fraction {
            self.new_flow
        } else {
            self.base.next()?
        };
        self.emitted += 1;
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{TraceGenerator, TracePreset};

    #[test]
    fn new_flow_absent_before_start_present_after() {
        let base = TraceGenerator::new(TracePreset::tiny(), 5);
        let new_flow = Packet::from_octets([222, 222, 222, 222], [1, 1, 1, 1]);
        let mut s = EmergingFlowScenario::new(base, new_flow, 0.3, 500, 5);
        let pre: Vec<Packet> = (&mut s).take(500).collect();
        assert!(pre.iter().all(|p| *p != new_flow));
        let post: Vec<Packet> = (&mut s).take(10_000).collect();
        let share = post.iter().filter(|p| **p == new_flow).count() as f64 / post.len() as f64;
        assert!((share - 0.3).abs() < 0.03, "share = {share}");
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let base = TraceGenerator::new(TracePreset::tiny(), 5);
        let _ = EmergingFlowScenario::new(base, Packet::new(1, 1), 1.5, 0, 0);
    }
}
