//! The packet key type shared by every experiment.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A packet, reduced to the fields the measurement algorithms care about:
/// the source and destination IPv4 addresses.
///
/// * Plain heavy-hitter experiments use the full `(src, dst)` pair as the
///   flow identifier (see [`Packet::flow`]).
/// * 1D HHH experiments use the source address ([`Packet::src`]).
/// * 2D HHH experiments use the `(src, dst)` pair ([`Packet::src_dst`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Packet {
    /// Source IPv4 address.
    pub src: u32,
    /// Destination IPv4 address.
    pub dst: u32,
}

impl Packet {
    /// Creates a packet from raw addresses.
    pub fn new(src: u32, dst: u32) -> Self {
        Packet { src, dst }
    }

    /// Creates a packet from dotted-quad octets (convenient in tests).
    pub fn from_octets(src: [u8; 4], dst: [u8; 4]) -> Self {
        Packet {
            src: u32::from_be_bytes(src),
            dst: u32::from_be_bytes(dst),
        }
    }

    /// The flow identifier used by the plain heavy-hitter experiments:
    /// the (src, dst) pair packed into a `u64`.
    #[inline]
    pub fn flow(&self) -> u64 {
        ((self.src as u64) << 32) | self.dst as u64
    }

    /// The `(src, dst)` pair, the item type of the 2D hierarchy.
    #[inline]
    pub fn src_dst(&self) -> (u32, u32) {
        (self.src, self.dst)
    }
}

impl fmt::Display for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.src.to_be_bytes();
        let d = self.dst.to_be_bytes();
        write!(
            f,
            "{}.{}.{}.{} -> {}.{}.{}.{}",
            s[0], s[1], s[2], s[3], d[0], d[1], d[2], d[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_is_injective_on_pairs() {
        let a = Packet::new(1, 2);
        let b = Packet::new(2, 1);
        assert_ne!(a.flow(), b.flow());
        assert_eq!(a.flow(), 0x0000_0001_0000_0002);
    }

    #[test]
    fn octet_constructor_and_display() {
        let p = Packet::from_octets([10, 1, 2, 3], [8, 8, 8, 8]);
        assert_eq!(p.to_string(), "10.1.2.3 -> 8.8.8.8");
        assert_eq!(p.src_dst(), (0x0a010203, 0x08080808));
    }
}
