//! CSV trace I/O.
//!
//! Real packet traces (e.g. the CAIDA trace the paper uses) can be converted
//! to a two-column CSV of dotted-quad `src,dst` addresses and dropped into
//! any experiment in place of the synthetic generators.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use crate::packet::Packet;
use crate::timed::TimedPacket;

/// Writes packets to a CSV file (`src,dst` in dotted-quad notation, one
/// packet per line).
pub fn write_csv<P: AsRef<Path>>(path: P, packets: &[Packet]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for p in packets {
        let s = p.src.to_be_bytes();
        let d = p.dst.to_be_bytes();
        writeln!(
            w,
            "{}.{}.{}.{},{}.{}.{}.{}",
            s[0], s[1], s[2], s[3], d[0], d[1], d[2], d[3]
        )?;
    }
    w.flush()
}

/// Reads a CSV trace produced by [`write_csv`] (or by converting a real
/// trace). Lines that fail to parse are reported as errors.
pub fn read_csv<P: AsRef<Path>>(path: P) -> io::Result<Vec<Packet>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_line(trimmed).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: cannot parse '{}'", lineno + 1, trimmed),
            )
        })?);
    }
    Ok(out)
}

/// Writes a timed trace as three-column CSV (`t,src,dst` — arrival
/// nanoseconds, then dotted-quad addresses), one packet per line. Replaying
/// this file through [`read_csv_timed`] reconstructs the arrival clock
/// exactly, so experiments can drive `TimedWindow::record_at` on the
/// recorded timestamps instead of a synthetic count clock.
pub fn write_csv_timed<P: AsRef<Path>>(path: P, packets: &[TimedPacket]) -> io::Result<()> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    for tp in packets {
        let s = tp.packet.src.to_be_bytes();
        let d = tp.packet.dst.to_be_bytes();
        writeln!(
            w,
            "{},{}.{}.{}.{},{}.{}.{}.{}",
            tp.nanos, s[0], s[1], s[2], s[3], d[0], d[1], d[2], d[3]
        )?;
    }
    w.flush()
}

/// Reads a timed trace produced by [`write_csv_timed`]. Same comment/blank
/// handling as [`read_csv`]; malformed lines (including non-numeric or
/// missing timestamps) are reported as errors.
pub fn read_csv_timed<P: AsRef<Path>>(path: P) -> io::Result<Vec<TimedPacket>> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        out.push(parse_timed_line(trimmed).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: cannot parse '{}'", lineno + 1, trimmed),
            )
        })?);
    }
    Ok(out)
}

fn parse_timed_line(line: &str) -> Option<TimedPacket> {
    let (t, rest) = line.split_once(',')?;
    let nanos: u64 = t.trim().parse().ok()?;
    Some(TimedPacket::new(nanos, parse_line(rest.trim())?))
}

fn parse_line(line: &str) -> Option<Packet> {
    let (src, dst) = line.split_once(',')?;
    Some(Packet::new(
        parse_addr(src.trim())?,
        parse_addr(dst.trim())?,
    ))
}

fn parse_addr(s: &str) -> Option<u32> {
    let mut out = 0u32;
    let mut count = 0;
    for part in s.split('.') {
        let v: u32 = part.parse().ok()?;
        if v > 255 {
            return None;
        }
        out = (out << 8) | v;
        count += 1;
    }
    if count == 4 {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{TraceGenerator, TracePreset};

    #[test]
    fn roundtrip_preserves_packets() {
        let mut gen = TraceGenerator::new(TracePreset::tiny(), 1);
        let packets = gen.generate(200);
        let dir = std::env::temp_dir().join("memento-traces-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        write_csv(&path, &packets).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(packets, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_skips_comments_and_blank_lines() {
        let dir = std::env::temp_dir().join("memento-traces-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("comments.csv");
        std::fs::write(&path, "# header\n\n1.2.3.4,5.6.7.8\n").unwrap();
        let pkts = read_csv(&path).unwrap();
        assert_eq!(pkts, vec![Packet::from_octets([1, 2, 3, 4], [5, 6, 7, 8])]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timed_roundtrip_preserves_clock_and_packets() {
        use crate::timed::ArrivalModel;
        let mut gen = TraceGenerator::new(TracePreset::tiny(), 2);
        let packets = gen.generate(150);
        let stamped = ArrivalModel::Uniform { gap_nanos: 640 }.stamp(&packets, 9);
        let dir = std::env::temp_dir().join("memento-traces-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timed-roundtrip.csv");
        write_csv_timed(&path, &stamped).unwrap();
        let back = read_csv_timed(&path).unwrap();
        assert_eq!(stamped, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn timed_reader_rejects_missing_or_bad_timestamps() {
        let dir = std::env::temp_dir().join("memento-traces-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("timed-bad.csv");
        std::fs::write(&path, "1.2.3.4,5.6.7.8\n").unwrap();
        assert!(read_csv_timed(&path).is_err());
        std::fs::write(&path, "abc,1.2.3.4,5.6.7.8\n").unwrap();
        assert!(read_csv_timed(&path).is_err());
        std::fs::write(&path, "# t,src,dst\n17,1.2.3.4,5.6.7.8\n").unwrap();
        let pkts = read_csv_timed(&path).unwrap();
        assert_eq!(
            pkts,
            vec![TimedPacket::new(
                17,
                Packet::from_octets([1, 2, 3, 4], [5, 6, 7, 8])
            )]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reader_rejects_malformed_lines() {
        let dir = std::env::temp_dir().join("memento-traces-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.csv");
        std::fs::write(&path, "1.2.3.4;5.6.7.8\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "1.2.3.400,5.6.7.8\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::write(&path, "1.2.3,5.6.7.8\n").unwrap();
        assert!(read_csv(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
