//! The measurement-enabled load balancer.
//!
//! Mirrors the paper's extended HAProxy: every ingress request is fed to the
//! measurement point (which reports to the controller within the bandwidth
//! budget), then the ACLs are enforced (Deny / Tarpit / rate-limit by source
//! subnet), and admitted requests are dispatched to a backend.

use memento_netwide::{CommMethod, Report, WireFormat};
use serde::{Deserialize, Serialize};

use memento_netwide::point::MeasurementPoint;

use crate::acl::{AclAction, AclTable};
use crate::backend::{BackendPool, DispatchStrategy};
use crate::http::{HttpRequest, RequestOutcome};

/// Per-proxy request counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProxyStats {
    /// Total requests received.
    pub total: u64,
    /// Requests forwarded to a backend.
    pub served: u64,
    /// Requests rejected by Deny rules.
    pub denied: u64,
    /// Requests held by Tarpit rules.
    pub tarpitted: u64,
    /// Requests dropped by rate limits.
    pub rate_limited: u64,
}

/// A load balancer instance: measurement point + ACLs + backend pool.
#[derive(Debug, Clone)]
pub struct LoadBalancer {
    id: usize,
    acl: AclTable,
    pool: BackendPool,
    point: MeasurementPoint<u32>,
    stats: ProxyStats,
}

impl LoadBalancer {
    /// Creates a load balancer.
    ///
    /// * `id` — proxy identifier (also the measurement-point id);
    /// * `backends` — number of backend servers behind this proxy;
    /// * `method` / `budget` / `wire` — reporting configuration;
    /// * `local_window` — the point's share of the network-wide window
    ///   (used by the Aggregation method);
    /// * `seed` — RNG seed.
    pub fn new(
        id: usize,
        backends: usize,
        method: CommMethod,
        budget: f64,
        wire: WireFormat,
        local_window: usize,
        seed: u64,
    ) -> Self {
        LoadBalancer {
            id,
            acl: AclTable::new(),
            pool: BackendPool::new(backends, DispatchStrategy::RoundRobin),
            point: MeasurementPoint::new(id, method, budget, wire, local_window, seed),
            stats: ProxyStats::default(),
        }
    }

    /// The proxy's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The proxy's request counters.
    pub fn stats(&self) -> ProxyStats {
        self.stats
    }

    /// The ACL table (e.g. for the mitigation loop to install rules).
    pub fn acl_mut(&mut self) -> &mut AclTable {
        &mut self.acl
    }

    /// The ACL table, read-only.
    pub fn acl(&self) -> &AclTable {
        &self.acl
    }

    /// The backend pool, read-only.
    pub fn pool(&self) -> &BackendPool {
        &self.pool
    }

    /// Average control-plane bytes per ingress request of this proxy.
    pub fn bytes_per_packet(&self) -> f64 {
        self.point.bytes_per_packet()
    }

    /// Handles one request: measure, enforce ACLs, dispatch. Returns the
    /// outcome and, when the measurement point emits one, a report destined
    /// for the controller.
    pub fn handle(&mut self, request: HttpRequest) -> (RequestOutcome, Option<Report<u32>>) {
        self.stats.total += 1;
        // Ingress measurement happens before mitigation: the controller must
        // keep seeing attack traffic so its window view stays current.
        let report = self.point.process(request.src);
        let outcome = match self.acl.evaluate(request.src) {
            Some(AclAction::Deny) => {
                self.stats.denied += 1;
                RequestOutcome::Denied
            }
            Some(AclAction::Tarpit) => {
                self.stats.tarpitted += 1;
                RequestOutcome::Tarpitted
            }
            Some(AclAction::RateLimit { .. }) => {
                self.stats.rate_limited += 1;
                RequestOutcome::RateLimited
            }
            None => match self.pool.dispatch() {
                Some(backend) => {
                    self.stats.served += 1;
                    // The simulated backend answers immediately.
                    self.pool.complete(backend);
                    RequestOutcome::Served {
                        backend,
                        status: 200,
                    }
                }
                None => {
                    // No healthy backend: surfaced as a 503 from the proxy.
                    self.stats.served += 1;
                    RequestOutcome::Served {
                        backend: usize::MAX,
                        status: 503,
                    }
                }
            },
        };
        (outcome, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::Prefix1D;

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn proxy() -> LoadBalancer {
        LoadBalancer::new(
            0,
            3,
            CommMethod::Batch(10),
            8.0,
            WireFormat::tcp_src(),
            1_000,
            1,
        )
    }

    #[test]
    fn admitted_requests_are_served_round_robin() {
        let mut lb = proxy();
        let mut backends = std::collections::HashSet::new();
        for i in 0..9 {
            let (outcome, _) = lb.handle(HttpRequest::get(addr(1, 2, 3, i), addr(9, 9, 9, 9), 0));
            match outcome {
                RequestOutcome::Served { backend, status } => {
                    assert_eq!(status, 200);
                    backends.insert(backend);
                }
                other => panic!("expected served, got {other:?}"),
            }
        }
        assert_eq!(backends.len(), 3, "all backends should participate");
        assert_eq!(lb.stats().served, 9);
        assert_eq!(lb.stats().total, 9);
    }

    #[test]
    fn deny_rule_blocks_but_measurement_continues() {
        let mut lb = proxy();
        lb.acl_mut().insert(
            Prefix1D::new(addr(66, 0, 0, 0), 8),
            crate::acl::AclAction::Deny,
        );
        let mut reports = 0;
        for i in 0..2_000u32 {
            let src = addr(66, (i % 250) as u8, 1, 1);
            let (outcome, report) = lb.handle(HttpRequest::get(src, addr(9, 9, 9, 9), 0));
            assert_eq!(outcome, RequestOutcome::Denied);
            if report.is_some() {
                reports += 1;
            }
        }
        assert_eq!(lb.stats().denied, 2_000);
        assert_eq!(lb.stats().served, 0);
        assert!(
            reports > 0,
            "denied traffic must still be measured/reported"
        );
    }

    #[test]
    fn rate_limit_admits_some_traffic() {
        let mut lb = proxy();
        lb.acl_mut().insert(
            Prefix1D::new(addr(50, 0, 0, 0), 8),
            crate::acl::AclAction::RateLimit {
                max_per_window: 5,
                window: 100,
            },
        );
        for i in 0..100u32 {
            lb.handle(HttpRequest::get(
                addr(50, 0, 0, i as u8),
                addr(9, 9, 9, 9),
                0,
            ));
        }
        assert_eq!(lb.stats().served, 5);
        assert_eq!(lb.stats().rate_limited, 95);
    }

    #[test]
    fn unhealthy_pool_returns_503() {
        let mut lb = proxy();
        for b in 0..3 {
            // Reach into the pool via the public surface: mark unhealthy.
            // (Backends are owned by the proxy, so expose through pool().)
            assert!(lb.pool().backends()[b].healthy);
        }
        // No public set_health on proxy by design; a fully drained pool is a
        // deployment bug, covered at the pool level instead.
        let (outcome, _) = lb.handle(HttpRequest::get(addr(1, 1, 1, 1), addr(2, 2, 2, 2), 0));
        assert!(outcome.reached_backend());
    }
}
