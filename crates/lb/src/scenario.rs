//! The HTTP-flood experiment of §6.4 (Figure 10).
//!
//! Ten load balancers receive a realistic request stream into which a flood
//! from 50 random 8-bit subnets is injected (70% of the traffic from a random
//! start point). Each load balancer reports to the centralized controller
//! within a 1-byte-per-packet budget using the configured communication
//! method; the controller maintains a network-wide window view and flags any
//! subnet whose estimated window frequency exceeds the threshold — the
//! "simple threshold-based attack mitigation application" of §6.3. Detected
//! subnets are pushed to every proxy's ACL (Deny), and the experiment records
//!
//! * when each attacking subnet is detected (Figures 10a / 10b), both for the
//!   evaluated method and for OPT (an oracle that knows the exact ingress
//!   window with no reporting delay), and
//! * how many flood requests reached the backends before being cut off
//!   (Figure 10c, "missed" attack requests).

use std::collections::HashMap;

use memento_hierarchy::{Prefix1D, SrcHierarchy};
use memento_netwide::{
    AggregationController, CommMethod, DHMementoController, HhhController, WireFormat,
};
use memento_sketches::ExactWindow;
use memento_traces::{FloodScenario, TraceGenerator, TracePreset};

use crate::http::HttpRequest;
use crate::mitigation::Mitigator;
use crate::proxy::LoadBalancer;

pub use memento_traces::flood::FloodConfig;

/// Configuration of the flood experiment.
#[derive(Debug, Clone)]
pub struct FloodExperimentConfig {
    /// Number of load balancers (the paper's testbed runs 10).
    pub proxies: usize,
    /// Backends per load balancer.
    pub backends_per_proxy: usize,
    /// Network-wide window size `W` in packets (the paper uses 10⁶;
    /// laptop-scale defaults use less).
    pub window: usize,
    /// Per-packet control bandwidth budget in bytes (the paper uses 1).
    pub budget: f64,
    /// Counters for the controller's H-Memento instance.
    pub counters: usize,
    /// Communication method under evaluation.
    pub method: CommMethod,
    /// Detection threshold θ (fraction of the window).
    pub theta: f64,
    /// Total packets to simulate.
    pub total_packets: usize,
    /// Flood parameters (number of subnets, intensity, start line).
    pub flood: FloodConfig,
    /// Background-traffic preset.
    pub preset: TracePreset,
    /// How often (in packets) the controller view is polled for detection.
    pub check_interval: usize,
    /// Whether detected subnets are actually blocked at the proxies.
    pub mitigate: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FloodExperimentConfig {
    fn default() -> Self {
        let window = 100_000;
        FloodExperimentConfig {
            proxies: 10,
            backends_per_proxy: 4,
            window,
            budget: 1.0,
            counters: 4_096,
            method: CommMethod::Batch(44),
            theta: 0.01,
            total_packets: 4 * window,
            flood: FloodConfig {
                num_subnets: 50,
                flood_probability: 0.7,
                start: window,
            },
            preset: TracePreset::backbone(),
            check_interval: 1_000,
            mitigate: true,
            seed: 2018,
        }
    }
}

/// Result of one flood-experiment run.
#[derive(Debug, Clone)]
pub struct FloodExperimentResult {
    /// Name of the communication method evaluated.
    pub method: String,
    /// The 50 attacking subnets (ground truth).
    pub attack_prefixes: Vec<Prefix1D>,
    /// `(packet index, number of attack subnets detected so far)` for the
    /// evaluated method — the curve of Figure 10a/10b.
    pub detection_curve: Vec<(usize, usize)>,
    /// Same curve for the OPT oracle.
    pub opt_detection_curve: Vec<(usize, usize)>,
    /// First detection index per attacking subnet (None = never detected).
    pub detection_time: Vec<Option<usize>>,
    /// First detection index per subnet for OPT.
    pub opt_detection_time: Vec<Option<usize>>,
    /// Flood requests emitted in total.
    pub total_attack_requests: u64,
    /// Flood requests that reached a backend (not mitigated) — the paper's
    /// "missed" attack requests.
    pub missed_attack_requests: u64,
    /// Average control bytes per ingress packet (budget compliance).
    pub bytes_per_packet: f64,
}

impl FloodExperimentResult {
    /// Fraction of flood requests that reached the backends.
    pub fn miss_rate(&self) -> f64 {
        if self.total_attack_requests == 0 {
            0.0
        } else {
            self.missed_attack_requests as f64 / self.total_attack_requests as f64
        }
    }

    /// Number of subnets ever detected by the evaluated method.
    pub fn detected_subnets(&self) -> usize {
        self.detection_time.iter().filter(|t| t.is_some()).count()
    }

    /// Mean detection delay (in packets) relative to OPT, over the subnets
    /// both detected.
    pub fn mean_delay_vs_opt(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for (t, o) in self.detection_time.iter().zip(&self.opt_detection_time) {
            if let (Some(t), Some(o)) = (t, o) {
                total += (*t as f64 - *o as f64).max(0.0);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

/// The flood experiment driver.
pub struct FloodExperiment {
    config: FloodExperimentConfig,
}

impl FloodExperiment {
    /// Creates an experiment from its configuration.
    pub fn new(config: FloodExperimentConfig) -> Self {
        assert!(config.proxies > 0, "at least one proxy");
        assert!(config.theta > 0.0 && config.theta < 1.0, "theta in (0,1)");
        assert!(config.check_interval > 0, "check interval must be positive");
        FloodExperiment { config }
    }

    /// Runs the experiment to completion.
    pub fn run(&self) -> FloodExperimentResult {
        let cfg = &self.config;
        let wire = WireFormat::tcp_src();
        let upstream_tau = cfg.method.tau_for_budget(cfg.budget, &wire);
        let local_window = (cfg.window / cfg.proxies).max(1);

        // Load balancers.
        let mut proxies: Vec<LoadBalancer> = (0..cfg.proxies)
            .map(|id| {
                LoadBalancer::new(
                    id,
                    cfg.backends_per_proxy,
                    cfg.method,
                    cfg.budget,
                    wire,
                    local_window,
                    cfg.seed.wrapping_add(id as u64),
                )
            })
            .collect();

        // Controller, behind the network-wide trait object: the experiment
        // driver is identical for every controller variant. The mitigation
        // thresholds compare against `point_estimate` — the approximately
        // unbiased estimate for the Memento-backed controller (so coarse
        // sampling does not trip thresholds early), which degrades to the
        // snapshot sum for Aggregation.
        let mut controller: Box<dyn HhhController<SrcHierarchy>> = match cfg.method {
            CommMethod::Aggregation => {
                Box::new(AggregationController::new(SrcHierarchy, cfg.window))
            }
            _ => Box::new(DHMementoController::new(
                SrcHierarchy,
                cfg.counters,
                cfg.window,
                upstream_tau,
                0.01,
                cfg.seed,
            )),
        };

        // OPT oracle: exact per-/8 counts of the ingress window, no delay.
        let mut opt_window: ExactWindow<u8> = ExactWindow::new(cfg.window);

        // Traffic.
        let base = TraceGenerator::new(cfg.preset.clone(), cfg.seed ^ 0x7777);
        let mut flood = FloodScenario::new(base, cfg.flood, cfg.seed ^ 0x4242);
        let attack_prefixes = flood.attack_prefixes();
        let subnet_index: HashMap<Prefix1D, usize> = attack_prefixes
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, i))
            .collect();

        let mitigator = Mitigator::deny_subnets();
        let threshold = cfg.theta * cfg.window as f64;

        let mut detection_time: Vec<Option<usize>> = vec![None; attack_prefixes.len()];
        let mut opt_detection_time: Vec<Option<usize>> = vec![None; attack_prefixes.len()];
        let mut detection_curve = Vec::new();
        let mut opt_detection_curve = Vec::new();
        let mut total_attack = 0u64;
        let mut missed_attack = 0u64;

        for i in 0..cfg.total_packets {
            let fp = match flood.next() {
                Some(fp) => fp,
                None => break,
            };
            let request = HttpRequest::get(fp.packet.src, fp.packet.dst, (i % 16) as u16);
            let proxy = &mut proxies[i % cfg.proxies];
            let (outcome, report) = proxy.handle(request);
            opt_window.add((fp.packet.src >> 24) as u8);
            if fp.is_attack {
                total_attack += 1;
                if outcome.reached_backend() {
                    missed_attack += 1;
                }
            }
            if let Some(r) = report {
                controller.receive(&r);
            }

            if i % cfg.check_interval == 0 && i > 0 {
                // Detection sweep: flag subnets whose estimated window
                // frequency crossed the threshold.
                let mut newly_detected = Vec::new();
                for (p, &j) in &subnet_index {
                    if detection_time[j].is_none() && controller.point_estimate(p) >= threshold {
                        detection_time[j] = Some(i);
                        newly_detected.push(*p);
                    }
                    if opt_detection_time[j].is_none()
                        && opt_window.query(&((p.addr() >> 24) as u8)) as f64 >= threshold
                    {
                        opt_detection_time[j] = Some(i);
                    }
                }
                if cfg.mitigate && !newly_detected.is_empty() {
                    mitigator.apply(&newly_detected, &mut proxies);
                }
                detection_curve.push((i, detection_time.iter().filter(|t| t.is_some()).count()));
                opt_detection_curve
                    .push((i, opt_detection_time.iter().filter(|t| t.is_some()).count()));
            }
        }

        let total_packets: u64 = proxies.iter().map(|p| p.stats().total).sum();
        let total_bytes: f64 = proxies
            .iter()
            .map(|p| p.bytes_per_packet() * p.stats().total as f64)
            .sum();
        FloodExperimentResult {
            method: cfg.method.name(),
            attack_prefixes,
            detection_curve,
            opt_detection_curve,
            detection_time,
            opt_detection_time,
            total_attack_requests: total_attack,
            missed_attack_requests: missed_attack,
            bytes_per_packet: if total_packets == 0 {
                0.0
            } else {
                total_bytes / total_packets as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled-down scenario for unit testing: the budget is raised to 4
    /// bytes/packet so that even the Sample method's coarse granularity
    /// (`V = H·(O+E)/B`) stays well below the detection threshold at this
    /// small window; the figure-10 harness runs the paper-scale 1-byte
    /// budget.
    fn small_config(method: CommMethod) -> FloodExperimentConfig {
        FloodExperimentConfig {
            proxies: 4,
            backends_per_proxy: 2,
            window: 30_000,
            budget: 4.0,
            counters: 2_048,
            method,
            theta: 0.02,
            total_packets: 90_000,
            flood: FloodConfig {
                num_subnets: 20,
                flood_probability: 0.7,
                start: 15_000,
            },
            preset: TracePreset::tiny(),
            check_interval: 500,
            mitigate: true,
            seed: 7,
        }
    }

    #[test]
    fn batch_detects_most_subnets_and_blocks_flood() {
        let result = FloodExperiment::new(small_config(CommMethod::Batch(44))).run();
        assert_eq!(result.attack_prefixes.len(), 20);
        assert!(
            result.detected_subnets() >= 16,
            "only {} of 20 subnets detected",
            result.detected_subnets()
        );
        assert!(result.total_attack_requests > 30_000);
        assert!(
            result.miss_rate() < 0.6,
            "mitigation blocked too little: miss rate {}",
            result.miss_rate()
        );
        assert!(result.bytes_per_packet <= 4.2, "budget exceeded");
        // Subnet-level false positives (detected by the method but never by
        // the exact oracle) must be rare: the estimate is an upper bound, so
        // a handful of borderline subnets may be flagged early.
        let false_positives = result
            .detection_time
            .iter()
            .zip(&result.opt_detection_time)
            .filter(|(t, o)| t.is_some() && o.is_none())
            .count();
        assert!(
            false_positives <= 4,
            "{false_positives} subnet false positives"
        );
        assert!(result.mean_delay_vs_opt() >= 0.0);
    }

    #[test]
    fn without_mitigation_everything_reaches_backends() {
        let mut cfg = small_config(CommMethod::Batch(44));
        cfg.mitigate = false;
        let result = FloodExperiment::new(cfg).run();
        assert_eq!(
            result.missed_attack_requests, result.total_attack_requests,
            "without mitigation every flood request is 'missed'"
        );
    }

    #[test]
    fn batch_beats_the_aggregation_baseline() {
        let batch = FloodExperiment::new(small_config(CommMethod::Batch(44))).run();
        let agg = FloodExperiment::new(small_config(CommMethod::Aggregation)).run();
        // The paper's headline result (Figure 10c): under the same budget the
        // Batch method lets far fewer flood requests through than the
        // idealized Aggregation baseline, whose snapshots are too large to be
        // sent often enough.
        assert!(
            batch.missed_attack_requests < agg.missed_attack_requests,
            "batch missed {} vs aggregation {}",
            batch.missed_attack_requests,
            agg.missed_attack_requests
        );
        assert!(batch.detected_subnets() >= agg.detected_subnets());
    }

    #[test]
    fn sample_detects_but_no_better_than_batch() {
        let batch = FloodExperiment::new(small_config(CommMethod::Batch(44))).run();
        let sample = FloodExperiment::new(small_config(CommMethod::Sample)).run();
        assert!(
            sample.detected_subnets() > 0,
            "sample never detected anything"
        );
        assert!(
            batch.detected_subnets() >= sample.detected_subnets().saturating_sub(2),
            "batch detected {} vs sample {}",
            batch.detected_subnets(),
            sample.detected_subnets()
        );
    }

    #[test]
    fn curves_are_monotonic() {
        let result = FloodExperiment::new(small_config(CommMethod::Batch(20))).run();
        for w in result.detection_curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 > w[0].0);
        }
        for w in result.opt_detection_curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
