//! Controller-driven mitigation loop.
//!
//! The paper's proof-of-concept uses the controller's HHH view as a simple
//! threshold-based mitigation application: once a subnet's window frequency
//! exceeds the threshold, the controller instructs every load balancer to
//! rate-limit or block it (§6.3, Figure 3).

use memento_hierarchy::Prefix1D;

use crate::acl::AclAction;
use crate::proxy::LoadBalancer;

/// Pushes controller decisions to the load balancers' ACLs.
#[derive(Debug, Clone)]
pub struct Mitigator {
    /// Action installed for detected subnets.
    action: AclAction,
    /// Only prefixes at least this long are acted on (never block `0.0.0.0/0`
    /// just because total traffic crossed the threshold).
    min_prefix_len: u8,
}

impl Mitigator {
    /// Creates a mitigator installing `action` for detected subnets of length
    /// at least `min_prefix_len` bits.
    pub fn new(action: AclAction, min_prefix_len: u8) -> Self {
        Mitigator {
            action,
            min_prefix_len,
        }
    }

    /// A mitigator that hard-blocks detected subnets of length ≥ 8.
    pub fn deny_subnets() -> Self {
        Mitigator::new(AclAction::Deny, 8)
    }

    /// The configured action.
    pub fn action(&self) -> AclAction {
        self.action
    }

    /// Filters a detected HHH set down to the prefixes this mitigator acts on.
    pub fn actionable<'a>(&self, detected: &'a [Prefix1D]) -> Vec<&'a Prefix1D> {
        detected
            .iter()
            .filter(|p| p.len() >= self.min_prefix_len)
            .collect()
    }

    /// Installs rules for the detected prefixes on every proxy. Returns how
    /// many new rules were installed (across all proxies).
    pub fn apply(&self, detected: &[Prefix1D], proxies: &mut [LoadBalancer]) -> usize {
        let mut installed = 0;
        for prefix in self.actionable(detected) {
            for proxy in proxies.iter_mut() {
                if !proxy.acl().contains(prefix) {
                    proxy.acl_mut().insert(*prefix, self.action);
                    installed += 1;
                }
            }
        }
        installed
    }

    /// Removes rules for prefixes that are no longer detected (e.g. the flood
    /// stopped and the window slid past it). Returns how many rules were
    /// removed.
    pub fn revoke_absent(
        &self,
        still_detected: &[Prefix1D],
        proxies: &mut [LoadBalancer],
    ) -> usize {
        let keep: std::collections::HashSet<&Prefix1D> = still_detected.iter().collect();
        let mut removed = 0;
        for proxy in proxies.iter_mut() {
            let stale: Vec<Prefix1D> = proxy
                .acl()
                .rules()
                .map(|(p, _)| *p)
                .filter(|p| !keep.contains(p))
                .collect();
            for p in stale {
                proxy.acl_mut().remove(&p);
                removed += 1;
            }
        }
        removed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_netwide::{CommMethod, WireFormat};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    fn proxies(n: usize) -> Vec<LoadBalancer> {
        (0..n)
            .map(|id| {
                LoadBalancer::new(
                    id,
                    2,
                    CommMethod::Sample,
                    1.0,
                    WireFormat::tcp_src(),
                    100,
                    id as u64,
                )
            })
            .collect()
    }

    #[test]
    fn apply_installs_rules_on_all_proxies() {
        let mut ps = proxies(3);
        let mit = Mitigator::deny_subnets();
        let detected = vec![
            Prefix1D::new(addr(10, 0, 0, 0), 8),
            Prefix1D::root(), // must be ignored (len 0 < 8)
        ];
        let installed = mit.apply(&detected, &mut ps);
        assert_eq!(installed, 3);
        for p in &ps {
            assert!(p.acl().contains(&Prefix1D::new(addr(10, 0, 0, 0), 8)));
            assert!(!p.acl().contains(&Prefix1D::root()));
        }
        // Re-applying is idempotent.
        assert_eq!(mit.apply(&detected, &mut ps), 0);
    }

    #[test]
    fn revoke_removes_stale_rules() {
        let mut ps = proxies(2);
        let mit = Mitigator::deny_subnets();
        let a = Prefix1D::new(addr(10, 0, 0, 0), 8);
        let b = Prefix1D::new(addr(20, 0, 0, 0), 8);
        mit.apply(&[a, b], &mut ps);
        let removed = mit.revoke_absent(&[a], &mut ps);
        assert_eq!(removed, 2);
        for p in &ps {
            assert!(p.acl().contains(&a));
            assert!(!p.acl().contains(&b));
        }
    }

    #[test]
    fn actionable_filters_short_prefixes() {
        let mit = Mitigator::new(AclAction::Tarpit, 16);
        let detected = vec![
            Prefix1D::new(addr(10, 0, 0, 0), 8),
            Prefix1D::new(addr(10, 1, 0, 0), 16),
        ];
        let act = mit.actionable(&detected);
        assert_eq!(act.len(), 1);
        assert_eq!(*act[0], Prefix1D::new(addr(10, 1, 0, 0), 16));
        assert_eq!(mit.action(), AclAction::Tarpit);
    }
}
