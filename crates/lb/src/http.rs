//! Minimal HTTP request model.
//!
//! The paper's traffic generator issues stateful HTTP GET and POST requests
//! from many source IPs towards the load balancers. For the measurement and
//! mitigation logic only the source address (and, for 2D hierarchies, the
//! destination) matters; the method and path are carried so the proxy and
//! backends behave like a real serving path.

use serde::{Deserialize, Serialize};

/// HTTP request method (the generator in the paper issues GET and POST).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HttpMethod {
    /// An HTTP GET.
    Get,
    /// An HTTP POST.
    Post,
}

/// One HTTP request arriving at a load balancer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HttpRequest {
    /// Client (source) IPv4 address.
    pub src: u32,
    /// Service (destination / VIP) IPv4 address.
    pub dst: u32,
    /// Request method.
    pub method: HttpMethod,
    /// Identifier of the requested path (an index into the service's routes;
    /// kept as an id to avoid per-request string allocation).
    pub path_id: u16,
}

impl HttpRequest {
    /// Builds a GET request.
    pub fn get(src: u32, dst: u32, path_id: u16) -> Self {
        HttpRequest {
            src,
            dst,
            method: HttpMethod::Get,
            path_id,
        }
    }

    /// Builds a POST request.
    pub fn post(src: u32, dst: u32, path_id: u16) -> Self {
        HttpRequest {
            src,
            dst,
            method: HttpMethod::Post,
            path_id,
        }
    }
}

/// What the load balancer did with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestOutcome {
    /// Forwarded to a backend, which answered with the given status.
    Served {
        /// Backend that served the request.
        backend: usize,
        /// HTTP status code returned.
        status: u16,
    },
    /// Rejected by a Deny ACL rule.
    Denied,
    /// Held by a Tarpit ACL rule (the connection is kept open and then
    /// dropped, wasting the attacker's resources).
    Tarpitted,
    /// Dropped because the source subnet exceeded its rate limit.
    RateLimited,
}

impl RequestOutcome {
    /// True when the request reached a backend (i.e. mitigation did *not*
    /// stop it — the paper's "missed" flood requests).
    pub fn reached_backend(&self) -> bool {
        matches!(self, RequestOutcome::Served { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_methods() {
        let g = HttpRequest::get(1, 2, 3);
        assert_eq!(g.method, HttpMethod::Get);
        let p = HttpRequest::post(1, 2, 3);
        assert_eq!(p.method, HttpMethod::Post);
        assert_eq!(g.src, 1);
        assert_eq!(g.dst, 2);
        assert_eq!(g.path_id, 3);
    }

    #[test]
    fn only_served_requests_reach_backends() {
        assert!(RequestOutcome::Served {
            backend: 0,
            status: 200
        }
        .reached_backend());
        assert!(!RequestOutcome::Denied.reached_backend());
        assert!(!RequestOutcome::Tarpitted.reached_backend());
        assert!(!RequestOutcome::RateLimited.reached_backend());
    }
}
