//! # memento-lb
//!
//! Load-balancer substrate standing in for the paper's HAProxy extension
//! (§6.3–6.4). The paper extends HAProxy 1.8.1 with ACL-based subnet
//! mitigation (Deny / Tarpit / rate-limit), feeds the measurement algorithms
//! from the request stream, and reports to a centralized controller that
//! maintains a network-wide sliding-window HHH view used to mitigate HTTP
//! floods.
//!
//! This crate reproduces that information flow in-process (see DESIGN.md §5
//! for why the substitution preserves the evaluated behaviour):
//!
//! * [`http`] — a minimal stateful HTTP request model;
//! * [`backend`] — backend server pools with round-robin / least-connections
//!   dispatch;
//! * [`acl`] — HAProxy-style subnet ACLs (Deny, Tarpit, rate-limit) with
//!   longest-prefix matching;
//! * [`proxy`] — the measurement-enabled load balancer: ingress measurement,
//!   ACL enforcement, backend dispatch, controller reporting;
//! * [`mitigation`] — the controller-driven mitigation loop;
//! * [`scenario`] — the full §6.4 HTTP-flood experiment (Figure 10).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod backend;
pub mod http;
pub mod mitigation;
pub mod proxy;
pub mod scenario;

pub use acl::{AclAction, AclTable};
pub use backend::{Backend, BackendPool, DispatchStrategy};
pub use http::{HttpMethod, HttpRequest, RequestOutcome};
pub use mitigation::Mitigator;
pub use proxy::{LoadBalancer, ProxyStats};
pub use scenario::{FloodExperiment, FloodExperimentConfig, FloodExperimentResult};
