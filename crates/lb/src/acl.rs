//! HAProxy-style access control lists keyed by source subnet.
//!
//! The paper extends HAProxy's ACLs so that mitigation can act on entire
//! subnets rather than individual flows: a rule maps a source prefix to an
//! action (Deny, Tarpit, or a rate limit). Lookup is longest-prefix-match, so
//! a specific exemption can coexist with a broad block.

use std::collections::HashMap;

use memento_core::WindowQuery;
use memento_hierarchy::Prefix1D;
use memento_sketches::ExactWindow;

/// Action applied to a matching source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AclAction {
    /// Reject the request outright (HTTP 403 / connection reset).
    Deny,
    /// Keep the connection open and never answer (wastes attacker state).
    Tarpit,
    /// Allow at most `max_per_window` requests from the subnet per window of
    /// `window` requests observed by the proxy.
    RateLimit {
        /// Maximum admitted requests per window.
        max_per_window: u64,
        /// Window length in requests.
        window: u64,
    },
}

/// A set of subnet ACL rules with longest-prefix-match lookup.
///
/// Rate-limit rules are enforced over a *sliding* window of proxy requests
/// (PR 7): each rate-limited prefix keeps an [`ExactWindow`] of its admitted
/// requests over the last `window` evaluations, advanced to the current
/// evaluation position with the closed-form `skip(n)` and read through the
/// [`WindowQuery`] surface — the same read-only trait the measurement
/// engines and snapshot readers answer. A burst therefore cannot double its
/// budget by straddling a tumbling-window boundary.
#[derive(Debug, Clone, Default)]
pub struct AclTable {
    /// Rules indexed by prefix (byte-granular lengths only).
    rules: HashMap<Prefix1D, AclAction>,
    /// Sliding record of admitted requests per rate-limited prefix, each
    /// covering the `window − 1` evaluations before the current one (the
    /// current request completes the `window`-request span).
    rate_windows: HashMap<Prefix1D, ExactWindow<Prefix1D>>,
    /// Requests evaluated so far (drives the rate-limit windows).
    evaluated: u64,
}

impl AclTable {
    /// Creates an empty table (everything allowed).
    pub fn new() -> Self {
        AclTable::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule is installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Installs (or replaces) a rule.
    pub fn insert(&mut self, prefix: Prefix1D, action: AclAction) {
        self.rules.insert(prefix, action);
    }

    /// Removes a rule; returns whether one existed.
    pub fn remove(&mut self, prefix: &Prefix1D) -> bool {
        self.rate_windows.remove(prefix);
        self.rules.remove(prefix).is_some()
    }

    /// True when a rule exists for exactly this prefix.
    pub fn contains(&self, prefix: &Prefix1D) -> bool {
        self.rules.contains_key(prefix)
    }

    /// The installed rules (for inspection / synchronization).
    pub fn rules(&self) -> impl Iterator<Item = (&Prefix1D, &AclAction)> {
        self.rules.iter()
    }

    /// Longest-prefix-match lookup of the rule covering `src`, if any.
    pub fn matching_rule(&self, src: u32) -> Option<(Prefix1D, AclAction)> {
        // Byte-granular prefixes: probe /32, /24, /16, /8, /0 from most to
        // least specific.
        for len in [32u8, 24, 16, 8, 0] {
            let p = Prefix1D::new(src, len);
            if let Some(a) = self.rules.get(&p) {
                return Some((p, *a));
            }
        }
        None
    }

    /// Evaluates a request from `src`: returns the action to apply, or `None`
    /// when the request is admitted. Rate-limit rules admit up to their
    /// budget over the *sliding* window ending at this request and report
    /// `Some(RateLimit…)` for the excess.
    pub fn evaluate(&mut self, src: u32) -> Option<AclAction> {
        self.evaluated += 1;
        let (prefix, action) = self.matching_rule(src)?;
        match action {
            AclAction::Deny | AclAction::Tarpit => Some(action),
            AclAction::RateLimit {
                max_per_window,
                window,
            } => {
                // The window covers this request plus the `window − 1`
                // evaluations before it.
                let lookback = (window as usize).saturating_sub(1).max(1);
                let win = self
                    .rate_windows
                    .entry(prefix)
                    .or_insert_with(|| ExactWindow::new(lookback));
                // Catch the window up over the evaluations this prefix did
                // not participate in (closed-form advance, not a walk).
                let behind = self.evaluated - 1 - win.processed();
                if behind > 0 {
                    win.skip(behind);
                }
                // Read through the same query surface the measurement
                // engines answer.
                let query: &dyn WindowQuery<Prefix1D> = win;
                let admit = query.estimate(&prefix) < max_per_window as f64;
                if admit {
                    // Record the admitted request at the current position.
                    win.add(prefix);
                    None
                } else {
                    // The denied request still occupies a stream position.
                    win.skip(1);
                    Some(action)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn deny_blocks_the_whole_subnet() {
        let mut acl = AclTable::new();
        acl.insert(Prefix1D::new(addr(10, 0, 0, 0), 8), AclAction::Deny);
        assert_eq!(acl.evaluate(addr(10, 99, 1, 2)), Some(AclAction::Deny));
        assert_eq!(acl.evaluate(addr(11, 99, 1, 2)), None);
        assert_eq!(acl.len(), 1);
    }

    #[test]
    fn longest_prefix_match_wins() {
        let mut acl = AclTable::new();
        acl.insert(Prefix1D::new(addr(10, 0, 0, 0), 8), AclAction::Deny);
        acl.insert(Prefix1D::new(addr(10, 1, 0, 0), 16), AclAction::Tarpit);
        assert_eq!(acl.evaluate(addr(10, 1, 2, 3)), Some(AclAction::Tarpit));
        assert_eq!(acl.evaluate(addr(10, 2, 2, 3)), Some(AclAction::Deny));
        let (p, _) = acl.matching_rule(addr(10, 1, 9, 9)).unwrap();
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn rate_limit_admits_up_to_budget_per_window() {
        let mut acl = AclTable::new();
        acl.insert(
            Prefix1D::new(addr(20, 0, 0, 0), 8),
            AclAction::RateLimit {
                max_per_window: 3,
                window: 10,
            },
        );
        let mut admitted = 0;
        let mut limited = 0;
        for _ in 0..10 {
            match acl.evaluate(addr(20, 5, 5, 5)) {
                None => admitted += 1,
                Some(AclAction::RateLimit { .. }) => limited += 1,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(admitted, 3);
        assert_eq!(limited, 7);
        // Sliding window: the 11th evaluation no longer covers the first
        // admission, so a budget slot has freed up.
        assert_eq!(acl.evaluate(addr(20, 5, 5, 5)), None);
    }

    #[test]
    fn rate_limit_window_slides_instead_of_tumbling() {
        // A burst straddling what used to be a tumbling-window boundary must
        // not get double budget: with max 2 per 6-request window, 12
        // back-to-back requests admit at most 2 in ANY 6-request span.
        let mut acl = AclTable::new();
        acl.insert(
            Prefix1D::new(addr(21, 0, 0, 0), 8),
            AclAction::RateLimit {
                max_per_window: 2,
                window: 6,
            },
        );
        let admissions: Vec<bool> = (0..12)
            .map(|_| acl.evaluate(addr(21, 1, 1, 1)).is_none())
            .collect();
        for span in admissions.windows(6) {
            let in_span = span.iter().filter(|&&a| a).count();
            assert!(
                in_span <= 2,
                "over-admission in a sliding span: {admissions:?}"
            );
        }
        assert_eq!(admissions.iter().filter(|&&a| a).count(), 4);
    }

    #[test]
    fn remove_restores_access() {
        let mut acl = AclTable::new();
        let p = Prefix1D::new(addr(30, 0, 0, 0), 8);
        acl.insert(p, AclAction::Deny);
        assert!(acl.contains(&p));
        assert!(acl.remove(&p));
        assert!(!acl.remove(&p));
        assert_eq!(acl.evaluate(addr(30, 1, 1, 1)), None);
        assert!(acl.is_empty());
    }

    #[test]
    fn rules_iterator_exposes_all_rules() {
        let mut acl = AclTable::new();
        acl.insert(Prefix1D::new(addr(1, 0, 0, 0), 8), AclAction::Deny);
        acl.insert(Prefix1D::new(addr(2, 0, 0, 0), 8), AclAction::Tarpit);
        assert_eq!(acl.rules().count(), 2);
    }
}
