//! HAProxy-style access control lists keyed by source subnet.
//!
//! The paper extends HAProxy's ACLs so that mitigation can act on entire
//! subnets rather than individual flows: a rule maps a source prefix to an
//! action (Deny, Tarpit, or a rate limit). Lookup is longest-prefix-match, so
//! a specific exemption can coexist with a broad block.

use std::collections::HashMap;

use memento_core::{GrainMap, TimedWindow, WindowQuery};
use memento_hierarchy::Prefix1D;
use memento_sketches::ExactWindow;

/// Grains per rate-limit window (PR 9): expiry granularity is
/// `window / 64` ticks, the same sub-window grain count Kong and
/// commcare-hq-style sliding rate limiters use.
const RATE_LIMIT_GRAINS: u64 = 64;

/// Action applied to a matching source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AclAction {
    /// Reject the request outright (HTTP 403 / connection reset).
    Deny,
    /// Keep the connection open and never answer (wastes attacker state).
    Tarpit,
    /// Allow at most `max_per_window` requests from the subnet per sliding
    /// window of `window` clock ticks (e.g. nanoseconds — a 5-second limit
    /// is `window: 5_000_000_000` under a nanosecond clock).
    RateLimit {
        /// Maximum admitted requests per window.
        max_per_window: u64,
        /// Window length in clock ticks.
        window: u64,
    },
}

/// A set of subnet ACL rules with longest-prefix-match lookup.
///
/// Rate-limit rules are enforced over a *sliding time window* (PR 9): each
/// rate-limited prefix keeps a [`TimedWindow`]-wrapped [`ExactWindow`] of
/// its admitted requests over the last `window` clock ticks, advanced to
/// the request's timestamp via the grain clock (whole-grain rotations of
/// the closed-form `skip(n)`, `RATE_LIMIT_GRAINS` grains per window) and
/// read through the [`WindowQuery`] surface — the same read-only trait the
/// measurement engines and snapshot readers answer. The per-grain position
/// budget equals `max_per_window`, so the rotation schedule can never fall
/// behind the admissions and an entry expires at most one grain late,
/// never early: a burst cannot over-admit in *any* `window`-tick span,
/// including spans straddling grain boundaries.
#[derive(Debug, Clone, Default)]
pub struct AclTable {
    /// Rules indexed by prefix (byte-granular lengths only).
    rules: HashMap<Prefix1D, AclAction>,
    /// Sliding record of admitted requests per rate-limited prefix, on the
    /// time plane: positions are admissions, ticks come from the caller's
    /// clock (or the internal one-tick-per-request clock).
    rate_windows: HashMap<Prefix1D, TimedWindow<Prefix1D, ExactWindow<Prefix1D>>>,
    /// Internal clock for the untimed [`evaluate`](Self::evaluate) path:
    /// advances one tick per evaluation, and never runs behind the newest
    /// timestamp seen by [`evaluate_at`](Self::evaluate_at).
    clock: u64,
}

/// Builds the per-prefix admission window for a rate-limit rule: `g`
/// effective grains over `window` ticks, with a per-grain position budget
/// equal to the full admission budget (so the schedule never falls behind
/// the positions consumed by admissions — see the [`AclTable`] docs).
fn rate_window(max_per_window: u64, window: u64) -> TimedWindow<Prefix1D, ExactWindow<Prefix1D>> {
    let ticks = window.max(1);
    let per_grain = max_per_window.max(1);
    // Probe the grain geometry first: the effective grain count depends
    // only on (ticks, grain target), not on the position budget.
    let grains = GrainMap::new(ticks, 1, RATE_LIMIT_GRAINS).grains();
    let positions = grains * per_grain;
    let inner = ExactWindow::new(positions as usize);
    TimedWindow::with_grains(inner, ticks, positions, grains)
}

impl AclTable {
    /// Creates an empty table (everything allowed).
    pub fn new() -> Self {
        AclTable::default()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rule is installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Installs (or replaces) a rule.
    pub fn insert(&mut self, prefix: Prefix1D, action: AclAction) {
        self.rules.insert(prefix, action);
    }

    /// Removes a rule; returns whether one existed.
    pub fn remove(&mut self, prefix: &Prefix1D) -> bool {
        self.rate_windows.remove(prefix);
        self.rules.remove(prefix).is_some()
    }

    /// True when a rule exists for exactly this prefix.
    pub fn contains(&self, prefix: &Prefix1D) -> bool {
        self.rules.contains_key(prefix)
    }

    /// The installed rules (for inspection / synchronization).
    pub fn rules(&self) -> impl Iterator<Item = (&Prefix1D, &AclAction)> {
        self.rules.iter()
    }

    /// Longest-prefix-match lookup of the rule covering `src`, if any.
    pub fn matching_rule(&self, src: u32) -> Option<(Prefix1D, AclAction)> {
        // Byte-granular prefixes: probe /32, /24, /16, /8, /0 from most to
        // least specific.
        for len in [32u8, 24, 16, 8, 0] {
            let p = Prefix1D::new(src, len);
            if let Some(a) = self.rules.get(&p) {
                return Some((p, *a));
            }
        }
        None
    }

    /// Evaluates a request from `src` arriving at clock tick `now`: returns
    /// the action to apply, or `None` when the request is admitted.
    /// Rate-limit rules admit up to their budget over the *sliding time
    /// window* ending at `now` and report `Some(RateLimit…)` for the
    /// excess. Non-monotone timestamps are clamped to the newest seen
    /// (the [`TimedWindow`] clock policy — never a panic).
    pub fn evaluate_at(&mut self, src: u32, now: u64) -> Option<AclAction> {
        self.clock = self.clock.max(now);
        let (prefix, action) = self.matching_rule(src)?;
        match action {
            AclAction::Deny | AclAction::Tarpit => Some(action),
            AclAction::RateLimit {
                max_per_window,
                window,
            } => {
                let win = self
                    .rate_windows
                    .entry(prefix)
                    .or_insert_with(|| rate_window(max_per_window, window));
                // Advance to the arrival time, then read through the same
                // query surface the measurement engines answer.
                let query: &dyn WindowQuery<Prefix1D> = win.query_at(now);
                let admit = query.estimate(&prefix) < max_per_window as f64;
                if admit {
                    // Record the admission at its arrival time; denied
                    // requests consume no window position.
                    win.record_at(prefix, now);
                    None
                } else {
                    Some(action)
                }
            }
        }
    }

    /// Evaluates a request without an external clock: each call advances the
    /// internal clock by one tick, so `window` behaves as a request count —
    /// the pre-PR 9 semantics, kept for callers without arrival timestamps.
    pub fn evaluate(&mut self, src: u32) -> Option<AclAction> {
        let now = self.clock + 1;
        self.evaluate_at(src, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn deny_blocks_the_whole_subnet() {
        let mut acl = AclTable::new();
        acl.insert(Prefix1D::new(addr(10, 0, 0, 0), 8), AclAction::Deny);
        assert_eq!(acl.evaluate(addr(10, 99, 1, 2)), Some(AclAction::Deny));
        assert_eq!(acl.evaluate(addr(11, 99, 1, 2)), None);
        assert_eq!(acl.len(), 1);
    }

    #[test]
    fn longest_prefix_match_wins() {
        let mut acl = AclTable::new();
        acl.insert(Prefix1D::new(addr(10, 0, 0, 0), 8), AclAction::Deny);
        acl.insert(Prefix1D::new(addr(10, 1, 0, 0), 16), AclAction::Tarpit);
        assert_eq!(acl.evaluate(addr(10, 1, 2, 3)), Some(AclAction::Tarpit));
        assert_eq!(acl.evaluate(addr(10, 2, 2, 3)), Some(AclAction::Deny));
        let (p, _) = acl.matching_rule(addr(10, 1, 9, 9)).unwrap();
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn rate_limit_admits_up_to_budget_per_window() {
        let mut acl = AclTable::new();
        acl.insert(
            Prefix1D::new(addr(20, 0, 0, 0), 8),
            AclAction::RateLimit {
                max_per_window: 3,
                window: 10,
            },
        );
        let mut admitted = 0;
        let mut limited = 0;
        for _ in 0..10 {
            match acl.evaluate(addr(20, 5, 5, 5)) {
                None => admitted += 1,
                Some(AclAction::RateLimit { .. }) => limited += 1,
                other => panic!("unexpected action {other:?}"),
            }
        }
        assert_eq!(admitted, 3);
        assert_eq!(limited, 7);
        // Sliding window on the grain clock: expiry lands at most one grain
        // late (never early), so the 11th evaluation still covers the first
        // admission; by the 12th the slot has freed up.
        assert!(acl.evaluate(addr(20, 5, 5, 5)).is_some());
        assert_eq!(acl.evaluate(addr(20, 5, 5, 5)), None);
    }

    #[test]
    fn rate_limit_refills_after_idle_time() {
        // A real 5-second window under a nanosecond clock: a burst exhausts
        // the budget, and an idle gap longer than the window refills it
        // (through the wholesale-clear path of the timed window).
        let mut acl = AclTable::new();
        acl.insert(
            Prefix1D::new(addr(22, 0, 0, 0), 8),
            AclAction::RateLimit {
                max_per_window: 2,
                window: 5_000_000_000,
            },
        );
        let src = addr(22, 4, 4, 4);
        assert_eq!(acl.evaluate_at(src, 1_000), None);
        assert_eq!(acl.evaluate_at(src, 2_000), None);
        assert!(acl.evaluate_at(src, 3_000).is_some(), "budget exhausted");
        // Still inside the 5 s window: denied.
        assert!(acl.evaluate_at(src, 4_999_000_000).is_some());
        // 6.2 s after the burst: the whole window has rotated out.
        assert_eq!(acl.evaluate_at(src, 6_200_000_000), None);
    }

    #[test]
    fn non_monotone_timestamps_clamp_without_panicking() {
        let mut acl = AclTable::new();
        acl.insert(
            Prefix1D::new(addr(23, 0, 0, 0), 8),
            AclAction::RateLimit {
                max_per_window: 1,
                window: 1_000,
            },
        );
        let src = addr(23, 1, 1, 1);
        assert_eq!(acl.evaluate_at(src, 500), None);
        // A far-backward clock is clamped to the newest observation: the
        // window has not rotated, so the budget is still spent.
        assert!(acl.evaluate_at(src, 3).is_some());
        // Untimed evaluations keep ticking from the newest timestamp.
        assert!(acl.evaluate(src).is_some());
    }

    #[test]
    fn rate_limit_window_slides_instead_of_tumbling() {
        // A burst straddling what used to be a tumbling-window boundary must
        // not get double budget: with max 2 per 6-request window, 12
        // back-to-back requests admit at most 2 in ANY 6-request span.
        let mut acl = AclTable::new();
        acl.insert(
            Prefix1D::new(addr(21, 0, 0, 0), 8),
            AclAction::RateLimit {
                max_per_window: 2,
                window: 6,
            },
        );
        let admissions: Vec<bool> = (0..12)
            .map(|_| acl.evaluate(addr(21, 1, 1, 1)).is_none())
            .collect();
        for span in admissions.windows(6) {
            let in_span = span.iter().filter(|&&a| a).count();
            assert!(
                in_span <= 2,
                "over-admission in a sliding span: {admissions:?}"
            );
        }
        assert_eq!(admissions.iter().filter(|&&a| a).count(), 4);
    }

    #[test]
    fn remove_restores_access() {
        let mut acl = AclTable::new();
        let p = Prefix1D::new(addr(30, 0, 0, 0), 8);
        acl.insert(p, AclAction::Deny);
        assert!(acl.contains(&p));
        assert!(acl.remove(&p));
        assert!(!acl.remove(&p));
        assert_eq!(acl.evaluate(addr(30, 1, 1, 1)), None);
        assert!(acl.is_empty());
    }

    #[test]
    fn rules_iterator_exposes_all_rules() {
        let mut acl = AclTable::new();
        acl.insert(Prefix1D::new(addr(1, 0, 0, 0), 8), AclAction::Deny);
        acl.insert(Prefix1D::new(addr(2, 0, 0, 0), 8), AclAction::Tarpit);
        assert_eq!(acl.rules().count(), 2);
    }
}
