//! Backend server pool.
//!
//! Stands in for the Apache instances behind the paper's HAProxy deployment:
//! the pool dispatches served requests to backends (round-robin, as HAProxy
//! defaults to, or least-connections) and tracks per-backend load so the
//! flood experiments can report how much attack traffic reached the servers.

use serde::{Deserialize, Serialize};

/// One backend server.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Backend {
    /// Backend identifier.
    pub id: usize,
    /// Requests currently "in flight" (used by least-connections dispatch).
    pub active: u64,
    /// Total requests served.
    pub served: u64,
    /// Whether the backend is in rotation.
    pub healthy: bool,
}

impl Backend {
    /// Creates a healthy, idle backend.
    pub fn new(id: usize) -> Self {
        Backend {
            id,
            active: 0,
            served: 0,
            healthy: true,
        }
    }
}

/// Dispatch strategy for the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchStrategy {
    /// Rotate through healthy backends (HAProxy's default `roundrobin`).
    RoundRobin,
    /// Pick the healthy backend with the fewest active requests
    /// (HAProxy's `leastconn`).
    LeastConnections,
}

/// A pool of backend servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendPool {
    backends: Vec<Backend>,
    strategy: DispatchStrategy,
    next: usize,
}

impl BackendPool {
    /// Creates a pool of `n` healthy backends.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, strategy: DispatchStrategy) -> Self {
        assert!(n > 0, "a pool needs at least one backend");
        BackendPool {
            backends: (0..n).map(Backend::new).collect(),
            strategy,
            next: 0,
        }
    }

    /// Number of backends (healthy or not).
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when the pool has no backends (never the case after `new`).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The dispatch strategy.
    pub fn strategy(&self) -> DispatchStrategy {
        self.strategy
    }

    /// Immutable view of the backends.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Marks a backend healthy/unhealthy (e.g. failed health check).
    pub fn set_health(&mut self, id: usize, healthy: bool) {
        if let Some(b) = self.backends.get_mut(id) {
            b.healthy = healthy;
        }
    }

    /// Dispatches one request; returns the chosen backend id, or `None` when
    /// no backend is healthy.
    pub fn dispatch(&mut self) -> Option<usize> {
        if !self.backends.iter().any(|b| b.healthy) {
            return None;
        }
        let id = match self.strategy {
            DispatchStrategy::RoundRobin => {
                let n = self.backends.len();
                let mut idx = self.next;
                loop {
                    let candidate = idx % n;
                    idx += 1;
                    if self.backends[candidate].healthy {
                        self.next = idx % n;
                        break candidate;
                    }
                }
            }
            DispatchStrategy::LeastConnections => self
                .backends
                .iter()
                .filter(|b| b.healthy)
                .min_by_key(|b| b.active)
                .map(|b| b.id)
                .expect("at least one healthy backend"),
        };
        let b = &mut self.backends[id];
        b.active += 1;
        b.served += 1;
        Some(id)
    }

    /// Marks one request on `id` as finished.
    pub fn complete(&mut self, id: usize) {
        if let Some(b) = self.backends.get_mut(id) {
            b.active = b.active.saturating_sub(1);
        }
    }

    /// Total requests served by the whole pool.
    pub fn total_served(&self) -> u64 {
        self.backends.iter().map(|b| b.served).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_rotates_evenly() {
        let mut pool = BackendPool::new(3, DispatchStrategy::RoundRobin);
        let mut counts = [0u32; 3];
        for _ in 0..9 {
            counts[pool.dispatch().unwrap()] += 1;
        }
        assert_eq!(counts, [3, 3, 3]);
        assert_eq!(pool.total_served(), 9);
    }

    #[test]
    fn round_robin_skips_unhealthy_backends() {
        let mut pool = BackendPool::new(3, DispatchStrategy::RoundRobin);
        pool.set_health(1, false);
        for _ in 0..10 {
            let id = pool.dispatch().unwrap();
            assert_ne!(id, 1);
        }
    }

    #[test]
    fn least_connections_prefers_idle_backend() {
        let mut pool = BackendPool::new(2, DispatchStrategy::LeastConnections);
        let a = pool.dispatch().unwrap();
        let b = pool.dispatch().unwrap();
        assert_ne!(a, b, "second request must go to the idle backend");
        pool.complete(a);
        let c = pool.dispatch().unwrap();
        assert_eq!(c, a, "completed backend is the least loaded again");
    }

    #[test]
    fn no_healthy_backend_means_no_dispatch() {
        let mut pool = BackendPool::new(2, DispatchStrategy::RoundRobin);
        pool.set_health(0, false);
        pool.set_health(1, false);
        assert_eq!(pool.dispatch(), None);
    }

    #[test]
    #[should_panic(expected = "at least one backend")]
    fn empty_pool_panics() {
        let _ = BackendPool::new(0, DispatchStrategy::RoundRobin);
    }
}
