//! # memento-shard
//!
//! Multi-core sharding engine for the Memento reproduction: scales any
//! [`SlidingWindowEstimator`](memento_core::traits::SlidingWindowEstimator)
//! or [`HhhAlgorithm`](memento_core::traits::HhhAlgorithm) across worker
//! threads while answering the *same* window queries through the *same*
//! object-safe traits.
//!
//! The paper's headline result is line-rate single-core processing (§5); the
//! system this reproduction grows toward also has to scale *out* when one
//! core is not enough. The engine applies the standard recipe from
//! partitioned streaming measurement (the mergeable-sliding-window view of
//! the heavy-hitter literature, Braverman et al.), with **global-position
//! windows**:
//!
//! * **hash-partition** keys over `N` shards, so each flow's traffic lands
//!   wholly in one shard;
//! * give each shard a **full window of `W` packets anchored at the global
//!   stream position**: the router stamps every key with the *gap* — how
//!   many packets went to other shards since that shard's previous key —
//!   and the worker replays
//!   [`skip(gap)`](memento_core::traits::SlidingWindowEstimator::skip)
//!   before each key through the fused
//!   `update_batch_positioned` path, the D-Memento-style bulk window
//!   update of the Memento paper (§6). The skips are **closed-form** —
//!   sublinear in the gap, `O(1)` in the drained steady state — and the
//!   path coalesces consecutive stamps, so a run of foreign packets costs
//!   one skip however long it is (a shard owning few keys under heavy
//!   skew receives huge gaps and pays for them with arithmetic, not a
//!   walk). A shard's window therefore always covers exactly the last
//!   `W` packets of the *combined* stream, no matter how skewed the
//!   partition is (a count-based `W/N` window of a shard's own packets
//!   does not: the shard owning a dominant flow would cover far less
//!   than `W` global packets);
//! * feed shards *batches* over bounded channels, reusing each algorithm's
//!   `update_batch` fast path (for Memento, the geometric skip sampling of
//!   §5) and getting backpressure for free;
//! * **merge** per-shard answers at query time: route per-flow queries to
//!   the owning shard, union heavy-hitter sets, sum prefix estimates (HHH
//!   candidates are collected at `θ/N` per shard and re-validated against
//!   the global `θ·W` bar).
//!
//! ## The query plane (PR 7, incremental since PR 8)
//!
//! Queries no longer piggyback on the per-shard update FIFOs. Instead the
//! engines run a **snapshot publication pipeline** ([`PublishPolicy`]):
//! workers periodically freeze per-shard summaries — estimator shards
//! freeze *incrementally* ([`memento_core::WindowPatch`] covering only the
//! slots dirtied since the previous epoch, folded onto persistent
//! [`memento_core::DeltaAssembler`] views, so publication costs O(dirty)
//! rather than O(k) per shard; unchanged engines re-stamp the previous
//! snapshot without freezing at all), HHH shards freeze full immutable
//! [`memento_core::FrozenHhh`] summaries — and each complete epoch is
//! assembled into an [`EngineSnapshot`] (or [`HhhEngineSnapshot`]) under
//! the global-position-window contract, then swapped into an epoch-tagged
//! double buffer. The
//! engines' own [`WindowQuery`](memento_core::WindowQuery) /
//! [`HhhQuery`](memento_core::HhhQuery) methods answer from the latest
//! snapshot (forcing a publication first under the default
//! `on_query = true`, which reproduces the historical flush-then-read
//! answers bit-for-bit), and cheaply-clonable wait-free reader handles
//! ([`SnapshotReader`] / [`HhhSnapshotReader`]) answer from it at memory
//! speed on any thread — stale by at most one publication interval, never
//! blocking on (or blocked by) ingest.
//!
//! ## Example
//!
//! ```
//! use memento_core::WindowQuery;
//! use memento_core::traits::SlidingWindowEstimator;
//! use memento_shard::ShardedEstimator;
//!
//! // A window of 40_000 packets split over 4 worker threads.
//! let mut sharded: ShardedEstimator<u64> = ShardedEstimator::memento(4, 256, 40_000, 1.0, 7);
//! // A wait-free query handle, usable from any thread.
//! let reader = sharded.reader();
//! let keys: Vec<u64> = (0..20_000u64).map(|i| i % 500).collect();
//! sharded.update_batch(&keys);
//! sharded.publish_now();
//! assert_eq!(sharded.processed(), 20_000);
//! assert!(sharded.estimate(&0) >= 40.0);
//! assert_eq!(reader.processed(), 20_000);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod estimator;
mod hhh;
mod router;
mod snapshot;
mod worker;

pub use estimator::{BoxedEstimator, ShardedEstimator};
pub use hhh::{BoxedHhh, ShardedHhh};
pub use snapshot::{
    EngineSnapshot, HhhEngineSnapshot, HhhSnapshotReader, PublishPolicy, SnapshotReader,
};

/// Default number of keys buffered per shard before a batch is shipped to
/// the worker. Large enough to amortize the channel send and let the
/// geometric-skip batch path stride, small enough to keep queries fresh.
pub const DEFAULT_FLUSH_THRESHOLD: usize = 2_048;

/// Default bound of each worker's job queue, in batches. Bounds the number
/// of in-flight batches per shard (backpressure) to keep memory flat when
/// the producer outruns a worker.
pub const DEFAULT_QUEUE_DEPTH: usize = 8;
