//! Hash-partitioned multi-core engine for [`HhhAlgorithm`]s.

use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use memento_core::traits::{HhhAlgorithm, HhhQuery};
use memento_core::HMemento;
use memento_hierarchy::Hierarchy;
use memento_sketches::fasthash;

use crate::router::Router;
use crate::snapshot::{HhhEngineSnapshot, HhhHub, HhhSnapshotReader, PublishPolicy, SnapshotHub};
use crate::worker::ShardWorker;
use crate::{DEFAULT_FLUSH_THRESHOLD, DEFAULT_QUEUE_DEPTH};

/// The boxed per-shard HHH algorithm each worker thread owns.
pub type BoxedHhh<Hi> = Box<dyn HhhAlgorithm<Hi> + Send>;

/// A hierarchical heavy-hitters algorithm scaled across worker threads,
/// with **global-position windows**.
///
/// Items are hash-partitioned over `N` shards, each a worker thread owning
/// an independent HHH instance over a **full window of `W` packets at the
/// global stream position**: the router stamps every item with the count
/// of packets routed to other shards since that shard's previous item, and
/// the worker replays [`skip(gap)`](HhhAlgorithm::skip) before each item
/// (the D-Memento-style bulk window update). Unlike
/// per-flow estimation, a *prefix* aggregates many items that may hash to
/// different shards, so the merge is summation rather than routing:
/// [`HhhQuery::estimate`] sums the per-shard prefix estimates.
///
/// [`HhhQuery::output`] is re-derived for full-window shards: a shard
/// sees only ~`1/N` of the traffic but measures it against the full `W`, so
/// a globally-`θ`-heavy prefix shows up in some shard at only `θ/N` of that
/// shard's window — candidates are therefore collected at the per-shard
/// threshold `θ/N` and the union is re-validated against the global `θ·W`
/// bar using the summed (upper-bound) estimates, which filters the
/// prefixes that cleared `θ/N` in their shard without being `θ`-heavy
/// globally.
///
/// **Queries are served from published snapshots** (PR 7): per the
/// [`PublishPolicy`], the engine periodically freezes every shard's
/// candidate set with its frequency bounds into an immutable
/// [`HhhEngineSnapshot`] that the engine's own [`HhhQuery`] methods — and
/// any number of wait-free [`HhhSnapshotReader`] handles
/// ([`Self::reader`]) — answer from without touching a worker FIFO. With
/// the default `on_query = true` policy the engine's own queries force a
/// publication first, reproducing the historical flush-then-read semantics
/// bit-for-bit; readers observe bounded staleness (≤ one publication
/// interval) instead. The old FIFO piggyback path survives only as the
/// `#[doc(hidden)]` [`Self::query_via_fifo`] escape hatch for differential
/// tests.
pub struct ShardedHhh<Hi: Hierarchy + 'static> {
    name: &'static str,
    workers: Vec<ShardWorker<BoxedHhh<Hi>>>,
    /// Gap-stamped buffers and position bookkeeping (see
    /// [`crate::ShardedEstimator`] for the locking rationale).
    state: Mutex<Router<Hi::Item>>,
    flush_threshold: usize,
    /// Snapshot publication cadence and on-query behaviour.
    policy: PublishPolicy,
    /// Batches shipped since the last publication (mutated only under the
    /// router lock; atomic so `&self` query methods can read it).
    shipped: AtomicUsize,
    /// Snapshot assembly and the epoch double buffer, shared with every
    /// [`HhhSnapshotReader`] handle.
    hub: Arc<HhhHub<Hi>>,
    /// Whether the inner algorithm has interval (landmark) semantics, cached
    /// at construction.
    interval: bool,
}

impl<Hi: Hierarchy + Send + Sync + 'static> ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + Sync + 'static,
{
    /// Creates a sharded HHH engine with `shards` workers, each owning the
    /// algorithm built by `factory(shard_index)`. Every per-shard algorithm
    /// must be configured with the **full global window `W`** — the router
    /// keeps it at the global stream position via
    /// [`skip`](HhhAlgorithm::skip). `window` is that global window size
    /// when known; it enables [`output`](HhhQuery::output)'s `θ/N`
    /// candidate collection and `θ·W` re-validation — pass `None` only for
    /// algorithms without a meaningful window. The engine starts under
    /// [`PublishPolicy::default`]; override with [`Self::with_policy`].
    ///
    /// # Panics
    /// Panics when `shards` is zero, when a factory-built algorithm reports
    /// itself as not [`mergeable`](HhhAlgorithm::mergeable) — global-position
    /// sharded windows require algorithms whose `skip` can advance the
    /// window over packets recorded elsewhere — or when it cannot
    /// [`freeze`](HhhQuery::freeze) a snapshot summary (the query plane
    /// serves every read from published snapshots).
    pub fn new<F>(name: &'static str, shards: usize, window: Option<usize>, mut factory: F) -> Self
    where
        F: FnMut(usize) -> BoxedHhh<Hi>,
    {
        assert!(shards > 0, "shard count must be positive");
        let mut workers = Vec::with_capacity(shards);
        let mut interval = false;
        for i in 0..shards {
            let algorithm = factory(i);
            assert!(
                algorithm.mergeable(),
                "{} cannot answer global-position window queries across item partitions \
                 (its skip cannot anchor a shard's window at the global stream position); \
                 it cannot be sharded",
                algorithm.name()
            );
            assert!(
                algorithm.freeze().is_some(),
                "{} cannot freeze a snapshot summary; the sharded query plane serves \
                 every read from published snapshots and requires HhhQuery::freeze",
                algorithm.name()
            );
            interval = algorithm.is_interval();
            workers.push(ShardWorker::spawn(
                format!("{name}-shard-{i}"),
                DEFAULT_QUEUE_DEPTH,
                algorithm,
            ));
        }
        let hub = Arc::new(SnapshotHub::new(
            shards,
            Box::new(move |epoch, parts| HhhEngineSnapshot::assemble(epoch, name, window, parts)),
        ));
        ShardedHhh {
            name,
            workers,
            state: Mutex::new(Router::new(shards)),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            policy: PublishPolicy::default(),
            shipped: AtomicUsize::new(0),
            hub,
            interval,
        }
    }

    /// A sharded [`HMemento`]: every shard keeps a full `W`-packet window
    /// at the global stream position with the full `k` counters (same error
    /// bound as the single instance; the `N×` counter memory is the price
    /// of full-window coverage per shard).
    pub fn h_memento(
        hier: Hi,
        shards: usize,
        counters: usize,
        window: usize,
        tau: f64,
        delta: f64,
        seed: u64,
    ) -> Self
    where
        Hi::Prefix: Hash,
    {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-h-memento", shards, Some(window), move |i| {
            let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Box::new(HMemento::new(
                hier.clone(),
                counters,
                window,
                tau,
                delta,
                shard_seed,
            ))
        })
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Sets the snapshot [`PublishPolicy`] (builder style, for use at
    /// construction: `ShardedHhh::h_memento(..).with_policy(..)`).
    pub fn with_policy(mut self, policy: PublishPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The engine's current snapshot [`PublishPolicy`].
    pub fn policy(&self) -> PublishPolicy {
        self.policy
    }

    /// A wait-free handle answering [`HhhQuery`] from the latest published
    /// snapshot: cheap to clone, `Send + Sync`, stale by at most one
    /// publication interval, and never touching the worker FIFOs.
    pub fn reader(&self) -> HhhSnapshotReader<Hi> {
        HhhSnapshotReader::new(Arc::clone(&self.hub), self.name)
    }

    /// The shard owning `item`: the same [`fasthash::route`] helper as the
    /// estimator engine — one fast hash per routed item.
    fn shard_of(&self, item: &Hi::Item) -> usize {
        fasthash::route(item, self.workers.len())
    }

    /// Ships one shard's gap-stamped items plus the trailing skip that
    /// advances the shard's window to the current global position
    /// (tail-only skips included).
    fn ship_shard(&self, state: &mut Router<Hi::Item>, shard: usize) {
        let Some((gaps, items, tail)) = state.take_shipment(shard) else {
            return;
        };
        self.workers[shard].send(Box::new(move |alg| {
            if !items.is_empty() {
                alg.update_batch_positioned(&gaps, &items);
            }
            if tail > 0 {
                alg.skip(tail);
            }
        }));
        self.shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Ships every shard's pending buffer and advances every shard to the
    /// current global stream position, without publishing a snapshot.
    fn ship_all(&self) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
    }

    /// Publishes a snapshot if the periodic cadence is due.
    fn maybe_publish(&self, state: &mut Router<Hi::Item>) {
        if self.policy.every_batches > 0
            && self.shipped.load(Ordering::Relaxed) >= self.policy.every_batches
        {
            self.publish_epoch(state);
        }
    }

    /// Ships all buffers (position sync), allocates the next epoch and
    /// enqueues one freeze job per worker FIFO (see
    /// `ShardedEstimator::publish_epoch` for the ordering argument).
    fn publish_epoch(&self, state: &mut Router<Hi::Item>) -> u64 {
        for shard in 0..self.workers.len() {
            self.ship_shard(state, shard);
        }
        self.shipped.store(0, Ordering::Relaxed);
        let epoch = self.hub.begin_epoch();
        for (shard, worker) in self.workers.iter().enumerate() {
            let hub = Arc::clone(&self.hub);
            worker.send(Box::new(move |alg| {
                hub.deliver(
                    epoch,
                    shard,
                    alg.freeze()
                        .expect("freeze capability checked at construction"),
                );
            }));
        }
        epoch
    }

    /// Publishes a fresh snapshot *now* — ships all pending buffers,
    /// freezes every shard at the current global position, waits for the
    /// merged snapshot to appear in the double buffer — and returns its
    /// epoch.
    pub fn publish_now(&self) -> u64 {
        let epoch = {
            let mut state = self.state.lock().expect("router state poisoned");
            self.publish_epoch(&mut state)
        };
        self.hub.wait_published(epoch);
        epoch
    }

    /// Flushes every shard's pending buffer and publishes a snapshot.
    #[deprecated(since = "0.2.0", note = "use `publish_now()`")]
    pub fn flush(&self) {
        self.publish_now();
    }

    /// The historical FIFO piggyback query path: ships all pending buffers,
    /// then runs `f` on shard `shard`'s worker thread after everything
    /// enqueued before it. Kept (hidden) for differential tests; everything
    /// else should go through [`HhhQuery`] or [`Self::reader`].
    #[doc(hidden)]
    pub fn query_via_fifo<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut BoxedHhh<Hi>) -> R + Send + 'static,
    {
        self.ship_all();
        self.workers[shard].call(f)
    }

    /// The snapshot every query method answers from (see
    /// `ShardedEstimator::read_snapshot`).
    fn read_snapshot(&self) -> Arc<HhhEngineSnapshot<Hi>> {
        if self.policy.on_query || self.hub.latest().is_none() {
            self.publish_now();
        }
        self.hub.latest().expect("publish_now published an epoch")
    }
}

impl<Hi: Hierarchy + 'static> std::fmt::Debug for ShardedHhh<Hi> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHhh")
            .field("name", &self.name)
            .field("shards", &self.workers.len())
            .field("flush_threshold", &self.flush_threshold)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<Hi: Hierarchy + Send + Sync + 'static> HhhQuery<Hi> for ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + Sync + 'static,
{
    fn name(&self) -> &'static str {
        self.name
    }

    /// A prefix's traffic spreads over every shard, so the network-wide view
    /// is the *sum* of the per-shard estimates — answered from the latest
    /// published [`HhhEngineSnapshot`]. Under the default
    /// [`PublishPolicy::on_query`] a publication is forced first, so the
    /// answer reflects every preceding update exactly like the old
    /// flush-then-FIFO path; with `on_query = false` it is stale by at most
    /// one publication interval.
    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.read_snapshot().estimate(prefix)
    }

    /// The union of the per-shard HHH sets collected at the per-shard
    /// threshold `θ/N`, re-validated against the global `θ·W` threshold
    /// (deduplicated, in prefix order) — answered from the latest published
    /// snapshot, with the same staleness semantics as
    /// [`Self::estimate`](HhhQuery::estimate).
    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.read_snapshot().output(theta)
    }

    /// Global stream position of the snapshot being read (doubles as the
    /// drain barrier under the default on-query publication).
    fn processed(&self) -> u64 {
        self.read_snapshot().processed()
    }
}

impl<Hi: Hierarchy + Send + Sync + 'static> HhhAlgorithm<Hi> for ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + Sync + 'static,
{
    fn update(&mut self, item: Hi::Item) {
        let shard = self.shard_of(&item);
        let mut state = self.state.lock().expect("router state poisoned");
        if state.push(shard, item, self.flush_threshold) >= self.flush_threshold {
            self.ship_shard(&mut state, shard);
            self.maybe_publish(&mut state);
        }
    }

    /// Tile-wise routing, as in
    /// `ShardedEstimator::update_batch`: a straight-line pass
    /// hashes a fixed tile of items into a stack array before the branchy
    /// push/ship loop consumes them, preserving push order (and every gap
    /// stamp) exactly.
    fn update_batch(&mut self, items: &[Hi::Item]) {
        const TILE: usize = 64;
        let mut state = self.state.lock().expect("router state poisoned");
        let mut routes = [0usize; TILE];
        for tile in items.chunks(TILE) {
            for (route, item) in routes.iter_mut().zip(tile) {
                *route = self.shard_of(item);
            }
            for (&item, &shard) in tile.iter().zip(&routes) {
                if state.push(shard, item, self.flush_threshold) >= self.flush_threshold {
                    self.ship_shard(&mut state, shard);
                    self.maybe_publish(&mut state);
                }
            }
        }
    }

    /// Advances the global stream position over `n` packets observed
    /// outside this engine. Pending buffers ship first so already-routed
    /// items keep their pre-skip positions; the advance then propagates via
    /// the gap stamps of the shards' next shipments.
    fn skip(&mut self, n: u64) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
        state.advance(n);
    }

    fn space_bytes(&self) -> usize {
        self.ship_all();
        self.workers
            .iter()
            .map(|w| w.call(|alg| alg.space_bytes()))
            .sum()
    }

    fn is_interval(&self) -> bool {
        self.interval
    }

    fn reset_interval(&mut self) {
        self.ship_all();
        for worker in &self.workers {
            worker.send(Box::new(|alg| alg.reset_interval()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcHierarchy};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn sharded_h_memento_finds_the_planted_subnet() {
        let window = 12_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 4_096, window, 1.0, 0.01, 3);
        // 50% of traffic from 10.0.0.0/8 spread over many hosts (so every
        // shard sees its share), the rest scattered.
        let items: Vec<u32> = (0..window as u32)
            .map(|i| {
                if i % 2 == 0 {
                    addr(10, (i % 199) as u8, (i % 251) as u8, (i % 13) as u8)
                } else {
                    addr(
                        20 + (i % 97) as u8,
                        (i % 231) as u8,
                        (i % 11) as u8,
                        (i % 17) as u8,
                    )
                }
            })
            .collect();
        sharded.update_batch(&items);
        assert_eq!(sharded.processed(), window as u64);
        assert!(sharded.space_bytes() > 0);
        let output = sharded.output(0.3);
        assert!(
            output.contains(&Prefix1D::new(addr(10, 0, 0, 0), 8)),
            "planted /8 missing from {output:?}"
        );
        // The /8 estimate sums the per-shard views and must cover the true
        // count (each per-shard estimate is an upper bound on its share).
        assert!(sharded.estimate(&Prefix1D::new(addr(10, 0, 0, 0), 8)) >= window as f64 * 0.5);
        assert!(!sharded.is_interval());
    }

    #[test]
    fn output_rejects_shard_local_heavy_hitters() {
        // One host carries ~12% of global traffic; its shard collects it as
        // a θ/N candidate, but the summed estimate stays far below the
        // global θ·W bar at θ = 0.3 — the merged output must reject it.
        let window = 8_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 4_096, window, 1.0, 0.01, 7);
        let hot = addr(10, 1, 2, 3);
        let items: Vec<u32> = (0..window as u32)
            .map(|i| {
                if i % 8 == 0 {
                    hot
                } else {
                    // Scattered background across many /8s and hosts.
                    addr(
                        30 + (i % 101) as u8,
                        (i % 241) as u8,
                        (i % 13) as u8,
                        (i % 17) as u8,
                    )
                }
            })
            .collect();
        sharded.update_batch(&items);
        let output = sharded.output(0.3);
        assert!(
            !output.contains(&Prefix1D::new(hot, 32)),
            "a 12%-of-traffic host must not pass θ = 0.3: {output:?}"
        );
        // It does pass once θ drops below its true global share.
        let output = sharded.output(0.05);
        assert!(
            output.contains(&Prefix1D::new(hot, 32)),
            "the host must appear at θ = 0.05: {output:?}"
        );
    }

    #[test]
    fn single_shard_matches_unsharded_h_memento() {
        let window = 6_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 1, 512, window, 1.0, 0.01, 9);
        let mut single = HMemento::new(SrcHierarchy, 512, window, 1.0, 0.01, 9);
        let items: Vec<u32> = (0..window as u32)
            .map(|i| addr((i % 7) as u8, (i % 53) as u8, 0, (i % 3) as u8))
            .collect();
        sharded.update_batch(&items);
        for &item in &items {
            single.update(item);
        }
        let p = Prefix1D::new(0, 8);
        assert_eq!(
            HhhQuery::<SrcHierarchy>::estimate(&sharded, &p),
            HMemento::estimate(&single, &p)
        );
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    fn reader_answers_hhh_queries_without_the_engine() {
        let window = 6_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 2, 1_024, window, 1.0, 0.01, 11)
            .with_policy(PublishPolicy {
                every_batches: 1,
                on_query: false,
            });
        let reader = sharded.reader();
        assert_eq!(reader.processed(), 0, "no snapshot before any publish");
        let items: Vec<u32> = (0..window as u32)
            .map(|i| addr(10, (i % 199) as u8, (i % 251) as u8, (i % 13) as u8))
            .collect();
        sharded.update_batch(&items);
        sharded.publish_now();
        let p8 = Prefix1D::new(addr(10, 0, 0, 0), 8);
        assert_eq!(reader.processed(), window as u64);
        assert!(reader.estimate(&p8) >= window as f64 * 0.7);
        assert!(reader.output(0.5).contains(&p8));
    }

    #[test]
    #[should_panic(expected = "global-position window")]
    fn interval_algorithms_are_refused() {
        use memento_baselines::Mst;
        let _ = ShardedHhh::<SrcHierarchy>::new("sharded-mst", 2, None, |_| {
            Box::new(Mst::new(SrcHierarchy, 64))
        });
    }

    #[test]
    fn windows_expire_at_the_global_position() {
        // A /8 that dominates one window and then vanishes must be
        // forgotten by the sharded engine once W *global* packets pass —
        // regardless of how few of the follow-up packets land in the shards
        // holding its hosts.
        let window = 4_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 2_048, window, 1.0, 0.01, 5);
        let hot: Vec<u32> = (0..window as u32)
            .map(|i| addr(42, (i % 61) as u8, (i % 17) as u8, (i % 5) as u8))
            .collect();
        sharded.update_batch(&hot);
        let p8 = Prefix1D::new(addr(42, 0, 0, 0), 8);
        // Level sampling (one of H prefixes per packet) adds noise around
        // the true count W; the point here is only "clearly hot".
        assert!(HhhQuery::<SrcHierarchy>::estimate(&sharded, &p8) >= 0.7 * window as f64);
        // Two full windows of unrelated traffic.
        let cold: Vec<u32> = (0..2 * window as u32)
            .map(|i| addr(200 + (i % 37) as u8, (i % 251) as u8, (i % 7) as u8, 1))
            .collect();
        sharded.update_batch(&cold);
        let leftover = HhhQuery::<SrcHierarchy>::estimate(&sharded, &p8);
        // Only the per-shard one-sided slack may remain (2 blocks × V per
        // shard plus Space-Saving noise) — far below the old count.
        assert!(
            leftover < 0.25 * window as f64,
            "stale /8 retained across the global window: {leftover}"
        );
    }
}
