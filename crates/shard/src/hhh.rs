//! Hash-partitioned multi-core engine for [`HhhAlgorithm`]s.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::Mutex;

use memento_core::traits::HhhAlgorithm;
use memento_core::HMemento;
use memento_hierarchy::Hierarchy;
use memento_sketches::fasthash;

use crate::router::Router;
use crate::worker::ShardWorker;
use crate::{DEFAULT_FLUSH_THRESHOLD, DEFAULT_QUEUE_DEPTH};

/// The boxed per-shard HHH algorithm each worker thread owns.
pub type BoxedHhh<Hi> = Box<dyn HhhAlgorithm<Hi> + Send>;

/// A hierarchical heavy-hitters algorithm scaled across worker threads,
/// with **global-position windows**.
///
/// Items are hash-partitioned over `N` shards, each a worker thread owning
/// an independent HHH instance over a **full window of `W` packets at the
/// global stream position**: the router stamps every item with the count
/// of packets routed to other shards since that shard's previous item, and
/// the worker replays [`skip(gap)`](HhhAlgorithm::skip) before each item
/// (the D-Memento-style bulk window update). Unlike
/// per-flow estimation, a *prefix* aggregates many items that may hash to
/// different shards, so the merge is summation rather than routing:
/// [`HhhAlgorithm::estimate`] sums the per-shard prefix estimates.
///
/// [`HhhAlgorithm::output`] is re-derived for full-window shards: a shard
/// sees only ~`1/N` of the traffic but measures it against the full `W`, so
/// a globally-`θ`-heavy prefix shows up in some shard at only `θ/N` of that
/// shard's window — candidates are therefore collected at the per-shard
/// threshold `θ/N` and the union is re-validated against the global `θ·W`
/// bar using the summed (upper-bound) estimates, which filters the
/// prefixes that cleared `θ/N` in their shard without being `θ`-heavy
/// globally.
pub struct ShardedHhh<Hi: Hierarchy + 'static> {
    name: &'static str,
    workers: Vec<ShardWorker<BoxedHhh<Hi>>>,
    /// Gap-stamped buffers and position bookkeeping (see
    /// [`crate::ShardedEstimator`] for the locking rationale).
    state: Mutex<Router<Hi::Item>>,
    flush_threshold: usize,
    /// Whether the inner algorithm has interval (landmark) semantics, cached
    /// at construction.
    interval: bool,
    /// Global window size `W` (also each shard's window now), when known:
    /// enables the `θ·W` re-validation of merged HHH outputs and the `θ/N`
    /// per-shard candidate threshold.
    window_total: Option<usize>,
}

impl<Hi: Hierarchy + 'static> ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + 'static,
{
    /// Creates a sharded HHH engine with `shards` workers, each owning the
    /// algorithm built by `factory(shard_index)`. Every per-shard algorithm
    /// must be configured with the **full global window `W`** — the router
    /// keeps it at the global stream position via
    /// [`skip`](HhhAlgorithm::skip). `window` is that global window size
    /// when known; it enables [`output`](HhhAlgorithm::output)'s `θ/N`
    /// candidate collection and `θ·W` re-validation — pass `None` only for
    /// algorithms without a meaningful window.
    ///
    /// # Panics
    /// Panics when `shards` is zero or a factory-built algorithm reports
    /// itself as not [`mergeable`](HhhAlgorithm::mergeable) — global-position
    /// sharded windows require algorithms whose `skip` can advance the
    /// window over packets recorded elsewhere.
    pub fn new<F>(name: &'static str, shards: usize, window: Option<usize>, mut factory: F) -> Self
    where
        F: FnMut(usize) -> BoxedHhh<Hi>,
    {
        assert!(shards > 0, "shard count must be positive");
        let mut workers = Vec::with_capacity(shards);
        let mut interval = false;
        for i in 0..shards {
            let algorithm = factory(i);
            assert!(
                algorithm.mergeable(),
                "{} cannot answer global-position window queries across item partitions \
                 (its skip cannot anchor a shard's window at the global stream position); \
                 it cannot be sharded",
                algorithm.name()
            );
            interval = algorithm.is_interval();
            workers.push(ShardWorker::spawn(
                format!("{name}-shard-{i}"),
                DEFAULT_QUEUE_DEPTH,
                algorithm,
            ));
        }
        ShardedHhh {
            name,
            workers,
            state: Mutex::new(Router::new(shards)),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            interval,
            window_total: window,
        }
    }

    /// A sharded [`HMemento`]: every shard keeps a full `W`-packet window
    /// at the global stream position with the full `k` counters (same error
    /// bound as the single instance; the `N×` counter memory is the price
    /// of full-window coverage per shard).
    pub fn h_memento(
        hier: Hi,
        shards: usize,
        counters: usize,
        window: usize,
        tau: f64,
        delta: f64,
        seed: u64,
    ) -> Self
    where
        Hi: Send + 'static,
        Hi::Prefix: Hash,
    {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-h-memento", shards, Some(window), move |i| {
            let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Box::new(HMemento::new(
                hier.clone(),
                counters,
                window,
                tau,
                delta,
                shard_seed,
            ))
        })
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// The shard owning `item`: the same [`fasthash::route`] helper as the
    /// estimator engine — one fast hash per routed item.
    fn shard_of(&self, item: &Hi::Item) -> usize {
        fasthash::route(item, self.workers.len())
    }

    /// Ships one shard's gap-stamped items plus the trailing skip that
    /// advances the shard's window to the current global position
    /// (tail-only skips included).
    fn ship_shard(&self, state: &mut Router<Hi::Item>, shard: usize) {
        let Some((gaps, items, tail)) = state.take_shipment(shard) else {
            return;
        };
        self.workers[shard].send(Box::new(move |alg| {
            if !items.is_empty() {
                alg.update_batch_positioned(&gaps, &items);
            }
            if tail > 0 {
                alg.skip(tail);
            }
        }));
    }

    /// Flushes every shard's pending buffer and advances every shard to the
    /// current global stream position.
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
    }

    /// Sum of the per-shard estimates for a prefix (callers flush first).
    fn summed_estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.workers
            .iter()
            .map(|worker| {
                let p = *prefix;
                worker.call(move |alg| alg.estimate(&p))
            })
            .sum()
    }
}

impl<Hi: Hierarchy + 'static> std::fmt::Debug for ShardedHhh<Hi> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHhh")
            .field("name", &self.name)
            .field("shards", &self.workers.len())
            .field("flush_threshold", &self.flush_threshold)
            .finish_non_exhaustive()
    }
}

impl<Hi: Hierarchy + 'static> HhhAlgorithm<Hi> for ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + 'static,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn update(&mut self, item: Hi::Item) {
        let shard = self.shard_of(&item);
        let mut state = self.state.lock().expect("router state poisoned");
        if state.push(shard, item, self.flush_threshold) >= self.flush_threshold {
            self.ship_shard(&mut state, shard);
        }
    }

    /// Tile-wise routing, as in
    /// `ShardedEstimator::update_batch`: a straight-line pass
    /// hashes a fixed tile of items into a stack array before the branchy
    /// push/ship loop consumes them, preserving push order (and every gap
    /// stamp) exactly.
    fn update_batch(&mut self, items: &[Hi::Item]) {
        const TILE: usize = 64;
        let mut state = self.state.lock().expect("router state poisoned");
        let mut routes = [0usize; TILE];
        for tile in items.chunks(TILE) {
            for (route, item) in routes.iter_mut().zip(tile) {
                *route = self.shard_of(item);
            }
            for (&item, &shard) in tile.iter().zip(&routes) {
                if state.push(shard, item, self.flush_threshold) >= self.flush_threshold {
                    self.ship_shard(&mut state, shard);
                }
            }
        }
    }

    /// Advances the global stream position over `n` packets observed
    /// outside this engine. Pending buffers ship first so already-routed
    /// items keep their pre-skip positions; the advance then propagates via
    /// the gap stamps of the shards' next shipments.
    fn skip(&mut self, n: u64) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
        state.advance(n);
    }

    /// A prefix's traffic spreads over every shard, so the network-wide view
    /// is the *sum* of the per-shard estimates.
    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.flush();
        self.summed_estimate(prefix)
    }

    /// The union of the per-shard HHH sets collected at the per-shard
    /// threshold `θ/N`, re-validated against the global `θ·W` threshold
    /// (deduplicated, in prefix order).
    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.flush();
        // Each shard measures ~1/N of the traffic against the full window
        // W, so a globally-θ-heavy prefix reaches only ~θ/N of a shard's
        // window: collect candidates at θ/N so no global HHH is missed —
        // but only when the window is known and the θ·W re-validation
        // below can filter the widened union. Without a window, pass θ
        // through unchanged: no over-reporting, at the cost of possible
        // false negatives for prefixes split across shards.
        let per_shard_theta = if self.window_total.is_some() {
            theta / self.workers.len() as f64
        } else {
            theta
        };
        let mut seen: HashSet<Hi::Prefix> = HashSet::new();
        for worker in &self.workers {
            seen.extend(worker.call(move |alg| alg.output(per_shard_theta)));
        }
        let mut merged: Vec<Hi::Prefix> = seen.into_iter().collect();
        // Keep a candidate only when the summed (upper-bound) estimate
        // clears the global θ·W bar — upper bounds never undercount, so no
        // legitimate HHH is dropped, while prefixes that cleared θ/N in
        // their shard without being θ-heavy globally are filtered. One
        // round-trip per worker estimates every candidate at once.
        if let Some(window) = self.window_total {
            let floor = theta * window as f64;
            let mut totals = vec![0.0f64; merged.len()];
            for worker in &self.workers {
                let candidates = merged.clone();
                let partial = worker.call(move |alg| {
                    candidates
                        .iter()
                        .map(|p| alg.estimate(p))
                        .collect::<Vec<f64>>()
                });
                for (total, part) in totals.iter_mut().zip(partial) {
                    *total += part;
                }
            }
            let mut keep = totals.iter().map(|t| *t >= floor);
            merged.retain(|_| keep.next().unwrap_or(false));
        }
        merged.sort_unstable();
        merged
    }

    fn space_bytes(&self) -> usize {
        self.flush();
        self.workers
            .iter()
            .map(|w| w.call(|alg| alg.space_bytes()))
            .sum()
    }

    /// Global stream position: after the flush every shard sits at the same
    /// position, so this is the maximum — not the sum — of the per-shard
    /// counts (which doubles as the drain barrier).
    fn processed(&self) -> u64 {
        self.flush();
        self.workers
            .iter()
            .map(|w| w.call(|alg| alg.processed()))
            .max()
            .unwrap_or(0)
    }

    fn is_interval(&self) -> bool {
        self.interval
    }

    fn reset_interval(&mut self) {
        self.flush();
        for worker in &self.workers {
            worker.send(Box::new(|alg| alg.reset_interval()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcHierarchy};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn sharded_h_memento_finds_the_planted_subnet() {
        let window = 12_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 4_096, window, 1.0, 0.01, 3);
        // 50% of traffic from 10.0.0.0/8 spread over many hosts (so every
        // shard sees its share), the rest scattered.
        let items: Vec<u32> = (0..window as u32)
            .map(|i| {
                if i % 2 == 0 {
                    addr(10, (i % 199) as u8, (i % 251) as u8, (i % 13) as u8)
                } else {
                    addr(
                        20 + (i % 97) as u8,
                        (i % 231) as u8,
                        (i % 11) as u8,
                        (i % 17) as u8,
                    )
                }
            })
            .collect();
        sharded.update_batch(&items);
        assert_eq!(sharded.processed(), window as u64);
        assert!(sharded.space_bytes() > 0);
        let output = sharded.output(0.3);
        assert!(
            output.contains(&Prefix1D::new(addr(10, 0, 0, 0), 8)),
            "planted /8 missing from {output:?}"
        );
        // The /8 estimate sums the per-shard views and must cover the true
        // count (each per-shard estimate is an upper bound on its share).
        assert!(sharded.estimate(&Prefix1D::new(addr(10, 0, 0, 0), 8)) >= window as f64 * 0.5);
        assert!(!sharded.is_interval());
    }

    #[test]
    fn output_rejects_shard_local_heavy_hitters() {
        // One host carries ~12% of global traffic; its shard collects it as
        // a θ/N candidate, but the summed estimate stays far below the
        // global θ·W bar at θ = 0.3 — the merged output must reject it.
        let window = 8_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 4_096, window, 1.0, 0.01, 7);
        let hot = addr(10, 1, 2, 3);
        let items: Vec<u32> = (0..window as u32)
            .map(|i| {
                if i % 8 == 0 {
                    hot
                } else {
                    // Scattered background across many /8s and hosts.
                    addr(
                        30 + (i % 101) as u8,
                        (i % 241) as u8,
                        (i % 13) as u8,
                        (i % 17) as u8,
                    )
                }
            })
            .collect();
        sharded.update_batch(&items);
        let output = sharded.output(0.3);
        assert!(
            !output.contains(&Prefix1D::new(hot, 32)),
            "a 12%-of-traffic host must not pass θ = 0.3: {output:?}"
        );
        // It does pass once θ drops below its true global share.
        let output = sharded.output(0.05);
        assert!(
            output.contains(&Prefix1D::new(hot, 32)),
            "the host must appear at θ = 0.05: {output:?}"
        );
    }

    #[test]
    fn single_shard_matches_unsharded_h_memento() {
        let window = 6_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 1, 512, window, 1.0, 0.01, 9);
        let mut single = HMemento::new(SrcHierarchy, 512, window, 1.0, 0.01, 9);
        let items: Vec<u32> = (0..window as u32)
            .map(|i| addr((i % 7) as u8, (i % 53) as u8, 0, (i % 3) as u8))
            .collect();
        sharded.update_batch(&items);
        for &item in &items {
            single.update(item);
        }
        let p = Prefix1D::new(0, 8);
        assert_eq!(
            HhhAlgorithm::<SrcHierarchy>::estimate(&sharded, &p),
            HMemento::estimate(&single, &p)
        );
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    #[should_panic(expected = "global-position window")]
    fn interval_algorithms_are_refused() {
        use memento_baselines::Mst;
        let _ = ShardedHhh::<SrcHierarchy>::new("sharded-mst", 2, None, |_| {
            Box::new(Mst::new(SrcHierarchy, 64))
        });
    }

    #[test]
    fn windows_expire_at_the_global_position() {
        // A /8 that dominates one window and then vanishes must be
        // forgotten by the sharded engine once W *global* packets pass —
        // regardless of how few of the follow-up packets land in the shards
        // holding its hosts.
        let window = 4_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 2_048, window, 1.0, 0.01, 5);
        let hot: Vec<u32> = (0..window as u32)
            .map(|i| addr(42, (i % 61) as u8, (i % 17) as u8, (i % 5) as u8))
            .collect();
        sharded.update_batch(&hot);
        let p8 = Prefix1D::new(addr(42, 0, 0, 0), 8);
        // Level sampling (one of H prefixes per packet) adds noise around
        // the true count W; the point here is only "clearly hot".
        assert!(HhhAlgorithm::<SrcHierarchy>::estimate(&sharded, &p8) >= 0.7 * window as f64);
        // Two full windows of unrelated traffic.
        let cold: Vec<u32> = (0..2 * window as u32)
            .map(|i| addr(200 + (i % 37) as u8, (i % 251) as u8, (i % 7) as u8, 1))
            .collect();
        sharded.update_batch(&cold);
        let leftover = HhhAlgorithm::<SrcHierarchy>::estimate(&sharded, &p8);
        // Only the per-shard one-sided slack may remain (2 blocks × V per
        // shard plus Space-Saving noise) — far below the old count.
        assert!(
            leftover < 0.25 * window as f64,
            "stale /8 retained across the global window: {leftover}"
        );
    }
}
