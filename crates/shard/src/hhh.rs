//! Hash-partitioned multi-core engine for [`HhhAlgorithm`]s.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use memento_core::traits::HhhAlgorithm;
use memento_core::HMemento;
use memento_hierarchy::Hierarchy;

use crate::worker::ShardWorker;
use crate::{DEFAULT_FLUSH_THRESHOLD, DEFAULT_QUEUE_DEPTH};

/// The boxed per-shard HHH algorithm each worker thread owns.
pub type BoxedHhh<Hi> = Box<dyn HhhAlgorithm<Hi> + Send>;

/// A hierarchical heavy-hitters algorithm scaled across worker threads.
///
/// Items are hash-partitioned over `N` shards, each a worker thread owning
/// an independent HHH instance over a window of `⌈W/N⌉` packets. Unlike
/// per-flow estimation, a *prefix* aggregates many items that may hash to
/// different shards, so the merge is summation rather than routing:
/// [`HhhAlgorithm::estimate`] sums the per-shard prefix estimates, and
/// [`HhhAlgorithm::output`] unions the per-shard HHH sets and re-validates
/// each candidate against the *global* threshold `θ·W`. Uniform hashing
/// preserves traffic *fractions* per shard in expectation, so a prefix
/// above threshold `θ` globally is above `θ` in at least one shard (no
/// false negatives beyond the per-shard guarantees); the re-validation
/// step exists for the opposite direction — a narrow prefix hashes wholly
/// to one shard where its local fraction is up to `N×` its global one, so
/// the raw union would report prefixes with global share as low as `θ/N`.
pub struct ShardedHhh<Hi: Hierarchy + 'static> {
    name: &'static str,
    workers: Vec<ShardWorker<BoxedHhh<Hi>>>,
    /// Per-shard buffers of items not yet shipped to the workers (see
    /// [`crate::ShardedEstimator`] for the locking rationale).
    pending: Mutex<Vec<Vec<Hi::Item>>>,
    flush_threshold: usize,
    /// Whether the inner algorithm has interval (landmark) semantics, cached
    /// at construction.
    interval: bool,
    /// Global window size `W` (sum of the per-shard windows), when known:
    /// enables the `θ·W` re-validation of merged HHH outputs.
    window_total: Option<usize>,
}

impl<Hi: Hierarchy + 'static> ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + 'static,
{
    /// Creates a sharded HHH engine with `shards` workers, each owning the
    /// algorithm built by `factory(shard_index)`. `window` is the global
    /// window size `W` when known (the sum of the per-shard windows); it
    /// enables [`output`](HhhAlgorithm::output)'s re-validation of merged
    /// candidates against the global `θ·W` threshold — pass `None` only for
    /// algorithms without a meaningful window.
    ///
    /// # Panics
    /// Panics when `shards` is zero or a factory-built algorithm reports
    /// itself as not [`mergeable`](HhhAlgorithm::mergeable).
    pub fn new<F>(name: &'static str, shards: usize, window: Option<usize>, mut factory: F) -> Self
    where
        F: FnMut(usize) -> BoxedHhh<Hi>,
    {
        assert!(shards > 0, "shard count must be positive");
        let mut workers = Vec::with_capacity(shards);
        let mut interval = false;
        for i in 0..shards {
            let algorithm = factory(i);
            assert!(
                algorithm.mergeable(),
                "{} is not mergeable across item partitions; it cannot be sharded",
                algorithm.name()
            );
            interval = algorithm.is_interval();
            workers.push(ShardWorker::spawn(
                format!("{name}-shard-{i}"),
                DEFAULT_QUEUE_DEPTH,
                algorithm,
            ));
        }
        ShardedHhh {
            name,
            workers,
            pending: Mutex::new((0..shards).map(|_| Vec::new()).collect()),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            interval,
            window_total: window,
        }
    }

    /// A sharded [`HMemento`]: total window `W` split into per-shard windows
    /// of `⌈W/N⌉` packets and `⌈k/N⌉` counters.
    pub fn h_memento(
        hier: Hi,
        shards: usize,
        counters: usize,
        window: usize,
        tau: f64,
        delta: f64,
        seed: u64,
    ) -> Self
    where
        Hi: Send + 'static,
        Hi::Prefix: Hash,
    {
        assert!(shards > 0, "shard count must be positive");
        let shard_window = window.div_ceil(shards).max(1);
        let shard_counters = counters.div_ceil(shards).max(1);
        Self::new("sharded-h-memento", shards, Some(window), move |i| {
            let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Box::new(HMemento::new(
                hier.clone(),
                shard_counters,
                shard_window,
                tau,
                delta,
                shard_seed,
            ))
        })
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    fn shard_of(&self, item: &Hi::Item) -> usize {
        let mut hasher = DefaultHasher::new();
        item.hash(&mut hasher);
        (hasher.finish() % self.workers.len() as u64) as usize
    }

    fn ship(&self, shard: usize, batch: Vec<Hi::Item>) {
        if batch.is_empty() {
            return;
        }
        self.workers[shard].send(Box::new(move |alg| alg.update_batch(&batch)));
    }

    /// Flushes every shard's pending buffer.
    pub fn flush(&self) {
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        for shard in 0..self.workers.len() {
            let batch = std::mem::take(&mut pending[shard]);
            self.ship(shard, batch);
        }
    }

    /// Sum of the per-shard estimates for a prefix (callers flush first).
    fn summed_estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.workers
            .iter()
            .map(|worker| {
                let p = *prefix;
                worker.call(move |alg| alg.estimate(&p))
            })
            .sum()
    }
}

impl<Hi: Hierarchy + 'static> std::fmt::Debug for ShardedHhh<Hi> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHhh")
            .field("name", &self.name)
            .field("shards", &self.workers.len())
            .field("flush_threshold", &self.flush_threshold)
            .finish_non_exhaustive()
    }
}

impl<Hi: Hierarchy + 'static> HhhAlgorithm<Hi> for ShardedHhh<Hi>
where
    Hi::Item: Send + 'static,
    Hi::Prefix: Send + 'static,
{
    fn name(&self) -> &'static str {
        self.name
    }

    fn update(&mut self, item: Hi::Item) {
        let shard = self.shard_of(&item);
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        let buffer = &mut pending[shard];
        buffer.push(item);
        if buffer.len() >= self.flush_threshold {
            let full = std::mem::replace(buffer, Vec::with_capacity(self.flush_threshold));
            self.ship(shard, full);
        }
    }

    fn update_batch(&mut self, items: &[Hi::Item]) {
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        for &item in items {
            let shard = self.shard_of(&item);
            let buffer = &mut pending[shard];
            if buffer.capacity() == 0 {
                buffer.reserve(self.flush_threshold);
            }
            buffer.push(item);
            if buffer.len() >= self.flush_threshold {
                let full = std::mem::replace(buffer, Vec::with_capacity(self.flush_threshold));
                self.ship(shard, full);
            }
        }
    }

    /// A prefix's traffic spreads over every shard, so the network-wide view
    /// is the *sum* of the per-shard estimates.
    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.flush();
        self.summed_estimate(prefix)
    }

    /// The union of the per-shard HHH sets, re-validated against the global
    /// threshold (deduplicated, in prefix order).
    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.flush();
        let mut seen: HashSet<Hi::Prefix> = HashSet::new();
        for worker in &self.workers {
            seen.extend(worker.call(move |alg| alg.output(theta)));
        }
        let mut merged: Vec<Hi::Prefix> = seen.into_iter().collect();
        // A shard-local HHH only witnesses ≥ θ·(W/N) packets globally, so
        // keep a candidate only when the summed (upper-bound) estimate
        // clears the global θ·W bar. Upper bounds never undercount, so no
        // legitimate HHH is dropped. One round-trip per worker estimates
        // every candidate at once.
        if let Some(window) = self.window_total {
            let floor = theta * window as f64;
            let mut totals = vec![0.0f64; merged.len()];
            for worker in &self.workers {
                let candidates = merged.clone();
                let partial = worker.call(move |alg| {
                    candidates
                        .iter()
                        .map(|p| alg.estimate(p))
                        .collect::<Vec<f64>>()
                });
                for (total, part) in totals.iter_mut().zip(partial) {
                    *total += part;
                }
            }
            let mut keep = totals.iter().map(|t| *t >= floor);
            merged.retain(|_| keep.next().unwrap_or(false));
        }
        merged.sort_unstable();
        merged
    }

    fn space_bytes(&self) -> usize {
        self.flush();
        self.workers
            .iter()
            .map(|w| w.call(|alg| alg.space_bytes()))
            .sum()
    }

    fn processed(&self) -> u64 {
        self.flush();
        self.workers
            .iter()
            .map(|w| w.call(|alg| alg.processed()))
            .sum()
    }

    fn is_interval(&self) -> bool {
        self.interval
    }

    fn reset_interval(&mut self) {
        self.flush();
        for worker in &self.workers {
            worker.send(Box::new(|alg| alg.reset_interval()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcHierarchy};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn sharded_h_memento_finds_the_planted_subnet() {
        let window = 12_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 4_096, window, 1.0, 0.01, 3);
        // 50% of traffic from 10.0.0.0/8 spread over many hosts (so every
        // shard sees its share), the rest scattered.
        let items: Vec<u32> = (0..window as u32)
            .map(|i| {
                if i % 2 == 0 {
                    addr(10, (i % 199) as u8, (i % 251) as u8, (i % 13) as u8)
                } else {
                    addr(
                        20 + (i % 97) as u8,
                        (i % 231) as u8,
                        (i % 11) as u8,
                        (i % 17) as u8,
                    )
                }
            })
            .collect();
        sharded.update_batch(&items);
        assert_eq!(sharded.processed(), window as u64);
        assert!(sharded.space_bytes() > 0);
        let output = sharded.output(0.3);
        assert!(
            output.contains(&Prefix1D::new(addr(10, 0, 0, 0), 8)),
            "planted /8 missing from {output:?}"
        );
        // The /8 estimate sums the per-shard views and must cover the true
        // count (each per-shard estimate is an upper bound on its share).
        assert!(sharded.estimate(&Prefix1D::new(addr(10, 0, 0, 0), 8)) >= window as f64 * 0.5);
        assert!(!sharded.is_interval());
    }

    #[test]
    fn output_rejects_shard_local_heavy_hitters() {
        // One host carries ~12% of global traffic; on 4 shards it owns a
        // much larger fraction of its own shard's stream, so its shard
        // reports it at θ = 0.3 — the merged output must not.
        let window = 8_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 4, 4_096, window, 1.0, 0.01, 7);
        let hot = addr(10, 1, 2, 3);
        let items: Vec<u32> = (0..window as u32)
            .map(|i| {
                if i % 8 == 0 {
                    hot
                } else {
                    // Scattered background across many /8s and hosts.
                    addr(
                        30 + (i % 101) as u8,
                        (i % 241) as u8,
                        (i % 13) as u8,
                        (i % 17) as u8,
                    )
                }
            })
            .collect();
        sharded.update_batch(&items);
        let output = sharded.output(0.3);
        assert!(
            !output.contains(&Prefix1D::new(hot, 32)),
            "a 12%-of-traffic host must not pass θ = 0.3: {output:?}"
        );
        // It does pass once θ drops below its true global share.
        let output = sharded.output(0.05);
        assert!(
            output.contains(&Prefix1D::new(hot, 32)),
            "the host must appear at θ = 0.05: {output:?}"
        );
    }

    #[test]
    fn single_shard_matches_unsharded_h_memento() {
        let window = 6_000;
        let mut sharded = ShardedHhh::h_memento(SrcHierarchy, 1, 512, window, 1.0, 0.01, 9);
        let mut single = HMemento::new(SrcHierarchy, 512, window, 1.0, 0.01, 9);
        let items: Vec<u32> = (0..window as u32)
            .map(|i| addr((i % 7) as u8, (i % 53) as u8, 0, (i % 3) as u8))
            .collect();
        sharded.update_batch(&items);
        for &item in &items {
            single.update(item);
        }
        let p = Prefix1D::new(0, 8);
        assert_eq!(
            HhhAlgorithm::<SrcHierarchy>::estimate(&sharded, &p),
            HMemento::estimate(&single, &p)
        );
        assert_eq!(sharded.processed(), single.processed());
    }
}
