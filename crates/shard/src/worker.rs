//! The shard worker: one thread owning one partition's algorithm state.
//!
//! A worker receives *jobs* — boxed closures over its state — through a
//! bounded channel, so the hot path (batched updates) and the query path
//! share one FIFO: a query job sent after a stretch of update jobs observes
//! every one of them, which is what makes the sharded engines' barrier-free
//! query protocol correct without any locking around the algorithm state.
//! The bounded channel doubles as backpressure: a producer that outruns its
//! workers blocks instead of queueing unbounded batches.

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// A unit of work executed on the worker thread against the shard state.
pub(crate) type Job<S> = Box<dyn FnOnce(&mut S) + Send + 'static>;

/// A worker thread owning a shard's state of type `S`.
///
/// Jobs run strictly in submission order. Dropping the worker closes the
/// channel, drains the remaining jobs and joins the thread.
#[derive(Debug)]
pub(crate) struct ShardWorker<S: Send + 'static> {
    tx: Option<SyncSender<Job<S>>>,
    handle: Option<JoinHandle<()>>,
}

impl<S: Send + 'static> ShardWorker<S> {
    /// Spawns a worker named `name` with a job queue of `depth` entries.
    pub(crate) fn spawn(name: String, depth: usize, mut state: S) -> Self {
        assert!(depth > 0, "job queue depth must be positive");
        let (tx, rx): (SyncSender<Job<S>>, Receiver<Job<S>>) = sync_channel(depth);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                while let Ok(job) = rx.recv() {
                    job(&mut state);
                }
            })
            .expect("failed to spawn shard worker thread");
        ShardWorker {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Enqueues a fire-and-forget job (the update hot path). Blocks when the
    /// queue is full (backpressure).
    pub(crate) fn send(&self, job: Job<S>) {
        self.tx
            .as_ref()
            .expect("shard worker already shut down")
            .send(job)
            .expect("shard worker thread hung up");
    }

    /// Runs `f` on the worker thread after all previously enqueued jobs and
    /// returns its result (the query path).
    pub(crate) fn call<R, F>(&self, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut S) -> R + Send + 'static,
    {
        let (rtx, rrx) = sync_channel(1);
        self.send(Box::new(move |state| {
            // The receiver outlives the job unless the caller panicked;
            // either way a failed send must not take the worker down.
            let _ = rtx.send(f(state));
        }));
        rrx.recv().expect("shard worker dropped before responding")
    }
}

impl<S: Send + 'static> Drop for ShardWorker<S> {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop after the queue drains.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            // Propagating a worker panic here would abort during unwinding;
            // report it instead.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("shard worker thread panicked");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_run_in_submission_order() {
        let worker: ShardWorker<Vec<u32>> = ShardWorker::spawn("test".into(), 4, Vec::new());
        for i in 0..100 {
            worker.send(Box::new(move |v| v.push(i)));
        }
        let seen = worker.call(|v| v.clone());
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn call_observes_all_prior_sends() {
        let worker: ShardWorker<u64> = ShardWorker::spawn("sum".into(), 2, 0);
        for _ in 0..1000 {
            worker.send(Box::new(|s| *s += 1));
        }
        assert_eq!(worker.call(|s| *s), 1000);
    }

    #[test]
    fn drop_drains_the_queue() {
        let worker: ShardWorker<u64> = ShardWorker::spawn("drain".into(), 8, 0);
        for _ in 0..50 {
            worker.send(Box::new(|s| *s += 1));
        }
        drop(worker); // must not deadlock or lose the thread
    }
}
