//! The wait-free snapshot query plane.
//!
//! The sharded engines used to answer every query by piggybacking the
//! per-shard update FIFO: correct, but each read round-trips through a
//! worker thread and stalls behind whatever batches are in flight. This
//! module is the publication subsystem that replaces that path:
//!
//! 1. every `PublishPolicy::every_batches` shipped batches (and on
//!    `publish_now`), the engine ships all shard buffers — synchronizing
//!    every shard to the current global stream position — and enqueues one
//!    *freeze job* per worker FIFO;
//! 2. each worker freezes its shard — for estimator engines an incremental
//!    [`WindowPatch`](memento_core::WindowPatch) covering only the slots
//!    dirtied since its previous freeze (PR 8), for HHH engines a full
//!    [`FrozenHhh`](memento_core::query::FrozenHhh) — and delivers it to the
//!    engine's [`SnapshotHub`];
//! 3. when the hub holds all `N` parts of an epoch it assembles the merged
//!    [`EngineSnapshot`] / [`HhhEngineSnapshot`] under the
//!    global-position-window contract and swaps it into an epoch-stamped
//!    double buffer ([`SnapshotCell`]). Estimator assembly is *persistent*:
//!    the assembler owns one [`DeltaWindow`](memento_core::DeltaWindow) per
//!    shard, applies each epoch's patches onto it and snapshots the result
//!    with O(1) structural-sharing clones — publication costs
//!    O(dirty slots), not O(shards × summary size);
//! 4. any number of [`SnapshotReader`] / [`HhhSnapshotReader`] handles —
//!    cheaply clonable, `Send + Sync` — answer `estimate` /
//!    `heavy_hitters` / `output` / `processed` from the latest snapshot at
//!    memory speed, never touching a channel or blocking ingest.
//!
//! **Staleness bound.** A reader's answer reflects the stream as of the
//! latest published epoch, which the ingest path refreshes at least every
//! `every_batches` shipped batches: readers lag ingest by at most one
//! publication interval (plus whatever is still buffered in the router,
//! at most one ship threshold per shard). The engines' own trait queries
//! publish first by default ([`PublishPolicy::on_query`]), which restores
//! the old flush-then-read semantics exactly.
//!
//! **Why epochs complete in order.** Freeze jobs ride the same per-shard
//! FIFOs as updates, so shard `s` delivers epoch `e` before `e+1`. An epoch
//! completes at its last delivery; since every shard delivers `e` before
//! `e+1`, all parts of `e` are in before the delivery that completes `e+1`
//! — and deliveries are serialized under the hub's pending lock, so the
//! double buffer is always written in increasing epoch order.

use std::collections::HashSet;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use memento_core::query::{FrozenHhh, HhhQuery, WindowQuery};
use memento_core::{DeltaWindow, WindowPatch};
use memento_hierarchy::Hierarchy;
use memento_sketches::fasthash;

/// When the sharded engines publish query snapshots.
///
/// Replaces the old ad-hoc `flush()` + `set_flush_threshold()` pair: the
/// publication cadence is the one knob that matters for the query plane,
/// and the on-query behaviour makes the staleness trade-off explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishPolicy {
    /// Publish a fresh snapshot after this many shipped per-shard batches.
    /// `0` disables periodic publication (snapshots then appear only on
    /// `publish_now` / on-query publishes). The default of 64 batches keeps
    /// readers within ~64 × [`crate::DEFAULT_FLUSH_THRESHOLD`] packets of
    /// the ingest frontier while costing the ingest path well under a
    /// percent.
    pub every_batches: usize,
    /// When `true` (the default), the engine's *own* query methods
    /// (`estimate`, `heavy_hitters`, `output`, `processed`) force a
    /// publication before reading, reproducing the historical
    /// flush-then-read semantics bit-for-bit. Set to `false` for wait-free
    /// engine-side reads with the same bounded staleness as
    /// [`SnapshotReader`] handles.
    pub on_query: bool,
}

impl Default for PublishPolicy {
    fn default() -> Self {
        PublishPolicy {
            every_batches: 64,
            on_query: true,
        }
    }
}

/// An epoch-stamped double buffer: the hand-rolled arc-swap.
///
/// The writer alternates between two slots (`epoch & 1`) and advances the
/// epoch counter with `Release` ordering after the slot is written; readers
/// load the counter with `Acquire`, lock the matching slot and retry if a
/// newer publication overwrote it in between (possible only when two
/// publications complete during one read — readers never block the writer
/// for more than a pointer clone either way).
#[derive(Debug)]
struct SnapshotCell<T> {
    epoch: AtomicU64,
    slots: [Mutex<(u64, Option<Arc<T>>)>; 2],
}

impl<T> SnapshotCell<T> {
    fn new() -> Self {
        SnapshotCell {
            epoch: AtomicU64::new(0),
            slots: [Mutex::new((0, None)), Mutex::new((0, None))],
        }
    }

    /// Publishes `value` as `epoch`. Callers must publish in increasing
    /// epoch order (the hub's pending lock guarantees it).
    fn publish(&self, epoch: u64, value: Arc<T>) {
        let slot = (epoch & 1) as usize;
        *self.slots[slot].lock().expect("snapshot slot poisoned") = (epoch, Some(value));
        self.epoch.store(epoch, Ordering::Release);
    }

    /// The latest published value, or `None` before the first publication.
    fn load(&self) -> Option<Arc<T>> {
        loop {
            let epoch = self.epoch.load(Ordering::Acquire);
            if epoch == 0 {
                return None;
            }
            let slot = self.slots[(epoch & 1) as usize]
                .lock()
                .expect("snapshot slot poisoned");
            if slot.0 == epoch {
                return slot.1.clone();
            }
            // The slot was re-used by a newer publication between the epoch
            // load and the lock; retry against the newer epoch.
        }
    }
}

/// A partially delivered publication epoch.
#[derive(Debug)]
struct PendingEpoch<P> {
    epoch: u64,
    delivered: usize,
    parts: Vec<Option<P>>,
}

/// The hub's mutable core: partially delivered epochs plus the assembler
/// that folds complete ones into snapshots. One mutex guards both because
/// the assembler is *stateful* (PR 8): the estimator engines hand it per
/// shard patches and it owns the persistent merged [`DeltaWindow`]s they
/// apply onto — epochs must reach it exactly once, in epoch order, which is
/// precisely the order deliveries complete in under this lock.
struct HubState<P, S> {
    pending: Vec<PendingEpoch<P>>,
    assemble: Box<dyn FnMut(u64, Vec<P>) -> S + Send>,
}

/// Collects per-shard frozen parts, assembles complete epochs into merged
/// snapshots and publishes them. One hub per engine, shared by the router
/// side (epoch allocation), the worker threads (delivery) and every reader
/// handle (loads) through an `Arc`.
pub(crate) struct SnapshotHub<P, S> {
    shards: usize,
    epochs: AtomicU64,
    state: Mutex<HubState<P, S>>,
    cell: SnapshotCell<S>,
    /// Highest fully published epoch, guarded for `wait_published`.
    published: Mutex<u64>,
    published_cv: Condvar,
}

impl<P, S> std::fmt::Debug for SnapshotHub<P, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotHub")
            .field("shards", &self.shards)
            .field("epochs", &self.epochs.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<P, S> SnapshotHub<P, S> {
    pub(crate) fn new(shards: usize, assemble: Box<dyn FnMut(u64, Vec<P>) -> S + Send>) -> Self {
        SnapshotHub {
            shards,
            epochs: AtomicU64::new(0),
            state: Mutex::new(HubState {
                pending: Vec::new(),
                assemble,
            }),
            cell: SnapshotCell::new(),
            published: Mutex::new(0),
            published_cv: Condvar::new(),
        }
    }

    /// Allocates the next publication epoch (1-based; 0 means "nothing
    /// published"). Callers allocate under the router lock so that epoch
    /// order matches freeze-job enqueue order on every worker FIFO.
    pub(crate) fn begin_epoch(&self) -> u64 {
        self.epochs.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Delivers shard `shard`'s frozen part of `epoch`; assembles and
    /// publishes the snapshot when this was the last missing part.
    pub(crate) fn deliver(&self, epoch: u64, shard: usize, part: P) {
        let mut state = self.state.lock().expect("snapshot hub poisoned");
        let idx = match state.pending.iter().position(|p| p.epoch == epoch) {
            Some(idx) => idx,
            None => {
                state.pending.push(PendingEpoch {
                    epoch,
                    delivered: 0,
                    parts: (0..self.shards).map(|_| None).collect(),
                });
                state.pending.len() - 1
            }
        };
        let entry = &mut state.pending[idx];
        debug_assert!(entry.parts[shard].is_none(), "duplicate delivery");
        entry.parts[shard] = Some(part);
        entry.delivered += 1;
        if entry.delivered < self.shards {
            return;
        }
        let entry = state.pending.swap_remove(idx);
        let parts: Vec<P> = entry
            .parts
            .into_iter()
            .map(|p| p.expect("complete epoch missing a part"))
            .collect();
        // Assemble and swap while still holding the state lock: delivery
        // order is the publication order, so the stateful assembler sees
        // epochs strictly in order and the cell only moves forward.
        self.cell
            .publish(epoch, Arc::new((state.assemble)(epoch, parts)));
        drop(state);
        let mut published = self.published.lock().expect("published counter poisoned");
        if epoch > *published {
            *published = epoch;
        }
        self.published_cv.notify_all();
        drop(published);
    }

    /// Blocks until `epoch` (and everything before it) is published.
    pub(crate) fn wait_published(&self, epoch: u64) {
        let mut published = self.published.lock().expect("published counter poisoned");
        while *published < epoch {
            published = self
                .published_cv
                .wait(published)
                .expect("published counter poisoned");
        }
    }

    /// The latest published snapshot, or `None` before the first
    /// publication.
    pub(crate) fn latest(&self) -> Option<Arc<S>> {
        self.cell.load()
    }

    /// `true` when every allocated epoch has been published — no freeze
    /// jobs are in flight anywhere. Callers must hold whatever lock
    /// serializes `begin_epoch` (the engines' router lock) for the answer
    /// to stay true while they act on it.
    pub(crate) fn quiescent(&self) -> bool {
        *self.published.lock().expect("published counter poisoned")
            == self.epochs.load(Ordering::Relaxed)
    }

    /// Publishes `f(latest)` as `epoch` without involving the workers: the
    /// unchanged-engine short circuit. The caller must have allocated
    /// `epoch` via [`Self::begin_epoch`] while the hub was [quiescent]
    /// (`Self::quiescent`) — under the same lock that serializes epoch
    /// allocation — so no worker-delivered epoch can race this
    /// publication. Returns `false` (and publishes nothing) when nothing
    /// was published yet.
    pub(crate) fn publish_restamped(&self, epoch: u64, f: impl FnOnce(&S) -> S) -> bool {
        let Some(latest) = self.cell.load() else {
            return false;
        };
        self.cell.publish(epoch, Arc::new(f(&latest)));
        let mut published = self.published.lock().expect("published counter poisoned");
        if epoch > *published {
            *published = epoch;
        }
        self.published_cv.notify_all();
        drop(published);
        true
    }
}

/// Hub specialization used by [`crate::ShardedEstimator`]: workers deliver
/// **incremental patches**, the stateful assembler folds them onto
/// persistent per-shard [`DeltaWindow`]s (PR 8).
pub(crate) type EstimatorHub<K> = SnapshotHub<WindowPatch<K>, EngineSnapshot<K>>;
/// Hub specialization used by [`crate::ShardedHhh`].
pub(crate) type HhhHub<Hi> = SnapshotHub<FrozenHhh<Hi>, HhhEngineSnapshot<Hi>>;

/// An immutable merged view of a [`crate::ShardedEstimator`] at one
/// publication epoch: one delta-maintained [`DeltaWindow`] per shard, all
/// anchored at the same global stream position.
///
/// Implements [`WindowQuery`] with exactly the merge rules of the live
/// engine — per-flow estimates answered by the owning shard (same
/// [`fasthash::route`]), heavy hitters concatenated in shard order and
/// re-sorted by descending estimate, `processed` the per-shard maximum — so
/// snapshot answers are bit-for-bit what the FIFO path would have returned
/// at the publication point.
///
/// The per-shard views are persistent structures (PR 8): cloning one into
/// a snapshot shares all of its entry storage with the assembler's working
/// copy, so a publication allocates proportionally to the slots *changed*
/// since the previous epoch, not to the summary size.
#[derive(Debug, Clone)]
pub struct EngineSnapshot<K> {
    epoch: u64,
    name: &'static str,
    error_bound: f64,
    shards: Vec<DeltaWindow<K>>,
}

impl<K: Eq + Hash + Clone> EngineSnapshot<K> {
    pub(crate) fn assemble(
        epoch: u64,
        name: &'static str,
        error_bound: f64,
        shards: Vec<DeltaWindow<K>>,
    ) -> Self {
        EngineSnapshot {
            epoch,
            name,
            error_bound,
            shards,
        }
    }

    /// The same merged view re-stamped as a newer epoch: the
    /// unchanged-engine publication short circuit (nothing was ingested
    /// since `self` was assembled, so only the epoch moves).
    pub(crate) fn restamped(&self, epoch: u64) -> Self {
        EngineSnapshot {
            epoch,
            ..self.clone()
        }
    }

    /// The publication epoch this snapshot belongs to (1-based and strictly
    /// increasing per engine).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of per-shard summaries merged into this snapshot.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard merged views, in shard order.
    pub fn per_shard(&self) -> &[DeltaWindow<K>] {
        &self.shards
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for EngineSnapshot<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    /// A flow lives wholly in one shard: route the key exactly like the
    /// live engine and answer from that shard's summary.
    fn estimate(&self, key: &K) -> f64 {
        self.shards[fasthash::route(key, self.shards.len())].estimate(key)
    }

    /// Union of the per-shard sets (shards partition the key space, so it
    /// is disjoint), re-sorted by descending estimate exactly like the live
    /// merge.
    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        let mut merged: Vec<(K, f64)> = Vec::new();
        for shard in &self.shards {
            merged.extend(shard.heavy_hitters(threshold));
        }
        merged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        merged
    }

    /// Global stream position at the publication point: every shard is
    /// position-synced before freezing, so this is the per-shard maximum.
    fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed()).max().unwrap_or(0)
    }

    fn error_bound(&self) -> f64 {
        self.error_bound
    }
}

/// A cheaply clonable, `Send + Sync` handle answering window queries from a
/// [`crate::ShardedEstimator`]'s latest published snapshot.
///
/// Reads are wait-free with respect to ingest: a query loads the epoch
/// double buffer (two atomics and an uncontended mutex-protected pointer
/// clone) and answers from the immutable merged summary — it never touches
/// a worker FIFO and never blocks an update. Answers are stale by at most
/// one publication interval ([`PublishPolicy::every_batches`]). Before the
/// first publication the reader reports the empty window (`processed` = 0,
/// no heavy hitters).
pub struct SnapshotReader<K> {
    hub: Arc<EstimatorHub<K>>,
    name: &'static str,
    error_bound: f64,
}

impl<K> Clone for SnapshotReader<K> {
    fn clone(&self) -> Self {
        SnapshotReader {
            hub: Arc::clone(&self.hub),
            name: self.name,
            error_bound: self.error_bound,
        }
    }
}

impl<K> std::fmt::Debug for SnapshotReader<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone> SnapshotReader<K> {
    pub(crate) fn new(hub: Arc<EstimatorHub<K>>, name: &'static str, error_bound: f64) -> Self {
        SnapshotReader {
            hub,
            name,
            error_bound,
        }
    }

    /// The latest published snapshot, or `None` before the first
    /// publication. Grabbing the `Arc` pins one epoch: every query against
    /// it is internally consistent, which is what the torn-read stress
    /// tests assert.
    pub fn latest(&self) -> Option<Arc<EngineSnapshot<K>>> {
        self.hub.latest()
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for SnapshotReader<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, key: &K) -> f64 {
        self.latest().map(|s| s.estimate(key)).unwrap_or(0.0)
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.latest()
            .map(|s| s.heavy_hitters(threshold))
            .unwrap_or_default()
    }

    fn processed(&self) -> u64 {
        self.latest().map(|s| s.processed()).unwrap_or(0)
    }

    fn error_bound(&self) -> f64 {
        self.error_bound
    }
}

/// An immutable merged view of a [`crate::ShardedHhh`] at one publication
/// epoch: one [`FrozenHhh`] per shard, all anchored at the same global
/// stream position.
///
/// Implements [`HhhQuery`] with exactly the live engine's merge rules: a
/// prefix aggregates items from every shard, so `estimate` *sums* the
/// per-shard upper bounds (in shard order — identical f64 rounding), and
/// `output` collects candidates at the per-shard `θ/N` threshold,
/// re-validates the union against the global `θ·W` bar with the summed
/// estimates and returns them in canonical prefix order.
#[derive(Debug, Clone)]
pub struct HhhEngineSnapshot<Hi: Hierarchy> {
    epoch: u64,
    name: &'static str,
    window_total: Option<usize>,
    shards: Vec<FrozenHhh<Hi>>,
}

impl<Hi: Hierarchy> HhhEngineSnapshot<Hi> {
    pub(crate) fn assemble(
        epoch: u64,
        name: &'static str,
        window_total: Option<usize>,
        shards: Vec<FrozenHhh<Hi>>,
    ) -> Self {
        HhhEngineSnapshot {
            epoch,
            name,
            window_total,
            shards,
        }
    }

    /// The publication epoch this snapshot belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of per-shard summaries merged into this snapshot.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for HhhEngineSnapshot<Hi> {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Sum of the per-shard upper bounds, in shard order (the same
    /// accumulation order as the live engine's merged estimate).
    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.shards.iter().map(|s| s.estimate(prefix)).sum()
    }

    /// The live engine's two-phase merge over frozen parts: per-shard
    /// candidates at `θ/N`, summed-estimate re-validation against `θ·W`,
    /// canonical prefix order.
    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        let per_shard_theta = if self.window_total.is_some() {
            theta / self.shards.len() as f64
        } else {
            theta
        };
        let mut seen: HashSet<Hi::Prefix> = HashSet::new();
        for shard in &self.shards {
            seen.extend(shard.output(per_shard_theta));
        }
        let mut merged: Vec<Hi::Prefix> = seen.into_iter().collect();
        if let Some(window) = self.window_total {
            let floor = theta * window as f64;
            let mut totals = vec![0.0f64; merged.len()];
            for shard in &self.shards {
                for (total, prefix) in totals.iter_mut().zip(&merged) {
                    *total += shard.estimate(prefix);
                }
            }
            let mut keep = totals.iter().map(|t| *t >= floor);
            merged.retain(|_| keep.next().unwrap_or(false));
        }
        merged.sort_unstable();
        merged
    }

    fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed()).max().unwrap_or(0)
    }
}

/// A cheaply clonable, `Send + Sync` handle answering HHH queries from a
/// [`crate::ShardedHhh`]'s latest published snapshot — the hierarchical
/// counterpart of [`SnapshotReader`], with the same wait-free guarantees
/// and the same ≤-one-publication-interval staleness bound. Before the
/// first publication it reports the empty measurement (`processed` = 0, no
/// heavy hitters, zero estimates).
pub struct HhhSnapshotReader<Hi: Hierarchy> {
    hub: Arc<HhhHub<Hi>>,
    name: &'static str,
}

impl<Hi: Hierarchy> Clone for HhhSnapshotReader<Hi> {
    fn clone(&self) -> Self {
        HhhSnapshotReader {
            hub: Arc::clone(&self.hub),
            name: self.name,
        }
    }
}

impl<Hi: Hierarchy> std::fmt::Debug for HhhSnapshotReader<Hi> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HhhSnapshotReader")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl<Hi: Hierarchy> HhhSnapshotReader<Hi> {
    pub(crate) fn new(hub: Arc<HhhHub<Hi>>, name: &'static str) -> Self {
        HhhSnapshotReader { hub, name }
    }

    /// The latest published snapshot, or `None` before the first
    /// publication.
    pub fn latest(&self) -> Option<Arc<HhhEngineSnapshot<Hi>>> {
        self.hub.latest()
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for HhhSnapshotReader<Hi> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.latest().map(|s| s.estimate(prefix)).unwrap_or(0.0)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.latest().map(|s| s.output(theta)).unwrap_or_default()
    }

    fn processed(&self) -> u64 {
        self.latest().map(|s| s.processed()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_load_sees_the_latest_publish() {
        let cell: SnapshotCell<u64> = SnapshotCell::new();
        assert!(cell.load().is_none());
        for epoch in 1..=5u64 {
            cell.publish(epoch, Arc::new(epoch * 100));
            assert_eq!(*cell.load().expect("published"), epoch * 100);
        }
    }

    #[test]
    fn hub_publishes_when_all_parts_arrive() {
        let hub: SnapshotHub<u64, Vec<u64>> =
            SnapshotHub::new(3, Box::new(|_, parts| parts.clone()));
        let epoch = hub.begin_epoch();
        hub.deliver(epoch, 1, 10);
        assert!(hub.latest().is_none(), "incomplete epoch must not publish");
        hub.deliver(epoch, 0, 20);
        hub.deliver(epoch, 2, 30);
        hub.wait_published(epoch);
        // Parts come back in shard order regardless of delivery order.
        assert_eq!(*hub.latest().expect("published"), vec![20, 10, 30]);
    }

    #[test]
    fn hub_interleaved_epochs_publish_in_order() {
        let hub: SnapshotHub<u64, u64> = SnapshotHub::new(
            2,
            Box::new(|epoch, parts| epoch * 1000 + parts.iter().sum::<u64>()),
        );
        let e1 = hub.begin_epoch();
        let e2 = hub.begin_epoch();
        // Shard 0 runs ahead: delivers both epochs before shard 1 starts —
        // the per-shard FIFO guarantees e1 before e2 per shard, nothing
        // more.
        hub.deliver(e1, 0, 1);
        hub.deliver(e2, 0, 2);
        hub.deliver(e1, 1, 10);
        assert_eq!(*hub.latest().expect("e1 complete"), 1011);
        hub.deliver(e2, 1, 20);
        hub.wait_published(e2);
        assert_eq!(*hub.latest().expect("e2 complete"), 2022);
    }

    #[test]
    fn stateful_assembler_accumulates_across_epochs() {
        // The PR 8 contract: the assembler is FnMut and owns merge state
        // that persists from epoch to epoch (the estimator engines fold
        // incremental patches onto it).
        let mut total = 0u64;
        let hub: SnapshotHub<u64, u64> = SnapshotHub::new(
            1,
            Box::new(move |_, parts| {
                total += parts[0];
                total
            }),
        );
        for (part, expected) in [(3u64, 3u64), (4, 7), (10, 17)] {
            let epoch = hub.begin_epoch();
            hub.deliver(epoch, 0, part);
            assert_eq!(*hub.latest().expect("published"), expected);
        }
    }

    #[test]
    fn restamp_republishes_the_latest_snapshot_under_a_new_epoch() {
        let hub: SnapshotHub<u64, (u64, u64)> =
            SnapshotHub::new(1, Box::new(|epoch, parts| (epoch, parts[0])));
        // Nothing published yet: the short circuit must refuse.
        let bare = hub.begin_epoch();
        assert!(!hub.publish_restamped(bare, |s| *s));
        hub.deliver(bare, 0, 42);
        assert!(hub.quiescent());
        let e2 = hub.begin_epoch();
        assert!(!hub.quiescent(), "allocated epoch counts as in flight");
        assert!(hub.publish_restamped(e2, |&(_, payload)| (e2, payload)));
        hub.wait_published(e2);
        assert_eq!(*hub.latest().expect("restamped"), (e2, 42));
        assert!(hub.quiescent());
    }
}
