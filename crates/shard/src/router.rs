//! The global-position router state shared by both sharded engines.
//!
//! Tracks the position of the *combined* stream and buffers each shard's
//! entries with per-entry gap stamps, so a worker can replay its share of
//! the stream at the exact global positions — the correctness-critical
//! core of the global-position window design (see the crate docs).

/// Per-shard gap-stamped buffers plus global-position bookkeeping.
pub(crate) struct Router<T> {
    /// Per-shard buffers of entries not yet shipped to the workers.
    entries: Vec<Vec<T>>,
    /// Per-shard gap stamps, parallel to `entries`: `gaps[s][i]` packets
    /// went to other shards immediately before `entries[s][i]`.
    gaps: Vec<Vec<u64>>,
    /// Per-shard position anchor: the global position of the shard's last
    /// buffered entry, or — when its buffer is empty — the position its
    /// worker was advanced to by its last shipment.
    anchor: Vec<u64>,
    /// Global stream position: every packet routed through the engine plus
    /// every position injected via the engine-level `skip`.
    routed: u64,
}

impl<T> Router<T> {
    pub(crate) fn new(shards: usize) -> Self {
        Router {
            entries: (0..shards).map(|_| Vec::new()).collect(),
            gaps: (0..shards).map(|_| Vec::new()).collect(),
            anchor: vec![0; shards],
            routed: 0,
        }
    }

    /// Stamps `entry` with its gap since the shard's previous entry and
    /// buffers it at the next global position, growing a drained buffer
    /// back to `capacity_hint` up front (shipments hand the buffers to the
    /// workers, so capacity does not survive a shipment). Returns the
    /// shard's buffer length.
    pub(crate) fn push(&mut self, shard: usize, entry: T, capacity_hint: usize) -> usize {
        let buffer = &mut self.entries[shard];
        if buffer.capacity() == 0 {
            buffer.reserve(capacity_hint);
            self.gaps[shard].reserve(capacity_hint);
        }
        let position = self.routed + 1;
        self.gaps[shard].push(position - self.anchor[shard] - 1);
        buffer.push(entry);
        self.anchor[shard] = position;
        self.routed = position;
        buffer.len()
    }

    /// Takes everything the shard's worker must process to reach the
    /// current global position: its gap-stamped entries plus the trailing
    /// skip over the packets routed elsewhere after its last entry.
    /// Advances the shard's anchor; returns `None` when the shard is
    /// already at the global position with nothing buffered.
    #[allow(clippy::type_complexity)]
    pub(crate) fn take_shipment(&mut self, shard: usize) -> Option<(Vec<u64>, Vec<T>, u64)> {
        let entries = std::mem::take(&mut self.entries[shard]);
        let gaps = std::mem::take(&mut self.gaps[shard]);
        let tail = self.routed - self.anchor[shard];
        self.anchor[shard] = self.routed;
        if tail == 0 && entries.is_empty() {
            None
        } else {
            Some((gaps, entries, tail))
        }
    }

    /// Advances the global stream position over `n` packets observed
    /// outside the engine (callers ship pending buffers first so
    /// already-routed entries keep their pre-skip positions).
    pub(crate) fn advance(&mut self, n: u64) {
        self.routed += n;
    }

    /// The current global stream position: every packet routed plus every
    /// position injected via [`Self::advance`]. The engine-level time
    /// plane reads this to feed its grain clocks without forcing a
    /// snapshot publication (unlike `processed()`, which reads the
    /// published snapshot).
    pub(crate) fn position(&self) -> u64 {
        self.routed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_stamps_reconstruct_global_positions() {
        let mut router: Router<char> = Router::new(2);
        // Stream: a(s0) b(s1) c(s1) d(s0) — positions 1..=4.
        router.push(0, 'a', 8);
        router.push(1, 'b', 8);
        router.push(1, 'c', 8);
        router.push(0, 'd', 8);
        let (gaps, entries, tail) = router.take_shipment(0).unwrap();
        assert_eq!(entries, vec!['a', 'd']);
        assert_eq!(gaps, vec![0, 2]); // b and c went elsewhere before d
        assert_eq!(tail, 0); // d is the last global packet
        let (gaps, entries, tail) = router.take_shipment(1).unwrap();
        assert_eq!(entries, vec!['b', 'c']);
        assert_eq!(gaps, vec![1, 0]);
        assert_eq!(tail, 1); // d came after c
                             // Both shards are now anchored at position 4.
        assert!(router.take_shipment(0).is_none());
        assert!(router.take_shipment(1).is_none());
    }

    #[test]
    fn advance_becomes_the_next_shipment_tail() {
        let mut router: Router<u8> = Router::new(1);
        router.push(0, 9, 4);
        let _ = router.take_shipment(0);
        router.advance(7);
        let (gaps, entries, tail) = router.take_shipment(0).unwrap();
        assert!(entries.is_empty() && gaps.is_empty());
        assert_eq!(tail, 7);
        // A later entry is stamped relative to the advanced position.
        router.push(0, 1, 4);
        let (gaps, _, tail) = router.take_shipment(0).unwrap();
        assert_eq!(gaps, vec![0]);
        assert_eq!(tail, 0);
    }
}
