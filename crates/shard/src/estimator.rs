//! Hash-partitioned multi-core engine for [`SlidingWindowEstimator`]s.

use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use memento_core::traits::{SlidingWindowEstimator, WindowQuery};
use memento_core::{DeltaAssembler, GrainClock, GrainMap, Memento, Wcss, WindowPatch};
use memento_sketches::{fasthash, ExactWindow};

use crate::router::Router;
use crate::snapshot::{EngineSnapshot, EstimatorHub, PublishPolicy, SnapshotHub, SnapshotReader};
use crate::worker::ShardWorker;
use crate::{DEFAULT_FLUSH_THRESHOLD, DEFAULT_QUEUE_DEPTH};

/// The boxed per-shard estimator each worker thread owns.
pub type BoxedEstimator<K> = Box<dyn SlidingWindowEstimator<K> + Send>;

/// A sliding-window estimator scaled across worker threads, with
/// **global-position windows**.
///
/// Keys are hash-partitioned over `N` shards; each shard is a worker thread
/// owning an independent estimator over a **full window of `W` packets at
/// the global stream position**. The router stamps every key with its
/// *gap* — the number of packets routed to other shards since that shard's
/// previous key — and the worker replays
/// [`skip(gap)`](SlidingWindowEstimator::skip) before each key (through
/// the estimator's fused
/// [`update_batch_positioned`](SlidingWindowEstimator::update_batch_positioned)
/// path), the D-Memento-style bulk window update of the Memento paper
/// (§6). Every shard's window therefore covers exactly the last `W`
/// packets of the *combined* stream (of which it recorded only its own
/// flows), so per-flow queries are answered by the owning shard alone and
/// heavy-hitter queries are the union of the per-shard answers — the
/// mergeable-sliding-window contract
/// ([`SlidingWindowEstimator::mergeable`]) that the sliding-window
/// heavy-hitter literature (Braverman et al.) assumes for partitioned
/// deployments. (The previous count-based design gave each shard `W/N` of
/// its *own* packets, which under skew covers far less than `W` global
/// packets for the shard owning a dominant flow — the 123 → 3308 on-arrival
/// RMSE blowup recorded in `crates/bench/EXPERIMENTS.md`.)
///
/// Updates travel to the workers as gap-stamped batches over bounded
/// channels (reusing each estimator's `update_batch` fast path — for
/// Memento, the geometric skip sampling of §5).
///
/// **Queries are served from published snapshots** (PR 7): per the
/// [`PublishPolicy`], the engine periodically freezes every shard into an
/// immutable [`EngineSnapshot`] that the engine's own
/// [`WindowQuery`] methods — and any number of wait-free
/// [`SnapshotReader`] handles ([`Self::reader`]) — answer from at memory
/// speed. With the default `on_query = true` policy the engine's own
/// queries force a publication first, reproducing the historical
/// flush-then-read semantics bit-for-bit; readers observe bounded
/// staleness (≤ one publication interval) instead. The old FIFO piggyback
/// query path survives only as the `#[doc(hidden)]`
/// [`Self::query_via_fifo`] escape hatch for differential tests.
///
/// The engine itself implements [`SlidingWindowEstimator`], so every
/// generic driver in the workspace — the figure harnesses, the detection
/// disciplines, the flood-mitigation scenario — can run sharded without
/// modification.
pub struct ShardedEstimator<K: Eq + Hash + Clone + Send + Sync + 'static> {
    name: &'static str,
    workers: Vec<ShardWorker<BoxedEstimator<K>>>,
    /// Gap-stamped buffers and position bookkeeping. Behind a mutex so the
    /// `&self` query methods can flush them; the engine is not itself meant
    /// to be driven from several threads (updates take `&mut self`), so the
    /// lock is uncontended.
    state: Mutex<Router<K>>,
    /// Ship a shard's buffer once it holds this many keys.
    flush_threshold: usize,
    /// Snapshot publication cadence and on-query behaviour.
    policy: PublishPolicy,
    /// Batches shipped since the last publication (mutated only under the
    /// router lock; atomic so `&self` query methods can read it).
    shipped: AtomicUsize,
    /// Freeze rounds actually enqueued to the workers (diagnostics: lets
    /// tests assert the unchanged-engine short circuit skips them).
    freezes: AtomicUsize,
    /// Snapshot assembly and the epoch double buffer, shared with every
    /// [`SnapshotReader`] handle.
    hub: Arc<EstimatorHub<K>>,
    /// Worst per-shard error bound, cached at construction (constant per
    /// configuration).
    error_bound: f64,
    /// Per-shard grain clocks for the engine-level time plane
    /// ([`Self::advance_to`]); `None` until [`Self::with_grain_clock`].
    clocks: Option<Vec<GrainClock>>,
}

impl<K: Eq + Hash + Clone + Send + Sync + 'static> ShardedEstimator<K> {
    /// Creates a sharded engine with `shards` workers, each owning the
    /// estimator built by `factory(shard_index)`. Every per-shard estimator
    /// must be configured with the **full global window `W`** — the router
    /// keeps it at the global stream position via
    /// [`skip`](SlidingWindowEstimator::skip).
    ///
    /// `name` is the stable identifier reported through
    /// [`WindowQuery::name`] (bench CSV/JSON output). The engine starts
    /// under [`PublishPolicy::default`]; override with
    /// [`Self::with_policy`].
    ///
    /// # Panics
    /// Panics when `shards` is zero or a factory-built estimator reports
    /// itself as not [`mergeable`](SlidingWindowEstimator::mergeable) —
    /// global-position sharded windows require estimators whose `skip` can
    /// advance the window over packets recorded elsewhere; interval
    /// estimators (Space Saving) do not qualify.
    pub fn new<F>(name: &'static str, shards: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> BoxedEstimator<K>,
    {
        assert!(shards > 0, "shard count must be positive");
        let mut workers = Vec::with_capacity(shards);
        let mut error_bound: f64 = 0.0;
        for i in 0..shards {
            let estimator = factory(i);
            assert!(
                estimator.mergeable(),
                "{} cannot answer global-position window queries across key partitions \
                 (its skip cannot anchor a shard's window at the global stream position); \
                 it cannot be sharded",
                estimator.name()
            );
            error_bound = error_bound.max(estimator.error_bound());
            workers.push(ShardWorker::spawn(
                format!("{name}-shard-{i}"),
                DEFAULT_QUEUE_DEPTH,
                estimator,
            ));
        }
        // The persistent merge state of the PR 8 delta publication plane:
        // one rotating view assembler per shard, owned by the hub's
        // stateful closure. Each epoch folds the shards' incremental
        // patches onto assembler-owned views (in-place hash-table writes —
        // the rotation keeps the mutated view out of the double buffer's
        // retention window) and publishes O(1) clones, so assembling costs
        // O(slots dirtied since the previous epoch) instead of
        // O(shards × summary size).
        let mut merged: Vec<DeltaAssembler<K>> =
            (0..shards).map(|_| DeltaAssembler::new(name)).collect();
        let hub = Arc::new(SnapshotHub::new(
            shards,
            Box::new(move |epoch, parts: Vec<WindowPatch<K>>| {
                let views = merged
                    .iter_mut()
                    .zip(parts)
                    .map(|(assembler, patch)| assembler.publish(patch))
                    .collect();
                EngineSnapshot::assemble(epoch, name, error_bound, views)
            }),
        ));
        ShardedEstimator {
            name,
            workers,
            state: Mutex::new(Router::new(shards)),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            policy: PublishPolicy::default(),
            shipped: AtomicUsize::new(0),
            freezes: AtomicUsize::new(0),
            hub,
            error_bound,
            clocks: None,
        }
    }

    /// A sharded [`Memento`]: every shard keeps a **full `W`-packet window
    /// at the global stream position** with the full `k` counters (same
    /// `4W/k` error bound as the single instance — the `N×` counter memory
    /// is the price of full-window coverage per shard), with per-shard
    /// decorrelated RNG seeds.
    pub fn memento(shards: usize, counters: usize, window: usize, tau: f64, seed: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-memento", shards, move |i| {
            let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Box::new(Memento::new(counters, window, tau, shard_seed))
        })
    }

    /// A sharded [`Wcss`] (Memento with τ = 1): the fully deterministic
    /// configuration, used by the equivalence tests. Per-shard windows and
    /// counters match the single instance exactly, so on streams where no
    /// Space-Saving eviction occurs the sharded estimates are bit-for-bit
    /// the single-threaded ones.
    pub fn wcss(shards: usize, counters: usize, window: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-wcss", shards, move |_| {
            Box::new(Wcss::new(counters, window))
        })
    }

    /// A sharded exact window oracle (full `W`-position window per shard):
    /// zero estimation error, used as the sharding-layer ground truth.
    pub fn exact(shards: usize, window: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-exact", shards, move |_| {
            Box::new(ExactWindow::new(window))
        })
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Sets the snapshot [`PublishPolicy`] (builder style, for use at
    /// construction: `ShardedEstimator::memento(..).with_policy(..)`).
    pub fn with_policy(mut self, policy: PublishPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The engine's current snapshot [`PublishPolicy`].
    pub fn policy(&self) -> PublishPolicy {
        self.policy
    }

    /// Equips the engine with a grain-mapped time plane (builder style,
    /// like [`Self::with_policy`]): one [`GrainClock`] per shard over
    /// `map`, enabling [`Self::advance_to`]. Every per-shard estimator
    /// must be configured with a count window of exactly
    /// `map.window_positions()` — the same contract as
    /// [`TimedWindow`](memento_core::TimedWindow), which this replaces for
    /// sharded deployments: the clocks live *inside* the engine, so
    /// time-driven rotations ship per shard and the workers execute their
    /// closed-form skips in parallel.
    pub fn with_grain_clock(mut self, map: GrainMap) -> Self {
        self.clocks = Some(
            (0..self.workers.len())
                .map(|_| GrainClock::new(map))
                .collect(),
        );
        self
    }

    /// The per-shard grain clocks, when the engine was built
    /// [`with_grain_clock`](Self::with_grain_clock): geometry, newest
    /// timestamp, and clamp diagnostics — one replica per shard.
    pub fn grain_clocks(&self) -> Option<&[GrainClock]> {
        self.clocks.as_deref()
    }

    /// Advances every shard's window to timestamp `t` without recording
    /// anything — the engine-level twin of
    /// [`TimedWindow::advance_to`](memento_core::TimedWindow::advance_to).
    ///
    /// Each shard owns a [`GrainClock`] replica over the shared geometry;
    /// all ingest flows through the single router, so the replicas observe
    /// the same global position and agree on the rotation count (keeping a
    /// clock per shard leaves room for worker-local advancement if routing
    /// ever decentralizes). When rotations are due, the global position
    /// advances first and every shard then ships — the rotations land in
    /// each shipment's trailing skip (gap stamps are taken eagerly at push
    /// time, so buffered keys keep their pre-advance positions) and each
    /// worker executes its closed-form `skip` *now*, in parallel, instead
    /// of at its next ingest. Zero rotations — within a grain, or while
    /// records run ahead of schedule — touch nothing: no shipment, no
    /// worker wakeup. Non-monotone `t` clamps per the clock policy.
    ///
    /// # Panics
    /// Panics unless the engine was built with
    /// [`Self::with_grain_clock`].
    pub fn advance_to(&mut self, t: u64) {
        let mut state = self.state.lock().expect("router state poisoned");
        let position = state.position();
        let rotations = {
            let clocks = self
                .clocks
                .as_mut()
                .expect("advance_to requires an engine built with with_grain_clock(map)");
            let mut rotations = 0;
            for clock in clocks.iter_mut() {
                rotations = clock.observe(t, position);
            }
            rotations
        };
        if rotations > 0 {
            state.advance(rotations);
            for shard in 0..self.workers.len() {
                self.ship_shard(&mut state, shard);
            }
        }
    }

    /// A wait-free handle answering [`WindowQuery`] from the latest
    /// published snapshot: cheap to clone, `Send + Sync`, stale by at most
    /// one publication interval, and never touching the worker FIFOs.
    pub fn reader(&self) -> SnapshotReader<K> {
        SnapshotReader::new(Arc::clone(&self.hub), self.name, self.error_bound)
    }

    /// Overrides the per-shard batch size at which buffered keys are shipped
    /// to the workers (default [`DEFAULT_FLUSH_THRESHOLD`]).
    #[deprecated(
        since = "0.2.0",
        note = "configure the query plane through `with_policy(PublishPolicy { .. })`; \
                the ship batch size is an internal knob"
    )]
    pub fn set_flush_threshold(&mut self, threshold: usize) {
        assert!(threshold > 0, "flush threshold must be positive");
        self.flush_threshold = threshold;
    }

    /// The shard owning `key`: the workspace-wide
    /// [`fasthash::route`] helper — one fast hash per routed key,
    /// deterministic across runs and processes.
    fn shard_of(&self, key: &K) -> usize {
        fasthash::route(key, self.workers.len())
    }

    /// Ships one shard's gap-stamped keys plus the trailing skip that
    /// advances the shard's window to the current global position: the
    /// worker replays `skip(gap)` before each key (through the estimator's
    /// fused `update_batch_positioned` path) and a final `skip(tail)` for
    /// the packets routed elsewhere after the shard's last key. Ships a
    /// tail-only skip when the shard has no buffered keys but has fallen
    /// behind the global position.
    fn ship_shard(&self, state: &mut Router<K>, shard: usize) {
        let Some((gaps, keys, tail)) = state.take_shipment(shard) else {
            return;
        };
        self.workers[shard].send(Box::new(move |est| {
            if !keys.is_empty() {
                est.update_batch_positioned(&gaps, &keys);
            }
            if tail > 0 {
                est.skip(tail);
            }
        }));
        self.shipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Ships every shard's pending buffer and advances every shard to the
    /// current global stream position, without publishing a snapshot.
    fn ship_all(&self) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
    }

    /// Publishes a snapshot if the periodic cadence is due.
    fn maybe_publish(&self, state: &mut Router<K>) {
        if self.policy.every_batches > 0
            && self.shipped.load(Ordering::Relaxed) >= self.policy.every_batches
        {
            self.publish_epoch(state);
        }
    }

    /// Ships all buffers (position sync), allocates the next epoch and
    /// enqueues one incremental freeze job ([`freeze_delta`]
    /// (WindowQuery::freeze_delta)) per worker FIFO. Epochs are allocated
    /// under the router lock, so epoch order equals enqueue order on every
    /// FIFO — which is what makes them complete in order at the hub (and
    /// what lets the hub's stateful assembler apply patches in order).
    ///
    /// **Unchanged-engine short circuit:** every state change since the
    /// previous publication — buffered keys, position advances — turns into
    /// a shipment during the ship-all loop above, so `shipped == 0`
    /// afterwards means the shards are bit-identical to what the last
    /// freeze round saw. When additionally every allocated epoch has been
    /// published (no freeze jobs in flight), the freeze round would produce
    /// all-empty patches — so the latest snapshot is re-published under the
    /// new epoch instead, without touching a worker. The epoch still
    /// advances (readers still observe the publication); the workers just
    /// never hear about it.
    fn publish_epoch(&self, state: &mut Router<K>) -> u64 {
        for shard in 0..self.workers.len() {
            self.ship_shard(state, shard);
        }
        let unchanged = self.shipped.swap(0, Ordering::Relaxed) == 0;
        if unchanged && self.hub.quiescent() {
            // Epoch allocation and the quiescence check both happen under
            // the router lock, so no worker delivery can race the restamp.
            let epoch = self.hub.begin_epoch();
            if self
                .hub
                .publish_restamped(epoch, |snap| snap.restamped(epoch))
            {
                return epoch;
            }
            // Nothing published yet (first publication of an empty
            // engine): fall through to a real freeze round for this epoch.
            self.enqueue_freezes(epoch);
            return epoch;
        }
        let epoch = self.hub.begin_epoch();
        self.enqueue_freezes(epoch);
        epoch
    }

    /// Enqueues one incremental freeze job per worker FIFO for `epoch`.
    fn enqueue_freezes(&self, epoch: u64) {
        self.freezes.fetch_add(1, Ordering::Relaxed);
        for (shard, worker) in self.workers.iter().enumerate() {
            let hub = Arc::clone(&self.hub);
            worker.send(Box::new(move |est| {
                hub.deliver(epoch, shard, est.freeze_delta());
            }));
        }
    }

    /// Number of freeze rounds actually enqueued to the workers — excludes
    /// re-stamped publications of an unchanged engine. Diagnostics for the
    /// short-circuit tests.
    #[doc(hidden)]
    pub fn freeze_rounds(&self) -> usize {
        self.freezes.load(Ordering::Relaxed)
    }

    /// Publishes a fresh snapshot *now* — ships all pending buffers,
    /// freezes every shard at the current global position, waits for the
    /// merged snapshot to appear in the double buffer — and returns its
    /// epoch. This is the explicit synchronization point: after
    /// `publish_now` returns, every reader observes a snapshot at least
    /// this fresh.
    pub fn publish_now(&self) -> u64 {
        let epoch = {
            let mut state = self.state.lock().expect("router state poisoned");
            self.publish_epoch(&mut state)
        };
        self.hub.wait_published(epoch);
        epoch
    }

    /// Flushes every shard's pending buffer and publishes a snapshot.
    #[deprecated(since = "0.2.0", note = "use `publish_now()`")]
    pub fn flush(&self) {
        self.publish_now();
    }

    /// The historical FIFO piggyback query path: ships all pending buffers,
    /// then runs `f` on shard `shard`'s worker thread after everything
    /// enqueued before it. Kept (hidden) so differential tests can compare
    /// snapshot answers against flush-then-FIFO answers; everything else
    /// should go through [`WindowQuery`] or [`Self::reader`].
    #[doc(hidden)]
    pub fn query_via_fifo<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut BoxedEstimator<K>) -> R + Send + 'static,
    {
        self.ship_all();
        self.workers[shard].call(f)
    }

    /// The snapshot every query method answers from: the latest published
    /// one, after forcing a publication when the policy says queries must
    /// observe everything ingested so far (or when nothing was published
    /// yet).
    fn read_snapshot(&self) -> Arc<EngineSnapshot<K>> {
        if self.policy.on_query || self.hub.latest().is_none() {
            self.publish_now();
        }
        self.hub.latest().expect("publish_now published an epoch")
    }
}

impl<K: Eq + Hash + Clone + Send + Sync + 'static> std::fmt::Debug for ShardedEstimator<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEstimator")
            .field("name", &self.name)
            .field("shards", &self.workers.len())
            .field("flush_threshold", &self.flush_threshold)
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone + Send + Sync + 'static> WindowQuery<K> for ShardedEstimator<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    /// Answered from the latest published [`EngineSnapshot`] (the owning
    /// shard's frozen summary — same key routing as ingest). Under the
    /// default [`PublishPolicy::on_query`] a publication is forced first,
    /// so the answer reflects every preceding update exactly like the old
    /// flush-then-FIFO path; with `on_query = false` the answer is stale by
    /// at most one publication interval.
    fn estimate(&self, key: &K) -> f64 {
        self.read_snapshot().estimate(key)
    }

    /// Answered from the latest published [`EngineSnapshot`]: per-shard
    /// sets concatenated in shard order, re-sorted by descending estimate.
    /// Same staleness semantics as [`Self::estimate`].
    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.read_snapshot().heavy_hitters(threshold)
    }

    /// Global stream position of the snapshot being read. Under the default
    /// on-query publication this doubles as the drain barrier the
    /// throughput harnesses rely on: the publication's freeze jobs run
    /// after every shipped batch on every worker FIFO.
    fn processed(&self) -> u64 {
        self.read_snapshot().processed()
    }

    fn error_bound(&self) -> f64 {
        // A flow lives entirely in one shard whose window spans the full
        // global stream, so the merged per-flow error is the worst
        // per-shard bound, not their sum.
        self.error_bound
    }
}

impl<K: Eq + Hash + Clone + Send + Sync + 'static> SlidingWindowEstimator<K>
    for ShardedEstimator<K>
{
    fn update(&mut self, key: K) {
        // `&mut self` rules out concurrent queries, so holding the state
        // lock across a (possibly blocking) ship cannot deadlock.
        let shard = self.shard_of(&key);
        let mut state = self.state.lock().expect("router state poisoned");
        if state.push(shard, key, self.flush_threshold) >= self.flush_threshold {
            self.ship_shard(&mut state, shard);
            self.maybe_publish(&mut state);
        }
    }

    /// Partitions the batch by key hash and ships each shard's share in
    /// flush-threshold-sized gap-stamped messages, preserving per-shard
    /// arrival order (the order across shards is immaterial: shards are
    /// disjoint key sets and the gap stamps carry the exact cross-shard
    /// positions). Keys beyond the last full message stay buffered until
    /// the next update or query.
    ///
    /// Routes are computed tile-wise: a straight-line pass hashes a fixed
    /// tile of keys into a stack array before the branchy push/ship loop
    /// consumes them, so the hashing pipelines ahead of the buffer
    /// bookkeeping instead of serializing with it. Push order — and with
    /// it every gap stamp — is exactly that of the per-key loop.
    fn update_batch(&mut self, keys: &[K]) {
        const TILE: usize = 64;
        let mut state = self.state.lock().expect("router state poisoned");
        let mut routes = [0usize; TILE];
        for tile in keys.chunks(TILE) {
            for (route, key) in routes.iter_mut().zip(tile) {
                *route = self.shard_of(key);
            }
            for (key, &shard) in tile.iter().zip(&routes) {
                if state.push(shard, key.clone(), self.flush_threshold) >= self.flush_threshold {
                    self.ship_shard(&mut state, shard);
                    self.maybe_publish(&mut state);
                }
            }
        }
    }

    /// Processes a gap-stamped batch at the engine level: before each key,
    /// the *global* stream position advances over its gap. This is the time
    /// plane's ingest path (`TimedWindow::record_timed` stamps the grain
    /// schedule's rotations as gaps) and is much cheaper than the trait
    /// default here: because the router's `push` stamps each entry's gap
    /// eagerly at routing time, advancing the router mid-batch folds the
    /// gap into the *next* entry's stamp on every shard — no shipment per
    /// gap, no per-gap worker wakeup. Shards that receive no key after a
    /// gap are advanced by the trailing skip of their next shipment, as
    /// always. Observable behaviour is exactly the trait contract:
    /// `skip(gaps[i]); update(keys[i])` in order.
    fn update_batch_positioned(&mut self, gaps: &[u64], keys: &[K]) {
        assert_eq!(gaps.len(), keys.len(), "one gap stamp per key");
        const TILE: usize = 64;
        let mut state = self.state.lock().expect("router state poisoned");
        let mut routes = [0usize; TILE];
        for (tile_keys, tile_gaps) in keys.chunks(TILE).zip(gaps.chunks(TILE)) {
            for (route, key) in routes.iter_mut().zip(tile_keys) {
                *route = self.shard_of(key);
            }
            for ((key, &shard), &gap) in tile_keys.iter().zip(&routes).zip(tile_gaps) {
                if gap > 0 {
                    state.advance(gap);
                }
                if state.push(shard, key.clone(), self.flush_threshold) >= self.flush_threshold {
                    self.ship_shard(&mut state, shard);
                    self.maybe_publish(&mut state);
                }
            }
        }
    }

    /// Advances the global stream position over `n` packets observed
    /// outside this engine (e.g. by another engine of a larger deployment).
    /// Pending buffers ship first so already-routed keys keep their
    /// pre-skip positions; the advance itself then propagates to the shards
    /// as part of the gap stamps of their next shipments.
    fn skip(&mut self, n: u64) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
        state.advance(n);
    }

    fn space_bytes(&self) -> usize {
        self.ship_all();
        (0..self.workers.len())
            .map(|shard| self.workers[shard].call(|est| est.space_bytes()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_all_packets_and_counts_them() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(4, 4_000);
        for i in 0..2_000u64 {
            sharded.update(i % 37);
        }
        assert_eq!(sharded.processed(), 2_000);
        assert_eq!(sharded.shards(), 4);
        assert!(sharded.space_bytes() > 0);
        assert_eq!(sharded.error_bound(), 0.0);
    }

    #[test]
    fn exact_sharding_matches_exact_counts_beyond_the_window() {
        // Global-position windows: the sharded exact oracle agrees with a
        // single exact window even when the stream is much longer than W
        // and expiry is in full swing — the per-key gap stamps replay every
        // key at its exact global position.
        let window = 800;
        let shards = 4;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(shards, window);
        let mut single: ExactWindow<u64> = ExactWindow::new(window);
        for i in 0..5_000u64 {
            let key = (i * i) % 101;
            sharded.update(key);
            single.add(key);
        }
        for key in 0..101u64 {
            assert_eq!(sharded.estimate(&key), single.query(&key) as f64);
        }
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    fn heavy_hitters_merge_across_shards() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(3, 30_000);
        // Three heavy flows chosen to (very likely) live on distinct shards.
        for _ in 0..1_000 {
            for key in [1u64, 2, 3, 500, 501] {
                sharded.update(key);
            }
        }
        let hh = sharded.heavy_hitters(900.0);
        assert_eq!(hh.len(), 5);
        for pair in hh.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "merged output not sorted: {hh:?}");
        }
    }

    #[test]
    fn single_shard_memento_matches_unsharded_memento() {
        // With one shard the engine routes everything to one inner Memento
        // configured identically (all gaps are zero), so estimates agree
        // exactly.
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::memento(1, 64, 4_000, 1.0, 7);
        let mut single: Memento<u64> = Memento::new(64, 4_000, 1.0, 7);
        for i in 0..10_000u64 {
            let key = (i * i) % 113;
            sharded.update(key);
            single.update(key);
        }
        for key in 0..113u64 {
            assert_eq!(sharded.estimate(&key), Memento::estimate(&single, &key));
        }
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    fn update_batch_equals_per_packet_updates() {
        let mut batched: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 64, 8_000);
        let mut one_by_one: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 64, 8_000);
        let keys: Vec<u64> = (0..20_000u64).map(|i| (i * 7) % 301).collect();
        for part in keys.chunks(997) {
            batched.update_batch(part);
        }
        for &key in &keys {
            one_by_one.update(key);
        }
        for key in 0..301u64 {
            assert_eq!(batched.estimate(&key), one_by_one.estimate(&key));
        }
        assert_eq!(batched.processed(), one_by_one.processed());
    }

    #[test]
    fn positioned_batches_equal_interleaved_skip_and_update() {
        // The engine-level `update_batch_positioned` override (the time
        // plane's ingest path) must match the trait contract: the
        // per-key `skip(gap); update(key)` interleaving.
        let window = 900;
        let mut positioned: ShardedEstimator<u64> = ShardedEstimator::exact(3, window);
        let mut interleaved: ShardedEstimator<u64> = ShardedEstimator::exact(3, window);
        let n = 6_000u64;
        let gaps: Vec<u64> = (0..n)
            .map(|i| [0, 0, 1, 0, 7, 0, 0, 350][(i % 8) as usize])
            .collect();
        let keys: Vec<u64> = (0..n).map(|i| (i * 13) % 41).collect();
        for (gap_part, key_part) in gaps.chunks(997).zip(keys.chunks(997)) {
            positioned.update_batch_positioned(gap_part, key_part);
        }
        for (&gap, &key) in gaps.iter().zip(&keys) {
            if gap > 0 {
                interleaved.skip(gap);
            }
            interleaved.update(key);
        }
        for key in 0..41u64 {
            assert_eq!(
                positioned.estimate(&key),
                interleaved.estimate(&key),
                "key {key}"
            );
        }
        assert_eq!(positioned.processed(), interleaved.processed());
    }

    #[test]
    fn engine_level_skip_advances_every_shard_window() {
        // Fill a window, then skip a full window's worth of elsewhere
        // packets: everything must expire on every shard.
        let window = 500;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(3, window);
        for i in 0..window as u64 {
            sharded.update(i % 11);
        }
        assert!(sharded.estimate(&1) > 0.0);
        sharded.skip(window as u64);
        for key in 0..11u64 {
            assert_eq!(sharded.estimate(&key), 0.0, "key {key} survived the skip");
        }
        assert_eq!(sharded.processed(), 2 * window as u64);
    }

    #[test]
    fn reader_answers_without_engine_queries() {
        // Periodic publication alone (no on-query publish) must hand the
        // reader a usable snapshot with bounded staleness.
        let mut sharded: ShardedEstimator<u64> =
            ShardedEstimator::exact(2, 50_000).with_policy(PublishPolicy {
                every_batches: 1,
                on_query: false,
            });
        let reader = sharded.reader();
        assert_eq!(reader.processed(), 0, "no snapshot before any publish");
        let keys: Vec<u64> = (0..40_000u64).map(|i| i % 10).collect();
        sharded.update_batch(&keys);
        let epoch = sharded.publish_now();
        assert!(epoch >= 1);
        let snap = reader.latest().expect("published snapshot");
        assert_eq!(snap.processed(), 40_000);
        assert_eq!(reader.estimate(&3), 4_000.0);
        // Clones share the hub and observe the same epochs.
        let clone = reader.clone();
        assert_eq!(
            clone.latest().expect("shared snapshot").epoch(),
            snap.epoch()
        );
    }

    #[test]
    fn snapshot_queries_match_fifo_queries() {
        // The engine's snapshot-backed answers equal the historical FIFO
        // piggyback path at the same point in the stream.
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 128, 9_000);
        let keys: Vec<u64> = (0..12_000u64).map(|i| (i * 31) % 257).collect();
        sharded.update_batch(&keys);
        for key in 0..257u64 {
            let via_snapshot = sharded.estimate(&key);
            let shard = fasthash::route(&key, sharded.shards());
            let via_fifo = sharded.query_via_fifo(shard, move |est| est.estimate(&key));
            assert_eq!(via_snapshot.to_bits(), via_fifo.to_bits());
        }
    }

    #[test]
    fn unchanged_engine_republishes_without_freezing() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::wcss(2, 64, 8_000);
        let keys: Vec<u64> = (0..4_000u64).map(|i| i % 23).collect();
        sharded.update_batch(&keys);
        let e1 = sharded.publish_now();
        let rounds = sharded.freeze_rounds();
        // Publishing an untouched engine must advance the epoch without
        // enqueueing a single freeze job (the workers never hear about it).
        let e2 = sharded.publish_now();
        let e3 = sharded.publish_now();
        assert!(e1 < e2 && e2 < e3, "epochs must keep advancing");
        assert_eq!(sharded.freeze_rounds(), rounds, "short circuit froze");
        // The restamped snapshot carries the new epoch and the old answers.
        let snap = sharded.reader().latest().expect("published");
        assert_eq!(snap.epoch(), e3);
        assert_eq!(snap.processed(), 4_000);
        assert_eq!(snap.estimate(&1), sharded.estimate(&1));
        // Any ingest — even a single packet — re-arms the real freeze path.
        sharded.update(1);
        let e4 = sharded.publish_now();
        assert!(e4 > e3);
        assert!(sharded.freeze_rounds() > rounds, "ingest must re-freeze");
        assert_eq!(sharded.processed(), 4_001);
        // A bare position advance (skip) also counts as a change.
        let rounds = sharded.freeze_rounds();
        sharded.skip(5_000);
        sharded.publish_now();
        assert!(sharded.freeze_rounds() > rounds, "skip must re-freeze");
        assert_eq!(sharded.processed(), 9_001);
    }

    #[test]
    fn engine_advance_to_expires_by_time() {
        // A full window of idle ticks must expire everything on every
        // shard, with the rotations shipped by `advance_to` itself (no
        // ingest afterwards to piggyback on).
        let window = 400u64;
        let map = GrainMap::new(100 * window, window, 8);
        let mut sharded: ShardedEstimator<u64> =
            ShardedEstimator::exact(2, window as usize).with_grain_clock(map);
        sharded.advance_to(5);
        for i in 0..window {
            sharded.update(i % 13);
        }
        assert!(sharded.estimate(&1) > 0.0);
        sharded.advance_to(5 + 2 * map.window_ticks());
        for key in 0..13u64 {
            assert_eq!(sharded.estimate(&key), 0.0, "key {key} survived the gap");
        }
        // Every per-shard clock replica observed the same schedule.
        let clocks = sharded.grain_clocks().expect("clock configured");
        assert_eq!(clocks.len(), 2);
        assert!(clocks
            .iter()
            .all(|c| c.last_tick() == 5 + 2 * map.window_ticks()));
    }

    #[test]
    fn engine_advance_to_matches_wrapped_timed_window() {
        // The engine-level time plane must agree with wrapping the whole
        // engine in a `TimedWindow` — same grain geometry, same advance
        // points, same clamp policy — at 1, 2 and 4 shards.
        use memento_core::TimedWindow;
        let window = 600usize;
        let map = GrainMap::new(3_000, window as u64, 12);
        for shards in [1usize, 2, 4] {
            let mut engine: ShardedEstimator<u64> =
                ShardedEstimator::exact(shards, window).with_grain_clock(map);
            let mut wrapped = TimedWindow::new(ShardedEstimator::<u64>::exact(shards, window), map);
            let mut t = 0u64;
            for step in 0..60u64 {
                t += (step * 37) % 450; // in-grain repeats and multi-grain jumps
                let sample_t = if step % 9 == 8 {
                    t.saturating_sub(700)
                } else {
                    t
                };
                let keys: Vec<u64> = (0..(step % 7 + 1)).map(|i| (step * 11 + i) % 29).collect();
                engine.advance_to(sample_t);
                engine.update_batch(&keys);
                wrapped.record_batch_at(&keys, sample_t);
            }
            for key in 0..29u64 {
                assert_eq!(
                    engine.estimate(&key),
                    wrapped.estimate(&key),
                    "key {key} diverged at {shards} shards"
                );
            }
            let engine_clock = &engine.grain_clocks().expect("clock configured")[0];
            assert_eq!(engine_clock.last_tick(), wrapped.clock().last_tick());
            assert_eq!(engine_clock.clamped(), wrapped.clock().clamped());
            assert!(engine_clock.clamped() > 0, "test must exercise the clamp");
        }
    }

    #[test]
    #[should_panic(expected = "with_grain_clock")]
    fn advance_to_without_clock_panics() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(1, 100);
        sharded.advance_to(5);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panic() {
        let _ = ShardedEstimator::<u64>::exact(0, 100);
    }

    #[test]
    #[should_panic(expected = "global-position window")]
    fn interval_estimators_are_refused() {
        use memento_sketches::SpaceSaving;
        let _ = ShardedEstimator::<u64>::new("sharded-space-saving", 2, |_| {
            Box::new(SpaceSaving::new(16))
        });
    }
}
