//! Hash-partitioned multi-core engine for [`SlidingWindowEstimator`]s.

use std::hash::Hash;
use std::sync::Mutex;

use memento_core::traits::SlidingWindowEstimator;
use memento_core::{Memento, Wcss};
use memento_sketches::{fasthash, ExactWindow};

use crate::router::Router;
use crate::worker::ShardWorker;
use crate::{DEFAULT_FLUSH_THRESHOLD, DEFAULT_QUEUE_DEPTH};

/// The boxed per-shard estimator each worker thread owns.
pub type BoxedEstimator<K> = Box<dyn SlidingWindowEstimator<K> + Send>;

/// A sliding-window estimator scaled across worker threads, with
/// **global-position windows**.
///
/// Keys are hash-partitioned over `N` shards; each shard is a worker thread
/// owning an independent estimator over a **full window of `W` packets at
/// the global stream position**. The router stamps every key with its
/// *gap* — the number of packets routed to other shards since that shard's
/// previous key — and the worker replays
/// [`skip(gap)`](SlidingWindowEstimator::skip) before each key (through
/// the estimator's fused
/// [`update_batch_positioned`](SlidingWindowEstimator::update_batch_positioned)
/// path), the D-Memento-style bulk window update of the Memento paper
/// (§6). Every shard's window therefore covers exactly the last `W`
/// packets of the *combined* stream (of which it recorded only its own
/// flows), so per-flow queries are answered by the owning shard alone and
/// heavy-hitter queries are the union of the per-shard answers — the
/// mergeable-sliding-window contract
/// ([`SlidingWindowEstimator::mergeable`]) that the sliding-window
/// heavy-hitter literature (Braverman et al.) assumes for partitioned
/// deployments. (The previous count-based design gave each shard `W/N` of
/// its *own* packets, which under skew covers far less than `W` global
/// packets for the shard owning a dominant flow — the 123 → 3308 on-arrival
/// RMSE blowup recorded in `crates/bench/EXPERIMENTS.md`.)
///
/// Updates travel to the workers as gap-stamped batches over bounded
/// channels (reusing each estimator's `update_batch` fast path — for
/// Memento, the geometric skip sampling of §5); queries piggyback on the
/// same FIFO, so a query observes every update enqueued before it without
/// any locking around the algorithm state.
///
/// The engine itself implements [`SlidingWindowEstimator`], so every
/// generic driver in the workspace — the figure harnesses, the detection
/// disciplines, the flood-mitigation scenario — can run sharded without
/// modification.
pub struct ShardedEstimator<K: Eq + Hash + Clone + Send + 'static> {
    name: &'static str,
    workers: Vec<ShardWorker<BoxedEstimator<K>>>,
    /// Gap-stamped buffers and position bookkeeping. Behind a mutex so the
    /// `&self` query methods can flush them; the engine is not itself meant
    /// to be driven from several threads (updates take `&mut self`), so the
    /// lock is uncontended.
    state: Mutex<Router<K>>,
    /// Ship a shard's buffer once it holds this many keys.
    flush_threshold: usize,
    /// Worst per-shard error bound, cached at construction (constant per
    /// configuration).
    error_bound: f64,
}

impl<K: Eq + Hash + Clone + Send + 'static> ShardedEstimator<K> {
    /// Creates a sharded engine with `shards` workers, each owning the
    /// estimator built by `factory(shard_index)`. Every per-shard estimator
    /// must be configured with the **full global window `W`** — the router
    /// keeps it at the global stream position via
    /// [`skip`](SlidingWindowEstimator::skip).
    ///
    /// `name` is the stable identifier reported through
    /// [`SlidingWindowEstimator::name`] (bench CSV/JSON output).
    ///
    /// # Panics
    /// Panics when `shards` is zero or a factory-built estimator reports
    /// itself as not [`mergeable`](SlidingWindowEstimator::mergeable) —
    /// global-position sharded windows require estimators whose `skip` can
    /// advance the window over packets recorded elsewhere; interval
    /// estimators (Space Saving) do not qualify.
    pub fn new<F>(name: &'static str, shards: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> BoxedEstimator<K>,
    {
        assert!(shards > 0, "shard count must be positive");
        let mut workers = Vec::with_capacity(shards);
        let mut error_bound: f64 = 0.0;
        for i in 0..shards {
            let estimator = factory(i);
            assert!(
                estimator.mergeable(),
                "{} cannot answer global-position window queries across key partitions \
                 (its skip cannot anchor a shard's window at the global stream position); \
                 it cannot be sharded",
                estimator.name()
            );
            error_bound = error_bound.max(estimator.error_bound());
            workers.push(ShardWorker::spawn(
                format!("{name}-shard-{i}"),
                DEFAULT_QUEUE_DEPTH,
                estimator,
            ));
        }
        ShardedEstimator {
            name,
            workers,
            state: Mutex::new(Router::new(shards)),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            error_bound,
        }
    }

    /// A sharded [`Memento`]: every shard keeps a **full `W`-packet window
    /// at the global stream position** with the full `k` counters (same
    /// `4W/k` error bound as the single instance — the `N×` counter memory
    /// is the price of full-window coverage per shard), with per-shard
    /// decorrelated RNG seeds.
    pub fn memento(shards: usize, counters: usize, window: usize, tau: f64, seed: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-memento", shards, move |i| {
            let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Box::new(Memento::new(counters, window, tau, shard_seed))
        })
    }

    /// A sharded [`Wcss`] (Memento with τ = 1): the fully deterministic
    /// configuration, used by the equivalence tests. Per-shard windows and
    /// counters match the single instance exactly, so on streams where no
    /// Space-Saving eviction occurs the sharded estimates are bit-for-bit
    /// the single-threaded ones.
    pub fn wcss(shards: usize, counters: usize, window: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-wcss", shards, move |_| {
            Box::new(Wcss::new(counters, window))
        })
    }

    /// A sharded exact window oracle (full `W`-position window per shard):
    /// zero estimation error, used as the sharding-layer ground truth.
    pub fn exact(shards: usize, window: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        Self::new("sharded-exact", shards, move |_| {
            Box::new(ExactWindow::new(window))
        })
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Overrides the per-shard batch size at which buffered keys are shipped
    /// to the workers (default [`DEFAULT_FLUSH_THRESHOLD`]).
    pub fn set_flush_threshold(&mut self, threshold: usize) {
        assert!(threshold > 0, "flush threshold must be positive");
        self.flush_threshold = threshold;
    }

    /// The shard owning `key`: the workspace-wide
    /// [`fasthash::route`] helper — one fast hash per routed key,
    /// deterministic across runs and processes.
    fn shard_of(&self, key: &K) -> usize {
        fasthash::route(key, self.workers.len())
    }

    /// Ships one shard's gap-stamped keys plus the trailing skip that
    /// advances the shard's window to the current global position: the
    /// worker replays `skip(gap)` before each key (through the estimator's
    /// fused `update_batch_positioned` path) and a final `skip(tail)` for
    /// the packets routed elsewhere after the shard's last key. Ships a
    /// tail-only skip when the shard has no buffered keys but has fallen
    /// behind the global position.
    fn ship_shard(&self, state: &mut Router<K>, shard: usize) {
        let Some((gaps, keys, tail)) = state.take_shipment(shard) else {
            return;
        };
        self.workers[shard].send(Box::new(move |est| {
            if !keys.is_empty() {
                est.update_batch_positioned(&gaps, &keys);
            }
            if tail > 0 {
                est.skip(tail);
            }
        }));
    }

    /// Flushes every shard's pending buffer and advances every shard to the
    /// current global stream position (queries call this so that they
    /// observe all preceding updates *and* correctly positioned windows).
    pub fn flush(&self) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
    }

    /// Flushes and position-syncs a single shard.
    fn flush_shard(&self, shard: usize) {
        let mut state = self.state.lock().expect("router state poisoned");
        self.ship_shard(&mut state, shard);
    }

    /// Runs a query on one shard, after everything enqueued before it.
    fn query_shard<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut BoxedEstimator<K>) -> R + Send + 'static,
    {
        self.workers[shard].call(f)
    }
}

impl<K: Eq + Hash + Clone + Send + 'static> std::fmt::Debug for ShardedEstimator<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEstimator")
            .field("name", &self.name)
            .field("shards", &self.workers.len())
            .field("flush_threshold", &self.flush_threshold)
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone + Send + 'static> SlidingWindowEstimator<K> for ShardedEstimator<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn update(&mut self, key: K) {
        // `&mut self` rules out concurrent queries, so holding the state
        // lock across a (possibly blocking) ship cannot deadlock.
        let shard = self.shard_of(&key);
        let mut state = self.state.lock().expect("router state poisoned");
        if state.push(shard, key, self.flush_threshold) >= self.flush_threshold {
            self.ship_shard(&mut state, shard);
        }
    }

    /// Partitions the batch by key hash and ships each shard's share in
    /// flush-threshold-sized gap-stamped messages, preserving per-shard
    /// arrival order (the order across shards is immaterial: shards are
    /// disjoint key sets and the gap stamps carry the exact cross-shard
    /// positions). Keys beyond the last full message stay buffered until
    /// the next update or query.
    ///
    /// Routes are computed tile-wise: a straight-line pass hashes a fixed
    /// tile of keys into a stack array before the branchy push/ship loop
    /// consumes them, so the hashing pipelines ahead of the buffer
    /// bookkeeping instead of serializing with it. Push order — and with
    /// it every gap stamp — is exactly that of the per-key loop.
    fn update_batch(&mut self, keys: &[K]) {
        const TILE: usize = 64;
        let mut state = self.state.lock().expect("router state poisoned");
        let mut routes = [0usize; TILE];
        for tile in keys.chunks(TILE) {
            for (route, key) in routes.iter_mut().zip(tile) {
                *route = self.shard_of(key);
            }
            for (key, &shard) in tile.iter().zip(&routes) {
                if state.push(shard, key.clone(), self.flush_threshold) >= self.flush_threshold {
                    self.ship_shard(&mut state, shard);
                }
            }
        }
    }

    /// Advances the global stream position over `n` packets observed
    /// outside this engine (e.g. by another engine of a larger deployment).
    /// Pending buffers ship first so already-routed keys keep their
    /// pre-skip positions; the advance itself then propagates to the shards
    /// as part of the gap stamps of their next shipments.
    fn skip(&mut self, n: u64) {
        let mut state = self.state.lock().expect("router state poisoned");
        for shard in 0..self.workers.len() {
            self.ship_shard(&mut state, shard);
        }
        state.advance(n);
    }

    fn estimate(&self, key: &K) -> f64 {
        let shard = self.shard_of(key);
        self.flush_shard(shard);
        let key = key.clone();
        self.query_shard(shard, move |est| est.estimate(&key))
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.flush();
        let mut merged: Vec<(K, f64)> = Vec::new();
        for shard in 0..self.workers.len() {
            merged.extend(self.query_shard(shard, move |est| est.heavy_hitters(threshold)));
        }
        merged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        merged
    }

    fn space_bytes(&self) -> usize {
        self.flush();
        (0..self.workers.len())
            .map(|shard| self.query_shard(shard, |est| est.space_bytes()))
            .sum()
    }

    /// Global stream position: after the flush every shard sits at the same
    /// position (each window covers the whole combined stream), so this is
    /// the maximum — not the sum — of the per-shard counts. Querying every
    /// worker doubles as the drain barrier the throughput harnesses rely
    /// on.
    fn processed(&self) -> u64 {
        self.flush();
        (0..self.workers.len())
            .map(|shard| self.query_shard(shard, |est| est.processed()))
            .max()
            .unwrap_or(0)
    }

    fn error_bound(&self) -> f64 {
        // A flow lives entirely in one shard whose window spans the full
        // global stream, so the merged per-flow error is the worst
        // per-shard bound, not their sum.
        self.error_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_all_packets_and_counts_them() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(4, 4_000);
        for i in 0..2_000u64 {
            sharded.update(i % 37);
        }
        assert_eq!(sharded.processed(), 2_000);
        assert_eq!(sharded.shards(), 4);
        assert!(sharded.space_bytes() > 0);
        assert_eq!(sharded.error_bound(), 0.0);
    }

    #[test]
    fn exact_sharding_matches_exact_counts_beyond_the_window() {
        // Global-position windows: the sharded exact oracle agrees with a
        // single exact window even when the stream is much longer than W
        // and expiry is in full swing — the per-key gap stamps replay every
        // key at its exact global position.
        let window = 800;
        let shards = 4;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(shards, window);
        let mut single: ExactWindow<u64> = ExactWindow::new(window);
        for i in 0..5_000u64 {
            let key = (i * i) % 101;
            sharded.update(key);
            single.add(key);
        }
        for key in 0..101u64 {
            assert_eq!(sharded.estimate(&key), single.query(&key) as f64);
        }
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    fn heavy_hitters_merge_across_shards() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(3, 30_000);
        // Three heavy flows chosen to (very likely) live on distinct shards.
        for _ in 0..1_000 {
            for key in [1u64, 2, 3, 500, 501] {
                sharded.update(key);
            }
        }
        let hh = sharded.heavy_hitters(900.0);
        assert_eq!(hh.len(), 5);
        for pair in hh.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "merged output not sorted: {hh:?}");
        }
    }

    #[test]
    fn single_shard_memento_matches_unsharded_memento() {
        // With one shard the engine routes everything to one inner Memento
        // configured identically (all gaps are zero), so estimates agree
        // exactly.
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::memento(1, 64, 4_000, 1.0, 7);
        let mut single: Memento<u64> = Memento::new(64, 4_000, 1.0, 7);
        for i in 0..10_000u64 {
            let key = (i * i) % 113;
            sharded.update(key);
            single.update(key);
        }
        for key in 0..113u64 {
            assert_eq!(sharded.estimate(&key), Memento::estimate(&single, &key));
        }
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    fn update_batch_equals_per_packet_updates() {
        let mut batched: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 64, 8_000);
        let mut one_by_one: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 64, 8_000);
        let keys: Vec<u64> = (0..20_000u64).map(|i| (i * 7) % 301).collect();
        for part in keys.chunks(997) {
            batched.update_batch(part);
        }
        for &key in &keys {
            one_by_one.update(key);
        }
        for key in 0..301u64 {
            assert_eq!(batched.estimate(&key), one_by_one.estimate(&key));
        }
        assert_eq!(batched.processed(), one_by_one.processed());
    }

    #[test]
    fn engine_level_skip_advances_every_shard_window() {
        // Fill a window, then skip a full window's worth of elsewhere
        // packets: everything must expire on every shard.
        let window = 500;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(3, window);
        for i in 0..window as u64 {
            sharded.update(i % 11);
        }
        assert!(sharded.estimate(&1) > 0.0);
        sharded.skip(window as u64);
        for key in 0..11u64 {
            assert_eq!(sharded.estimate(&key), 0.0, "key {key} survived the skip");
        }
        assert_eq!(sharded.processed(), 2 * window as u64);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panic() {
        let _ = ShardedEstimator::<u64>::exact(0, 100);
    }

    #[test]
    #[should_panic(expected = "global-position window")]
    fn interval_estimators_are_refused() {
        use memento_sketches::SpaceSaving;
        let _ = ShardedEstimator::<u64>::new("sharded-space-saving", 2, |_| {
            Box::new(SpaceSaving::new(16))
        });
    }
}
