//! Hash-partitioned multi-core engine for [`SlidingWindowEstimator`]s.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use memento_core::traits::SlidingWindowEstimator;
use memento_core::{Memento, Wcss};
use memento_sketches::ExactWindow;

use crate::worker::ShardWorker;
use crate::{DEFAULT_FLUSH_THRESHOLD, DEFAULT_QUEUE_DEPTH};

/// The boxed per-shard estimator each worker thread owns.
pub type BoxedEstimator<K> = Box<dyn SlidingWindowEstimator<K> + Send>;

/// A sliding-window estimator scaled across worker threads.
///
/// Keys are hash-partitioned over `N` shards; each shard is a worker thread
/// owning an independent estimator over a window of `W/N` packets. Because
/// the partition is by flow key, *all* packets of a flow land in one shard,
/// and a shard's `W/N`-packet window covers (in expectation) the same stretch
/// of the global stream as a single `W`-packet window would — so per-flow
/// queries are answered by the owning shard alone and heavy-hitter queries
/// are the union of the per-shard answers (the summation/union merge that
/// the [`SlidingWindowEstimator::mergeable`] contract promises). This is the
/// mergeable-summary view of sliding-window measurement that the
/// sliding-window heavy-hitter literature (Braverman et al.) relies on for
/// partitioned deployments.
///
/// Updates travel to the workers as batches over bounded channels (reusing
/// each estimator's `update_batch` fast path — for Memento, the geometric
/// skip sampling of §5); queries piggyback on the same FIFO, so a query
/// observes every update enqueued before it without any locking around the
/// algorithm state.
///
/// The engine itself implements [`SlidingWindowEstimator`], so every generic
/// driver in the workspace — the figure harnesses, the detection
/// disciplines, the flood-mitigation scenario — can run sharded without
/// modification.
pub struct ShardedEstimator<K: Eq + Hash + Clone + Send + 'static> {
    name: &'static str,
    workers: Vec<ShardWorker<BoxedEstimator<K>>>,
    /// Per-shard buffers of keys not yet shipped to the workers. Behind a
    /// mutex so the `&self` query methods can flush them; the engine is not
    /// itself meant to be driven from several threads (updates take
    /// `&mut self`), so the lock is uncontended.
    pending: Mutex<Vec<Vec<K>>>,
    /// Ship a shard's buffer once it holds this many keys.
    flush_threshold: usize,
    /// Worst per-shard error bound, cached at construction (constant per
    /// configuration).
    error_bound: f64,
}

impl<K: Eq + Hash + Clone + Send + 'static> ShardedEstimator<K> {
    /// Creates a sharded engine with `shards` workers, each owning the
    /// estimator built by `factory(shard_index)`.
    ///
    /// `name` is the stable identifier reported through
    /// [`SlidingWindowEstimator::name`] (bench CSV/JSON output).
    ///
    /// # Panics
    /// Panics when `shards` is zero or a factory-built estimator reports
    /// itself as not [`mergeable`](SlidingWindowEstimator::mergeable).
    pub fn new<F>(name: &'static str, shards: usize, mut factory: F) -> Self
    where
        F: FnMut(usize) -> BoxedEstimator<K>,
    {
        assert!(shards > 0, "shard count must be positive");
        let mut workers = Vec::with_capacity(shards);
        let mut error_bound: f64 = 0.0;
        for i in 0..shards {
            let estimator = factory(i);
            assert!(
                estimator.mergeable(),
                "{} is not mergeable across key partitions; it cannot be sharded",
                estimator.name()
            );
            error_bound = error_bound.max(estimator.error_bound());
            workers.push(ShardWorker::spawn(
                format!("{name}-shard-{i}"),
                DEFAULT_QUEUE_DEPTH,
                estimator,
            ));
        }
        ShardedEstimator {
            name,
            workers,
            pending: Mutex::new((0..shards).map(|_| Vec::new()).collect()),
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            error_bound,
        }
    }

    /// A sharded [`Memento`]: total window `W` split into per-shard windows
    /// of `⌈W/N⌉` packets and `⌈k/N⌉` counters (same absolute error bound
    /// `4W/k` as the single instance), with per-shard decorrelated RNG seeds.
    pub fn memento(shards: usize, counters: usize, window: usize, tau: f64, seed: u64) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let shard_window = window.div_ceil(shards).max(1);
        let shard_counters = counters.div_ceil(shards).max(1);
        Self::new("sharded-memento", shards, move |i| {
            let shard_seed = seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            Box::new(Memento::new(shard_counters, shard_window, tau, shard_seed))
        })
    }

    /// A sharded [`Wcss`] (Memento with τ = 1): the fully deterministic
    /// configuration, used by the equivalence tests.
    pub fn wcss(shards: usize, counters: usize, window: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let shard_window = window.div_ceil(shards).max(1);
        let shard_counters = counters.div_ceil(shards).max(1);
        Self::new("sharded-wcss", shards, move |_| {
            Box::new(Wcss::new(shard_counters, shard_window))
        })
    }

    /// A sharded exact window oracle (per-shard windows of `⌈W/N⌉` packets):
    /// zero estimation error, used as the sharding-layer ground truth.
    pub fn exact(shards: usize, window: usize) -> Self {
        assert!(shards > 0, "shard count must be positive");
        let shard_window = window.div_ceil(shards).max(1);
        Self::new("sharded-exact", shards, move |_| {
            Box::new(ExactWindow::new(shard_window))
        })
    }

    /// Number of shards (worker threads).
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Overrides the per-shard batch size at which buffered keys are shipped
    /// to the workers (default [`DEFAULT_FLUSH_THRESHOLD`]).
    pub fn set_flush_threshold(&mut self, threshold: usize) {
        assert!(threshold > 0, "flush threshold must be positive");
        self.flush_threshold = threshold;
    }

    /// The shard owning `key`. Uses the std hasher with its fixed keys, so
    /// the partition is deterministic across runs and processes.
    fn shard_of(&self, key: &K) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.workers.len() as u64) as usize
    }

    /// Ships one shard's buffered keys to its worker.
    fn ship(&self, shard: usize, batch: Vec<K>) {
        if batch.is_empty() {
            return;
        }
        self.workers[shard].send(Box::new(move |est| est.update_batch(&batch)));
    }

    /// Flushes every shard's pending buffer (queries call this so that they
    /// observe all preceding updates).
    pub fn flush(&self) {
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        for shard in 0..self.workers.len() {
            let batch = std::mem::take(&mut pending[shard]);
            self.ship(shard, batch);
        }
    }

    /// Flushes a single shard's pending buffer.
    fn flush_shard(&self, shard: usize) {
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        let batch = std::mem::take(&mut pending[shard]);
        self.ship(shard, batch);
    }

    /// Runs a query on one shard, after everything enqueued before it.
    fn query_shard<R, F>(&self, shard: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut BoxedEstimator<K>) -> R + Send + 'static,
    {
        self.workers[shard].call(f)
    }
}

impl<K: Eq + Hash + Clone + Send + 'static> std::fmt::Debug for ShardedEstimator<K> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEstimator")
            .field("name", &self.name)
            .field("shards", &self.workers.len())
            .field("flush_threshold", &self.flush_threshold)
            .finish_non_exhaustive()
    }
}

impl<K: Eq + Hash + Clone + Send + 'static> SlidingWindowEstimator<K> for ShardedEstimator<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn update(&mut self, key: K) {
        // `&mut self` rules out concurrent queries, so holding the buffer
        // lock across a (possibly blocking) ship cannot deadlock.
        let shard = self.shard_of(&key);
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        let buffer = &mut pending[shard];
        buffer.push(key);
        if buffer.len() >= self.flush_threshold {
            let full = std::mem::replace(buffer, Vec::with_capacity(self.flush_threshold));
            self.ship(shard, full);
        }
    }

    /// Partitions the batch by key hash and ships each shard's share in
    /// flush-threshold-sized messages, preserving per-shard arrival order
    /// (the order across shards is immaterial: shards are disjoint key
    /// sets). Keys beyond the last full message stay buffered until the next
    /// update or query.
    fn update_batch(&mut self, keys: &[K]) {
        let mut pending = self.pending.lock().expect("pending buffer poisoned");
        for key in keys {
            let shard = self.shard_of(key);
            let buffer = &mut pending[shard];
            if buffer.capacity() == 0 {
                buffer.reserve(self.flush_threshold);
            }
            buffer.push(key.clone());
            if buffer.len() >= self.flush_threshold {
                let full = std::mem::replace(buffer, Vec::with_capacity(self.flush_threshold));
                self.ship(shard, full);
            }
        }
    }

    fn estimate(&self, key: &K) -> f64 {
        let shard = self.shard_of(key);
        self.flush_shard(shard);
        let key = key.clone();
        self.query_shard(shard, move |est| est.estimate(&key))
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.flush();
        let mut merged: Vec<(K, f64)> = Vec::new();
        for shard in 0..self.workers.len() {
            merged.extend(self.query_shard(shard, move |est| est.heavy_hitters(threshold)));
        }
        merged.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        merged
    }

    fn space_bytes(&self) -> usize {
        self.flush();
        (0..self.workers.len())
            .map(|shard| self.query_shard(shard, |est| est.space_bytes()))
            .sum()
    }

    fn processed(&self) -> u64 {
        self.flush();
        (0..self.workers.len())
            .map(|shard| self.query_shard(shard, |est| est.processed()))
            .sum()
    }

    fn error_bound(&self) -> f64 {
        // A flow lives entirely in one shard, so the merged per-flow error is
        // the worst per-shard bound, not their sum.
        self.error_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_all_packets_and_counts_them() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(4, 4_000);
        for i in 0..2_000u64 {
            sharded.update(i % 37);
        }
        assert_eq!(sharded.processed(), 2_000);
        assert_eq!(sharded.shards(), 4);
        assert!(sharded.space_bytes() > 0);
        assert_eq!(sharded.error_bound(), 0.0);
    }

    #[test]
    fn exact_sharding_matches_exact_counts_within_shard_window() {
        // Within W/N packets nothing expires anywhere, so the sharded exact
        // oracle must agree exactly with a single exact window.
        let window = 8_000;
        let shards = 4;
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(shards, window);
        let mut single: ExactWindow<u64> = ExactWindow::new(window);
        for i in 0..(window / shards) as u64 {
            let key = i % 101;
            sharded.update(key);
            single.add(key);
        }
        for key in 0..101u64 {
            assert_eq!(sharded.estimate(&key), single.query(&key) as f64);
        }
    }

    #[test]
    fn heavy_hitters_merge_across_shards() {
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::exact(3, 30_000);
        // Three heavy flows chosen to (very likely) live on distinct shards.
        for _ in 0..1_000 {
            for key in [1u64, 2, 3, 500, 501] {
                sharded.update(key);
            }
        }
        let hh = sharded.heavy_hitters(900.0);
        assert_eq!(hh.len(), 5);
        for pair in hh.windows(2) {
            assert!(pair[0].1 >= pair[1].1, "merged output not sorted: {hh:?}");
        }
    }

    #[test]
    fn single_shard_memento_matches_unsharded_memento() {
        // With one shard the engine routes everything to one inner Memento
        // configured identically, so estimates agree exactly.
        let mut sharded: ShardedEstimator<u64> = ShardedEstimator::memento(1, 64, 4_000, 1.0, 7);
        let mut single: Memento<u64> = Memento::new(64, 4_000, 1.0, 7);
        for i in 0..10_000u64 {
            let key = (i * i) % 113;
            sharded.update(key);
            single.update(key);
        }
        for key in 0..113u64 {
            assert_eq!(sharded.estimate(&key), Memento::estimate(&single, &key));
        }
        assert_eq!(sharded.processed(), single.processed());
    }

    #[test]
    fn update_batch_equals_per_packet_updates() {
        let mut batched: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 64, 8_000);
        let mut one_by_one: ShardedEstimator<u64> = ShardedEstimator::wcss(4, 64, 8_000);
        let keys: Vec<u64> = (0..20_000u64).map(|i| (i * 7) % 301).collect();
        for part in keys.chunks(997) {
            batched.update_batch(part);
        }
        for &key in &keys {
            one_by_one.update(key);
        }
        for key in 0..301u64 {
            assert_eq!(batched.estimate(&key), one_by_one.estimate(&key));
        }
        assert_eq!(batched.processed(), one_by_one.processed());
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_panic() {
        let _ = ShardedEstimator::<u64>::exact(0, 100);
    }
}
