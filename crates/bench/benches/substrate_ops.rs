//! Micro-benchmarks / ablations of the substrates behind Memento:
//!
//! * Space Saving updates (the Full-update cost Memento amortizes away),
//! * the exact sliding-window counter (what a naive exact approach pays),
//! * the two sampler implementations the paper contrasts in §6.2
//!   (random-number table vs geometric skips),
//! * Memento's Window update alone (the fixed per-packet cost).
//!
//! These quantify the design choices called out in DESIGN.md.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use memento_bench::make_trace;
use memento_core::Memento;
use memento_sketches::{ExactWindow, GeometricSampler, Sampler, SpaceSaving, TableSampler};
use memento_traces::TracePreset;

fn bench_substrates(c: &mut Criterion) {
    let packets = 100_000;
    let trace = make_trace(&TracePreset::backbone(), packets, 5);

    let mut group = c.benchmark_group("substrates");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    group.bench_function("space_saving_add_4096", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(4096);
            for pkt in &trace {
                ss.add(pkt.flow());
            }
            ss.monitored()
        })
    });

    group.bench_function("exact_window_add_50k", |b| {
        b.iter(|| {
            let mut w = ExactWindow::new(50_000);
            for pkt in &trace {
                w.add(pkt.flow());
            }
            w.distinct()
        })
    });

    group.bench_function("memento_window_update_only", |b| {
        b.iter(|| {
            let mut m: Memento<u64> = Memento::new(4096, 50_000, 1.0, 1);
            for _ in 0..packets {
                m.window_update();
            }
            m.processed()
        })
    });

    group.bench_function("sampler_table_tau_2^-6", |b| {
        b.iter(|| {
            let mut s = TableSampler::with_seed(2f64.powi(-6), 1);
            let mut hits = 0u64;
            for _ in 0..packets {
                if s.sample() {
                    hits += 1;
                }
            }
            hits
        })
    });

    group.bench_function("sampler_geometric_tau_2^-6", |b| {
        b.iter(|| {
            let mut s = GeometricSampler::new(2f64.powi(-6), 1);
            let mut hits = 0u64;
            for _ in 0..packets {
                if s.sample() {
                    hits += 1;
                }
            }
            hits
        })
    });

    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
