//! The cache-resident hot path, isolated and end-to-end.
//!
//! PR 5 replaced std's SipHash maps on every per-packet structure (the
//! stream-summary key index, Memento's overflow table `B`) with the
//! workspace's fast-hash `CompactMap` and split the stream-summary slots
//! into hot/cold arrays. This bench measures both layers:
//!
//! * **map microbenches** — the Full-update access pattern (lookup-mostly
//!   with occasional insert/remove churn) on `std::collections::HashMap`
//!   vs [`CompactMap`], same keys, same sequence: the isolated cost of
//!   SipHash + bucket indirection vs one fingerprint probe;
//! * **end-to-end WCSS / Memento mpps** — `update_batch` over the perf
//!   gate's datacenter trace at τ = 1 (every packet a Full update, the
//!   worst case the ISSUE-5 gate bar is set on) and τ = 1/4;
//! * **space_saving_add** — the Full update's dominant component alone,
//!   comparable with `substrate_ops`' historical numbers.
//!
//! PR 6 adds the rows the SWAR word scan is aimed at:
//!
//! * **map_probe_compact_map_byte_scan** — the same probe workload
//!   through the retired byte-at-a-time `probe_reference`, isolating
//!   what the SWAR rewrite buys on its own;
//! * **delete-heavy churn** (`churn = 4`) — the regime PR 5's honesty
//!   note conceded ~5–10% to hashbrown: every fourth op a removal, so
//!   backward-shift deletion and the subsequent re-probes dominate.
//!   The SWAR scan walks those displaced clusters a word at a time.
//!
//! PR 10 turns the pair into a three-way A/B in one build: `probe` is now
//! the group scan over the active backend (16-lane SSE2 on x86_64, SWAR
//! elsewhere), and the `word_scan` row is repointed at the `#[doc(hidden)]`
//! `probe_swar` — the forced 8-lane SWAR group scan — so byte / SWAR /
//! SSE2 are measured side by side without a recompile.
//!
//! Recorded before/after numbers live in `crates/bench/EXPERIMENTS.md`.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use memento_bench::make_trace;
use memento_core::{Memento, Wcss};
use memento_sketches::{CompactMap, SpaceSaving};
use memento_traces::{Packet, TracePreset};

/// Trace length for the map and substrate microbenches.
const OPS: usize = 100_000;

/// Packet-burst size for the end-to-end rows (the perf gate's unit).
const CHUNK: usize = 4_096;

/// Number of monitored keys in the probe microbench (the gate's counter
/// budget: the stream-summary index holds at most this many).
const MONITORED: usize = 4_096;

/// The first `MONITORED` distinct flows of the trace — the population the
/// probe microbench holds monitored, as the stream summary would.
fn monitored_population(keys: &[u64]) -> Vec<u64> {
    let mut seen = std::collections::HashSet::new();
    let mut population = Vec::with_capacity(MONITORED);
    for &key in keys {
        if seen.insert(key) {
            population.push(key);
            if population.len() == MONITORED {
                break;
            }
        }
    }
    population
}

/// The stream-summary-index access pattern: a fixed monitored population,
/// every packet one probe — hit → increment through `get_mut`, miss →
/// fall through (the summary's eviction path). Lookup-dominated, zero
/// structural churn: exactly what a Full update pays per packet.
fn map_probe_std(population: &[u64], keys: &[u64]) -> u64 {
    let mut map: HashMap<u64, u32> = HashMap::with_capacity(MONITORED);
    for &key in population {
        map.insert(key, 0);
    }
    let mut misses = 0u64;
    for &key in keys {
        match map.get_mut(&key) {
            Some(v) => *v += 1,
            None => misses += 1,
        }
    }
    misses
}

fn map_probe_compact(population: &[u64], keys: &[u64]) -> u64 {
    let mut map: CompactMap<u64, u32> = CompactMap::with_capacity(MONITORED);
    for &key in population {
        map.insert(key, 0);
    }
    let mut misses = 0u64;
    for &key in keys {
        match map.get_mut(&key) {
            Some(v) => *v += 1,
            None => misses += 1,
        }
    }
    misses
}

/// The probe workload through the retired byte-at-a-time scan
/// (`probe_reference`), kept `#[doc(hidden)]` exactly so this row can
/// price the scan rewrites in isolation: same table, same keys — only
/// the fingerprint scan differs from the `word_scan`/`group_scan` rows
/// below. The three scan rows accumulate the returned *slot index*
/// rather than touching the entry (PR 10): a value touch lets LLVM fuse
/// the load into the fully-inline byte loop's lone hit site but not into
/// the grouped probes (their `Ok` joins with the out-of-line spill's
/// return), so it measured a caller codegen artifact, not the scan. The
/// `map_probe_compact_map` row above prices the real probe-plus-touch
/// access path.
fn map_probe_compact_byte_scan(population: &[u64], keys: &[u64]) -> u64 {
    let mut map: CompactMap<u64, u32> = CompactMap::with_capacity(MONITORED);
    for &key in population {
        map.insert(key, 0);
    }
    let mut acc = 0u64;
    for &key in keys {
        match map.probe_reference(&key) {
            Ok(slot) => acc += slot as u64,
            Err(_) => acc += 1,
        }
    }
    acc
}

/// The identical workload through the forced 8-lane SWAR group scan
/// (`probe_swar`) — the portable fallback backend, priced against both the
/// byte loop above and the active-backend `group_scan` row below.
fn map_probe_compact_word_scan(population: &[u64], keys: &[u64]) -> u64 {
    let mut map: CompactMap<u64, u32> = CompactMap::with_capacity(MONITORED);
    for &key in population {
        map.insert(key, 0);
    }
    let mut acc = 0u64;
    for &key in keys {
        match map.probe_swar(&key) {
            Ok(slot) => acc += slot as u64,
            Err(_) => acc += 1,
        }
    }
    acc
}

/// The identical workload through the active probe backend (`probe`):
/// 16-lane SSE2 groups on x86_64 builds, the SWAR groups elsewhere — the
/// row the PR 10 parity bar is set on.
fn map_probe_compact_group_scan(population: &[u64], keys: &[u64]) -> u64 {
    let mut map: CompactMap<u64, u32> = CompactMap::with_capacity(MONITORED);
    for &key in population {
        map.insert(key, 0);
    }
    let mut acc = 0u64;
    for &key in keys {
        match map.probe(&key) {
            Ok(slot) => acc += slot as u64,
            Err(_) => acc += 1,
        }
    }
    acc
}

/// The overflow-table access pattern: increment a counter per key; every
/// `churn`-th op removes the key instead (the insert/retire cycle `B`
/// lives under — this is what backward-shift deletion has to survive).
fn map_churn_std(keys: &[u64], churn: usize) -> u64 {
    let mut map: HashMap<u64, u32> = HashMap::new();
    let mut acc = 0u64;
    for (i, &key) in keys.iter().enumerate() {
        if i % churn == 0 {
            if let Some(v) = map.remove(&key) {
                acc += v as u64;
            }
        } else {
            *map.entry(key).or_insert(0) += 1;
        }
        if let Some(v) = map.get(&key) {
            acc += *v as u64;
        }
    }
    acc
}

fn map_churn_compact(keys: &[u64], churn: usize) -> u64 {
    let mut map: CompactMap<u64, u32> = CompactMap::new();
    let mut acc = 0u64;
    for (i, &key) in keys.iter().enumerate() {
        if i % churn == 0 {
            if let Some(v) = map.remove(&key) {
                acc += v as u64;
            }
        } else {
            *map.get_or_insert_with(key, || 0) += 1;
        }
        if let Some(v) = map.get(&key) {
            acc += *v as u64;
        }
    }
    acc
}

fn bench_hot_path(c: &mut Criterion) {
    let keys: Vec<u64> = make_trace(&TracePreset::datacenter(), OPS, 2018)
        .iter()
        .map(Packet::flow)
        .collect();

    let mut group = c.benchmark_group("hot_path");
    group.throughput(Throughput::Elements(OPS as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // -- isolated map layer -------------------------------------------------
    let population = monitored_population(&keys);
    group.bench_function("map_probe_std_hashmap", |b| {
        b.iter(|| map_probe_std(&population, &keys))
    });
    group.bench_function("map_probe_compact_map", |b| {
        b.iter(|| map_probe_compact(&population, &keys))
    });
    group.bench_function("map_probe_compact_map_byte_scan", |b| {
        b.iter(|| map_probe_compact_byte_scan(&population, &keys))
    });
    group.bench_function("map_probe_compact_map_word_scan", |b| {
        b.iter(|| map_probe_compact_word_scan(&population, &keys))
    });
    group.bench_function("map_probe_compact_map_group_scan", |b| {
        b.iter(|| map_probe_compact_group_scan(&population, &keys))
    });
    group.bench_function("map_churn_std_hashmap", |b| {
        b.iter(|| map_churn_std(&keys, 16))
    });
    group.bench_function("map_churn_compact_map", |b| {
        b.iter(|| map_churn_compact(&keys, 16))
    });
    group.bench_function("map_churn_std_hashmap_delete_heavy", |b| {
        b.iter(|| map_churn_std(&keys, 4))
    });
    group.bench_function("map_churn_compact_map_delete_heavy", |b| {
        b.iter(|| map_churn_compact(&keys, 4))
    });

    // -- the Full update's dominant component -------------------------------
    group.bench_function("space_saving_add_4096", |b| {
        b.iter(|| {
            let mut ss = SpaceSaving::new(4_096);
            for &key in &keys {
                ss.add(key);
            }
            ss.monitored()
        })
    });

    // -- end-to-end estimators over the gate trace --------------------------
    group.bench_function("wcss_update_batch_tau_1", |b| {
        b.iter(|| {
            let mut wcss: Wcss<u64> = Wcss::new(4_096, 50_000);
            for part in keys.chunks(CHUNK) {
                wcss.as_memento_mut().update_batch(part);
            }
            wcss.processed()
        })
    });
    group.bench_function("memento_update_batch_tau_0.25", |b| {
        b.iter(|| {
            let mut memento: Memento<u64> = Memento::new(4_096, 50_000, 0.25, 2018);
            for part in keys.chunks(CHUNK) {
                memento.update_batch(part);
            }
            memento.processed()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hot_path);
criterion_main!(benches);
