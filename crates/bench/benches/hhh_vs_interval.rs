//! Figure 7: H-Memento (sliding window) vs RHHH (interval) update speed,
//! 1D (H = 5) and 2D (H = 25).
//!
//! Both algorithms pay for one summary update per sampled packet; the
//! difference is in the per-packet fixed cost (H-Memento's Window update and
//! table-based sampling vs RHHH's geometric skip counter). Run with
//! `cargo bench -p memento-bench --bench hhh_vs_interval`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use memento_baselines::Rhhh;
use memento_bench::make_trace;
use memento_core::HMemento;
use memento_hierarchy::{SrcDstHierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn bench_hhh_vs_interval(c: &mut Criterion) {
    let packets = 100_000;
    let trace = make_trace(&TracePreset::backbone(), packets, 3);
    let window = 50_000;
    let counters_per_level = 512;

    let mut group = c.benchmark_group("fig7_hhh_vs_rhhh");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for i in [2i32, 5, 8] {
        let tau = 2f64.powi(-i);
        group.bench_function(
            BenchmarkId::new("1d/h_memento", format!("tau_2^-{i}")),
            |b| {
                b.iter(|| {
                    let mut hm =
                        HMemento::new(SrcHierarchy, 5 * counters_per_level, window, tau, 0.01, 9);
                    for pkt in &trace {
                        hm.update(pkt.src);
                    }
                    hm.full_updates()
                })
            },
        );
        group.bench_function(BenchmarkId::new("1d/rhhh", format!("tau_2^-{i}")), |b| {
            b.iter(|| {
                let mut rhhh = Rhhh::new(SrcHierarchy, counters_per_level, tau, 0.01, 9);
                for pkt in &trace {
                    rhhh.update(pkt.src);
                }
                rhhh.updates()
            })
        });
        group.bench_function(
            BenchmarkId::new("2d/h_memento", format!("tau_2^-{i}")),
            |b| {
                b.iter(|| {
                    let mut hm = HMemento::new(
                        SrcDstHierarchy,
                        25 * counters_per_level,
                        window,
                        tau,
                        0.01,
                        9,
                    );
                    for pkt in &trace {
                        hm.update(pkt.src_dst());
                    }
                    hm.full_updates()
                })
            },
        );
        group.bench_function(BenchmarkId::new("2d/rhhh", format!("tau_2^-{i}")), |b| {
            b.iter(|| {
                let mut rhhh = Rhhh::new(SrcDstHierarchy, counters_per_level, tau, 0.01, 9);
                for pkt in &trace {
                    rhhh.update(pkt.src_dst());
                }
                rhhh.updates()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_hhh_vs_interval);
criterion_main!(benches);
