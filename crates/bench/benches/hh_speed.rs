//! Figure 5 (a, c, e): single-device heavy-hitter update speed as a function
//! of the sampling probability τ, for 64/512/4096 counters.
//!
//! WCSS is Memento with τ = 1, so the τ = 1 group is the WCSS reference the
//! paper compares against. Run with `cargo bench -p memento-bench --bench
//! hh_speed`; see `src/bin/fig05_hh_speed.rs` for the CSV-producing variant.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use memento_bench::make_trace;
use memento_core::Memento;
use memento_traces::TracePreset;

fn bench_hh_speed(c: &mut Criterion) {
    let packets = 100_000;
    let trace = make_trace(&TracePreset::backbone(), packets, 1);
    let window = 50_000;

    let mut group = c.benchmark_group("fig5_hh_speed/backbone");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for &counters in &[64usize, 512, 4096] {
        for i in [0i32, 2, 4, 6, 8, 10] {
            let tau = 2f64.powi(-i);
            let id = BenchmarkId::new(format!("counters{counters}"), format!("tau_2^-{i}"));
            group.bench_function(id, |b| {
                b.iter(|| {
                    let mut memento = Memento::new(counters, window, tau, 7);
                    for pkt in &trace {
                        memento.update(pkt.flow());
                    }
                    memento.processed()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_hh_speed);
criterion_main!(benches);
