//! The time-plane ingest path, per-packet vs chunked (PR 10).
//!
//! `TimedWindow::record_timed` hoists the `GrainClock` consult out of the
//! per-packet loop: only the head of each same-grain run pays the full
//! `observe` (boundary crossings, schedule re-anchoring), while the run's
//! tail costs one grain-end comparison plus clamp bookkeeping. This bench
//! prices that hoist against the per-packet `record_at` baseline on the
//! two arrival shapes the perf gate replays:
//!
//! * **dense** — uniform at-rate arrivals (the gate's `dense-replay` row):
//!   ~64 packets per grain at the gate geometry, so the hoisted fast path
//!   dominates and the row isolates its best case;
//! * **bursty** — the gate's `bursty-replay` clock (idle-gap floods, then
//!   a diurnal rotation): runs are shorter and wholesale clears interleave,
//!   so the row keeps the run-detection overhead honest.
//!
//! Both estimator regimes ride along: WCSS (τ = 1, every packet a Full
//! update) and Memento at τ = 1/4 (the geometric-skip batch sampler).
//! Recorded numbers live in `crates/bench/EXPERIMENTS.md`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use memento_bench::{make_trace, stamp_bursty_then_diurnal};
use memento_core::{GrainMap, Memento, TimedWindow, Wcss};
use memento_traces::{ArrivalModel, Packet, TracePreset};

/// Trace length (matches `hot_path`'s microbench scale).
const OPS: usize = 100_000;

/// Packet-burst size for the chunked rows (the perf gate's unit).
const CHUNK: usize = 4_096;

/// Counter budget for both estimators (the gate's unit).
const COUNTERS: usize = 4_096;

/// Window size in positions (the gate's unit).
const WINDOW: usize = 50_000;

/// Grains per window (the gate's replay geometry).
const GRAINS: u64 = 64;

/// Mean inter-arrival gap for the dense clock, in nanoseconds (the gate's
/// flood gap: the time window spans exactly one position window at rate).
const GAP_NANOS: u64 = 100;

fn grain_map() -> GrainMap {
    GrainMap::new(GAP_NANOS * WINDOW as u64, WINDOW as u64, GRAINS)
}

/// Stamps the trace with the dense at-rate clock.
fn dense_arrivals(packets: &[Packet]) -> Vec<(u64, u64)> {
    ArrivalModel::Uniform {
        gap_nanos: GAP_NANOS,
    }
    .stamp(packets, 2018)
    .iter()
    .map(|tp| (tp.nanos, tp.packet.flow()))
    .collect()
}

/// Stamps the trace with the gate's bursty-then-diurnal clock.
fn bursty_arrivals(packets: &[Packet]) -> Vec<(u64, u64)> {
    stamp_bursty_then_diurnal(
        packets,
        ArrivalModel::Bursty {
            burst_len: 8_192,
            flood_gap_nanos: GAP_NANOS,
            idle_nanos: 2 * GAP_NANOS * WINDOW as u64,
        },
        ArrivalModel::Diurnal {
            fast_gap_nanos: GAP_NANOS,
            slow_gap_nanos: 8 * GAP_NANOS,
            period: 16_384,
        },
        2018,
    )
}

fn bench_timed_ingest(c: &mut Criterion) {
    let packets = make_trace(&TracePreset::datacenter(), OPS, 2018);
    let dense = dense_arrivals(&packets);
    let bursty = bursty_arrivals(&packets);
    let map = grain_map();

    let mut group = c.benchmark_group("timed_ingest");
    group.throughput(Throughput::Elements(OPS as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for (clock, arrivals) in [("dense", &dense), ("bursty", &bursty)] {
        group.bench_function(format!("wcss_record_at_{clock}"), |b| {
            b.iter(|| {
                let mut timed = TimedWindow::new(Wcss::<u64>::new(COUNTERS, WINDOW), map);
                for &(t, key) in arrivals.iter() {
                    timed.record_at(key, t);
                }
                timed.position()
            })
        });
        group.bench_function(format!("wcss_record_timed_{clock}"), |b| {
            b.iter(|| {
                let mut timed = TimedWindow::new(Wcss::<u64>::new(COUNTERS, WINDOW), map);
                for part in arrivals.chunks(CHUNK) {
                    timed.record_timed(part);
                }
                timed.position()
            })
        });
        group.bench_function(format!("memento_record_timed_tau_0.25_{clock}"), |b| {
            b.iter(|| {
                let mut timed =
                    TimedWindow::new(Memento::<u64>::new(COUNTERS, WINDOW, 0.25, 2018), map);
                for part in arrivals.chunks(CHUNK) {
                    timed.record_timed(part);
                }
                timed.position()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_timed_ingest);
criterion_main!(benches);
