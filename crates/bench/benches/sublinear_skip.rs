//! Closed-form `skip(n)` vs the pre-closed-form event walk.
//!
//! PR 3 made `skip(n)` walk block/frame boundaries one event at a time
//! (`O(n / block_size)` for Memento, `O(evicted)` per-slot pops for
//! `ExactWindow`). The closed form computes rotations, flushes and drains
//! arithmetically, so a bulk advance costs `O(min(rotations, k))` structural
//! work — independent of `n` — and `O(1)` once the expired state is
//! drained. Both implementations stay in the tree (`skip_reference` is the
//! old walk, asserted bit-for-bit equal by the differential tests); this
//! bench measures the gap.
//!
//! The acceptance bar is **≥ 10×** on `skip(W)` for both Memento and
//! `ExactWindow` against the reference walk (the `steady` rows for Memento,
//! where repeated window-sized advances hit the drained fast path — the
//! sharded engines' tail skips after the first are exactly this shape — and
//! the full-ring rows for `ExactWindow`, where the walk pays `W` hash-table
//! decrements and the closed form one wholesale clear).
//!
//! Run with `cargo bench -p memento-bench --bench sublinear_skip`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use memento_core::Memento;
use memento_sketches::ExactWindow;

/// A Memento with live overflow state: skewed warm-up over two windows.
fn warm_memento(counters: usize, window: usize) -> Memento<u64> {
    let mut memento = Memento::new(counters, window, 1.0, 7);
    for i in 0..2 * window as u64 {
        // ~20 hot flows over a quadratically skewed universe.
        memento.update((i * i) % 19);
    }
    memento
}

/// An ExactWindow whose ring is full (W recorded positions, ~1k flows).
fn full_exact_window(window: usize) -> ExactWindow<u64> {
    let mut exact = ExactWindow::new(window);
    for i in 0..window as u64 {
        exact.add(i % 1_000);
    }
    exact
}

fn bench_memento_skip(c: &mut Criterion) {
    let window = 100_000;
    let counters = 512;

    let mut group = c.benchmark_group("skip_w/memento");
    group.throughput(Throughput::Elements(window as u64));
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // Steady state: repeated skip(W) on one instance. After the first
    // advance the overflow state is fully drained, so the closed form is
    // O(1) per call while the reference walk still visits every block
    // boundary — the regime a sharded worker's tail skips live in.
    let mut closed = warm_memento(counters, window);
    group.bench_function(BenchmarkId::new("closed_form", "steady"), |b| {
        b.iter(|| {
            closed.skip(window as u64);
            closed.processed()
        })
    });
    let mut walk = warm_memento(counters, window);
    group.bench_function(BenchmarkId::new("pr3_walk", "steady"), |b| {
        b.iter(|| {
            walk.skip_reference(window as u64);
            walk.processed()
        })
    });

    // Cold state: every iteration advances a freshly warmed instance, so
    // both sides also pay the wholesale drain of the live overflow state
    // (iter_batched keeps the clone out of the measurement).
    let warmed = warm_memento(counters, window);
    group.bench_function(BenchmarkId::new("closed_form", "cold"), |b| {
        b.iter_batched(
            || warmed.clone(),
            |mut m| {
                m.skip(window as u64);
                m.processed()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::new("pr3_walk", "cold"), |b| {
        b.iter_batched(
            || warmed.clone(),
            |mut m| {
                m.skip_reference(window as u64);
                m.processed()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_exact_window_skip(c: &mut Criterion) {
    let window = 100_000;

    let mut group = c.benchmark_group("skip_w/exact_window");
    group.throughput(Throughput::Elements(window as u64));
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // skip(W) on a full ring: the closed form clears the ring and the
    // count table wholesale; the reference walk pops all W slots with a
    // hash-table decrement each.
    let full = full_exact_window(window);
    group.bench_function(BenchmarkId::new("closed_form", "full_ring"), |b| {
        b.iter_batched(
            || full.clone(),
            |mut w| {
                w.skip(window as u64);
                w.processed()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::new("pr3_walk", "full_ring"), |b| {
        b.iter_batched(
            || full.clone(),
            |mut w| {
                w.skip_reference(window as u64);
                w.processed()
            },
            criterion::BatchSize::SmallInput,
        )
    });

    // Partial advance (W/4): range eviction via binary search + prefix
    // drain vs the per-slot pop walk over the same quarter of the ring.
    group.bench_function(BenchmarkId::new("closed_form", "quarter"), |b| {
        b.iter_batched(
            || full.clone(),
            |mut w| {
                w.skip(window as u64 / 4);
                w.processed()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function(BenchmarkId::new("pr3_walk", "quarter"), |b| {
        b.iter_batched(
            || full.clone(),
            |mut w| {
                w.skip_reference(window as u64 / 4);
                w.processed()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_memento_skip, bench_exact_window_skip);
criterion_main!(benches);
