//! The batched-update fast path: `Memento::update_batch` (geometric skip
//! sampling of Full updates, §5's τ-sampling hot path) vs the per-packet
//! `update` loop (one random-table coin flip per packet).
//!
//! The acceptance bar for the batched path is ≥ 1.5× the per-packet loop at
//! τ = 1/64. Run with `cargo bench -p memento-bench --bench batch_speed`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use memento_bench::make_trace;
use memento_core::traits::SlidingWindowEstimator;
use memento_core::Memento;
use memento_traces::TracePreset;

fn bench_batch_speed(c: &mut Criterion) {
    let packets = 200_000;
    let trace = make_trace(&TracePreset::backbone(), packets, 4);
    let flows: Vec<u64> = trace.iter().map(|p| p.flow()).collect();
    let window = 100_000;
    let counters = 512;

    let mut group = c.benchmark_group("batch_update/backbone");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for i in [4i32, 6, 8] {
        let tau = 2f64.powi(-i);
        group.bench_function(BenchmarkId::new("per_packet", format!("tau_2^-{i}")), |b| {
            b.iter(|| {
                let mut memento = Memento::new(counters, window, tau, 7);
                for &flow in &flows {
                    memento.update(flow);
                }
                memento.processed()
            })
        });
        group.bench_function(BenchmarkId::new("batched", format!("tau_2^-{i}")), |b| {
            b.iter(|| {
                let mut memento = Memento::new(counters, window, tau, 7);
                memento.update_batch(&flows);
                memento.processed()
            })
        });
        // The trait object path used by generic consumers: same batch fast
        // path, one virtual call per batch instead of one per packet.
        group.bench_function(
            BenchmarkId::new("batched_dyn", format!("tau_2^-{i}")),
            |b| {
                b.iter(|| {
                    let mut memento: Box<dyn SlidingWindowEstimator<u64>> =
                        Box::new(Memento::new(counters, window, tau, 7));
                    memento.update_batch(&flows);
                    memento.space_bytes()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_speed);
criterion_main!(benches);
