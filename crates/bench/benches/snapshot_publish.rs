//! Freeze-and-merge cost of the snapshot query plane: full rebuilds (PR 7)
//! vs incremental delta publication (PR 8).
//!
//! One publication under the PR 7 plane cost `O(k)` per shard regardless
//! of what changed: `freeze` walked every tracked key into a fresh
//! `FrozenWindow` (Vec + HashMap index + sort). The PR 8 plane freezes a
//! [`WindowPatch`] covering only the slots dirtied since the previous
//! freeze and folds it onto a persistent [`DeltaWindow`], so publication
//! cost tracks the *churn*, not the summary size.
//!
//! Each `dirty_*` row performs the same work between measurements — touch
//! `fraction × k` distinct monitored keys — and then pays its plane's
//! publication cost:
//!
//! * `full_freeze_*` — `WindowQuery::freeze()`: the PR 7 unit of work;
//! * `delta_freeze_*` — `freeze_delta()` + `DeltaWindow::apply` + the O(1)
//!   structural-sharing clone a publication retains: the PR 8 unit.
//!
//! Swept over k ∈ {1k, 4k, 16k} counters at 1%, 10% and 100% dirty. The
//! honest crossover (where the patch covers so much of the summary that a
//! rebuild is cheaper) is recorded in `crates/bench/EXPERIMENTS.md` §PR 8.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use memento_core::{DeltaWindow, Wcss, WindowQuery};

/// Counter budgets swept (the gate's 4_096 in the middle).
const COUNTERS: [usize; 3] = [1_024, 4_096, 16_384];

/// Fractions of the counter budget touched between publications.
const DIRTY: [(f64, &str); 3] = [(0.01, "1pct"), (0.10, "10pct"), (1.0, "100pct")];

/// A deterministic WCSS (τ = 1) with `k` counters, warmed until all `k`
/// summary slots are populated and the window is in steady state.
fn warmed(k: usize) -> Wcss<u64> {
    let mut est = Wcss::new(k, 8 * k);
    // 4× the counter budget of distinct keys: the summary churns through
    // its slots and the overflow table holds real entries. Deliberately
    // 1.75 windows of warmup — ending mid-frame, NOT at a frame boundary,
    // so the summary is full when measurement starts (a frame boundary
    // flushes it, which would make the "full" freeze artificially cheap).
    let warm = 8 * k + 6 * k;
    let keys: Vec<u64> = (0..warm as u64).map(|i| (i * i) % (4 * k as u64)).collect();
    est.as_memento_mut().update_batch(&keys);
    est
}

/// The keys touched between two publications: `n` *distinct* flows drawn
/// from the hot half of the universe, so they hit monitored summary slots
/// (marking them dirty) rather than churning through eviction.
fn touch_set(k: usize, fraction: f64) -> Vec<u64> {
    let n = ((k as f64 * fraction) as usize).max(1);
    (0..n as u64).map(|i| (i * 2) % (2 * k as u64)).collect()
}

fn bench_snapshot_publish(c: &mut Criterion) {
    let mut group = c.benchmark_group("snapshot_publish");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    for k in COUNTERS {
        for (fraction, label) in DIRTY {
            let touches = touch_set(k, fraction);
            group.throughput(Throughput::Elements(touches.len() as u64));

            // PR 7 unit: touch, then rebuild the frozen summary from
            // scratch — O(k) no matter how little changed.
            group.bench_function(format!("full_freeze_k{k}_dirty_{label}"), |b| {
                let mut est = warmed(k);
                b.iter(|| {
                    est.as_memento_mut().update_batch(&touches);
                    est.freeze().tracked()
                })
            });

            // PR 8 unit: touch, then freeze only the dirtied slots and
            // fold the patch onto the persistent merged view. The clone
            // models what a publication retains in the double buffer.
            group.bench_function(format!("delta_freeze_k{k}_dirty_{label}"), |b| {
                let mut est = warmed(k);
                let mut view: DeltaWindow<u64> = DeltaWindow::empty(WindowQuery::name(&est));
                view.apply(&est.freeze_delta());
                b.iter(|| {
                    est.as_memento_mut().update_batch(&touches);
                    view.apply(&est.freeze_delta());
                    let snapshot = view.clone();
                    snapshot.tracked()
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_snapshot_publish);
criterion_main!(benches);
