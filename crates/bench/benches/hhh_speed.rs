//! Figure 6: H-Memento vs the window-MST "Baseline" — hierarchical
//! heavy-hitter update speed on sliding windows, 1D (H = 5) and 2D (H = 25).
//!
//! The Baseline performs `H` Full window updates per packet; H-Memento
//! performs at most one. Run with `cargo bench -p memento-bench --bench
//! hhh_speed`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use memento_baselines::WindowMst;
use memento_bench::make_trace;
use memento_core::HMemento;
use memento_hierarchy::{SrcDstHierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn bench_hhh_speed(c: &mut Criterion) {
    let packets = 50_000;
    let trace = make_trace(&TracePreset::backbone(), packets, 2);
    let window = 25_000;
    let counters_per_level = 512;

    let mut group = c.benchmark_group("fig6_hhh_speed");
    group.throughput(Throughput::Elements(packets as u64));
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));

    // --- 1D source hierarchy (H = 5) -------------------------------------
    for i in [0i32, 4, 8] {
        // The paper keeps the effective per-prefix rate at >= 2^-10.
        let tau = (5.0 * 2f64.powi(-10)).max(2f64.powi(-i)).min(1.0);
        group.bench_function(
            BenchmarkId::new("1d/h_memento", format!("tau_2^-{i}")),
            |b| {
                b.iter(|| {
                    let mut hm =
                        HMemento::new(SrcHierarchy, 5 * counters_per_level, window, tau, 0.01, 3);
                    for pkt in &trace {
                        hm.update(pkt.src);
                    }
                    hm.processed()
                })
            },
        );
    }
    group.bench_function(BenchmarkId::new("1d/baseline_window_mst", "full"), |b| {
        b.iter(|| {
            let mut baseline = WindowMst::new(SrcHierarchy, counters_per_level, window);
            for pkt in &trace {
                baseline.update(pkt.src);
            }
            baseline.counters()
        })
    });

    // --- 2D source x destination hierarchy (H = 25) ----------------------
    for i in [0i32, 4, 8] {
        let tau = (25.0 * 2f64.powi(-10)).max(2f64.powi(-i)).min(1.0);
        group.bench_function(
            BenchmarkId::new("2d/h_memento", format!("tau_2^-{i}")),
            |b| {
                b.iter(|| {
                    let mut hm = HMemento::new(
                        SrcDstHierarchy,
                        25 * counters_per_level,
                        window,
                        tau,
                        0.01,
                        3,
                    );
                    for pkt in &trace {
                        hm.update(pkt.src_dst());
                    }
                    hm.processed()
                })
            },
        );
    }
    group.bench_function(BenchmarkId::new("2d/baseline_window_mst", "full"), |b| {
        b.iter(|| {
            let mut baseline = WindowMst::new(SrcDstHierarchy, counters_per_level, window);
            for pkt in &trace {
                baseline.update(pkt.src_dst());
            }
            baseline.counters()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_hhh_speed);
criterion_main!(benches);
