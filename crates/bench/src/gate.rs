//! The machine-readable performance-gate schema and comparator.
//!
//! The `perf_gate` binary measures throughput (million packets per second)
//! and on-arrival accuracy for a matrix of algorithm × shard-count
//! configurations, writes the result as `BENCH_pr.json`, and compares it
//! against a committed baseline: CI fails when a row's throughput regresses
//! beyond a noise tolerance. This module holds everything testable about
//! that pipeline — the report model, a small self-contained JSON
//! reader/writer (the workspace's vendored `serde` stand-in has no JSON
//! backend), and the comparator — so the binary is just measurement code.

use std::collections::HashMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Minimal JSON value, writer and parser.
// ---------------------------------------------------------------------------

/// A JSON value. Numbers are kept as `f64` (the schema only carries
/// measurements and small integers, well inside `f64`'s exact range).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved (stable diffs).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline
    /// (diff-friendly for a committed baseline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    item.render_into(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(depth + 1));
                    Json::Str(key.clone()).render_into(out, depth + 1);
                    out.push_str(": ");
                    value.render_into(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset this schema uses: no `\u` escapes
    /// beyond BMP code points, numbers as `f64`).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing input at byte {}", parser.pos));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "non-utf8 escape")?,
                                16,
                            )
                            .map_err(|_| "invalid \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or("non-BMP \\u escape")?);
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_string())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The perf-gate report schema.
// ---------------------------------------------------------------------------

/// Schema version stamped into every report; bump on breaking changes.
///
/// v2 (global-position sharded windows): rows carry a `workload` name for
/// their accuracy measurement, `counters` means *per-shard* counters, and
/// the gate enforces [`check_rmse_blowup`] — sharded on-arrival RMSE must
/// stay within a small factor of the single-shard reference on the skewed
/// workload.
pub const GATE_SCHEMA_VERSION: u64 = 2;

/// One measured configuration: an algorithm at a shard count.
#[derive(Debug, Clone, PartialEq)]
pub struct GateRow {
    /// Stable algorithm name (`SlidingWindowEstimator::name`).
    pub algorithm: String,
    /// Number of shards (1 = the single-threaded estimator itself).
    pub shards: usize,
    /// Full-update probability τ of the configuration.
    pub tau: f64,
    /// Space-Saving counters per shard (every shard keeps a full
    /// global-position window, so counters do not split across shards).
    pub counters: usize,
    /// Name of the trace workload this row's accuracy was measured on
    /// (skewed Zipf presets exercise the sharded-window positioning).
    pub workload: String,
    /// Update throughput in million packets per second (best of the
    /// measured passes).
    pub mpps: f64,
    /// On-arrival RMSE against an exact sliding window, in packets
    /// (`None` for rows where accuracy is not measured).
    pub on_arrival_rmse: Option<f64>,
}

/// A full perf-gate report (`BENCH_pr.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// Schema version ([`GATE_SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// `laptop` or `full` (paper scale).
    pub mode: String,
    /// Synthetic trace preset name.
    pub trace_preset: String,
    /// Packets in the throughput trace.
    pub packets: usize,
    /// Sliding-window size `W` in packets.
    pub window: usize,
    /// Single-core speed of the fixed [`calibration_mops`] integer workload
    /// on the measuring machine, in million operations per second. The
    /// comparator uses the baseline/current ratio to normalize away machine
    /// speed, so a baseline recorded on one box remains meaningful on a
    /// slower or faster CI runner.
    pub calibration_mops: f64,
    /// The measured configurations.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// Serializes the report to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                let mut members = vec![
                    ("algorithm".to_string(), Json::Str(r.algorithm.clone())),
                    ("shards".to_string(), Json::Num(r.shards as f64)),
                    ("tau".to_string(), Json::Num(r.tau)),
                    ("counters".to_string(), Json::Num(r.counters as f64)),
                    ("workload".to_string(), Json::Str(r.workload.clone())),
                    ("mpps".to_string(), Json::Num(round_sig(r.mpps))),
                ];
                members.push((
                    "on_arrival_rmse".to_string(),
                    match r.on_arrival_rmse {
                        Some(v) => Json::Num(round_sig(v)),
                        None => Json::Null,
                    },
                ));
                Json::Obj(members)
            })
            .collect();
        Json::Obj(vec![
            (
                "schema_version".to_string(),
                Json::Num(self.schema_version as f64),
            ),
            ("mode".to_string(), Json::Str(self.mode.clone())),
            (
                "trace_preset".to_string(),
                Json::Str(self.trace_preset.clone()),
            ),
            ("packets".to_string(), Json::Num(self.packets as f64)),
            ("window".to_string(), Json::Num(self.window as f64)),
            (
                "calibration_mops".to_string(),
                Json::Num(round_sig(self.calibration_mops)),
            ),
            ("results".to_string(), Json::Arr(rows)),
        ])
        .render()
    }

    /// Parses a report from JSON, validating the schema version.
    pub fn from_json(text: &str) -> Result<GateReport, String> {
        let value = Json::parse(text)?;
        let schema_version = value
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or("missing schema_version")? as u64;
        if schema_version != GATE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (expected {GATE_SCHEMA_VERSION})"
            ));
        }
        let string_field = |key: &str| -> Result<String, String> {
            Ok(value
                .get(key)
                .and_then(Json::as_str)
                .ok_or(format!("missing {key}"))?
                .to_string())
        };
        let num_field = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or(format!("missing {key}"))
        };
        let mut rows = Vec::new();
        for row in value
            .get("results")
            .and_then(Json::as_arr)
            .ok_or("missing results array")?
        {
            rows.push(GateRow {
                algorithm: row
                    .get("algorithm")
                    .and_then(Json::as_str)
                    .ok_or("row missing algorithm")?
                    .to_string(),
                shards: row
                    .get("shards")
                    .and_then(Json::as_f64)
                    .ok_or("row missing shards")? as usize,
                tau: row
                    .get("tau")
                    .and_then(Json::as_f64)
                    .ok_or("row missing tau")?,
                counters: row
                    .get("counters")
                    .and_then(Json::as_f64)
                    .ok_or("row missing counters")? as usize,
                workload: row
                    .get("workload")
                    .and_then(Json::as_str)
                    .ok_or("row missing workload")?
                    .to_string(),
                mpps: row
                    .get("mpps")
                    .and_then(Json::as_f64)
                    .ok_or("row missing mpps")?,
                on_arrival_rmse: row.get("on_arrival_rmse").and_then(Json::as_f64),
            });
        }
        Ok(GateReport {
            schema_version,
            mode: string_field("mode")?,
            trace_preset: string_field("trace_preset")?,
            packets: num_field("packets")? as usize,
            window: num_field("window")? as usize,
            calibration_mops: num_field("calibration_mops")?,
            rows,
        })
    }

    /// The row for an (algorithm, shards) configuration, if measured.
    pub fn row(&self, algorithm: &str, shards: usize) -> Option<&GateRow> {
        self.rows
            .iter()
            .find(|r| r.algorithm == algorithm && r.shards == shards)
    }
}

/// Rounds to six significant-ish decimal digits so reports and baselines
/// stay diff-friendly.
fn round_sig(v: f64) -> f64 {
    (v * 1e6).round() / 1e6
}

/// Measures the fixed single-core integer calibration workload, in million
/// operations per second. It is a SplitMix64 chain — data-independent
/// integer multiplies, shifts and xors, the same instruction mix that
/// dominates the estimators' hot paths — so its speed tracks how fast the
/// measuring machine runs *our kind* of code, and the ratio of two
/// machines' calibration speeds is a usable cross-machine normalizer for
/// the throughput rows.
///
/// The reported figure is the *median of three* runs. The calibration
/// number divides every baseline comparison, so a single run perturbed by
/// a scheduler hiccup or a frequency transition skews the whole gate; the
/// median discards one outlier in either direction while staying cheap
/// enough to run unconditionally.
pub fn calibration_mops() -> f64 {
    let mut runs = [calibration_run(), calibration_run(), calibration_run()];
    runs.sort_by(|a, b| a.partial_cmp(b).expect("calibration runs are finite"));
    runs[1]
}

/// One pass of the calibration workload (see [`calibration_mops`]).
fn calibration_run() -> f64 {
    const OPS: u64 = 1 << 26;
    let start = std::time::Instant::now();
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut acc = 0u64;
    for _ in 0..OPS {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        acc = acc.wrapping_add(z ^ (z >> 31));
    }
    let elapsed = start.elapsed().as_secs_f64();
    // The accumulator must stay observable or the loop folds away.
    assert_ne!(acc, 1);
    OPS as f64 / elapsed / 1e6
}

/// Compares a fresh report against the committed baseline: every baseline
/// row must be present and its throughput must not regress by more than
/// `tolerance` (a fraction, e.g. `0.30`) after normalizing for machine
/// speed via the reports' calibration measurements. New rows absent from
/// the baseline are allowed (they become binding once the baseline is
/// refreshed). Returns the list of violations (empty = gate passes).
pub fn compare_throughput(
    current: &GateReport,
    baseline: &GateReport,
    tolerance: f64,
) -> Vec<String> {
    assert!(
        (0.0..1.0).contains(&tolerance),
        "tolerance must be a fraction in [0,1)"
    );
    // How many times faster the baseline machine is than this one; scale the
    // baseline's expectations down (or up) accordingly.
    let machine_ratio = if current.calibration_mops > 0.0 && baseline.calibration_mops > 0.0 {
        baseline.calibration_mops / current.calibration_mops
    } else {
        1.0
    };
    let mut violations = Vec::new();
    let current_rows: HashMap<(&str, usize), &GateRow> = current
        .rows
        .iter()
        .map(|r| ((r.algorithm.as_str(), r.shards), r))
        .collect();
    for expected in &baseline.rows {
        match current_rows.get(&(expected.algorithm.as_str(), expected.shards)) {
            None => violations.push(format!(
                "missing configuration {}@{} shards (present in baseline)",
                expected.algorithm, expected.shards
            )),
            Some(row) => {
                let floor = expected.mpps / machine_ratio * (1.0 - tolerance);
                if row.mpps < floor {
                    violations.push(format!(
                        "{}@{} shards regressed: {:.2} mpps < {:.2} mpps floor \
                         (baseline {:.2} mpps on a {:.2}x machine − {:.0}% tolerance)",
                        row.algorithm,
                        row.shards,
                        row.mpps,
                        floor,
                        expected.mpps,
                        machine_ratio,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    violations
}

/// The schema-v2 accuracy rule: on every workload where both were
/// measured, a sharded configuration's on-arrival RMSE must stay within
/// `max_ratio` of its single-threaded reference (`sharded-memento@N` vs
/// `memento@1`, `sharded-wcss@N` vs `wcss@1`, …). This is the regression
/// the global-position windows exist to prevent: count-based `W/N` shard
/// windows under-covered skewed workloads and blew the sharded RMSE up by
/// ~27× at 4 shards. A small absolute slack (half the reference RMSE,
/// at least 5 packets) absorbs measurement noise on near-zero references.
/// Returns the violations (empty = rule passes).
pub fn check_rmse_blowup(report: &GateReport, max_ratio: f64) -> Vec<String> {
    assert!(max_ratio >= 1.0, "max_ratio must be at least 1");
    let mut violations = Vec::new();
    for row in &report.rows {
        let Some(single_name) = row.algorithm.strip_prefix("sharded-") else {
            continue;
        };
        let Some(rmse) = row.on_arrival_rmse else {
            continue;
        };
        let reference = report.rows.iter().find(|r| {
            r.algorithm == single_name
                && r.shards == 1
                && r.workload == row.workload
                && r.on_arrival_rmse.is_some()
        });
        let Some(reference) = reference else { continue };
        let base = reference.on_arrival_rmse.expect("filtered above");
        let ceiling = base * max_ratio + (base * 0.5).max(5.0);
        if rmse > ceiling {
            violations.push(format!(
                "{}@{} shards on-arrival RMSE blew up on the {} workload: {:.1} > {:.1} \
                 ({:.1}x the single-shard {} RMSE of {:.1}, limit {:.1}x)",
                row.algorithm,
                row.shards,
                row.workload,
                rmse,
                ceiling,
                rmse / base.max(1e-9),
                single_name,
                base,
                max_ratio
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(rows: Vec<GateRow>) -> GateReport {
        GateReport {
            schema_version: GATE_SCHEMA_VERSION,
            mode: "laptop".to_string(),
            trace_preset: "datacenter".to_string(),
            packets: 1_000_000,
            window: 100_000,
            calibration_mops: 800.0,
            rows,
        }
    }

    fn row(algorithm: &str, shards: usize, mpps: f64) -> GateRow {
        GateRow {
            algorithm: algorithm.to_string(),
            shards,
            tau: 0.25,
            counters: 4096,
            workload: "datacenter".to_string(),
            mpps,
            on_arrival_rmse: Some(12.5),
        }
    }

    fn rmse_row(algorithm: &str, shards: usize, rmse: Option<f64>) -> GateRow {
        GateRow {
            on_arrival_rmse: rmse,
            ..row(algorithm, shards, 10.0)
        }
    }

    #[test]
    fn json_roundtrip_preserves_the_report() {
        let original = report(vec![
            row("memento", 1, 18.25),
            row("sharded-memento", 4, 55.0),
        ]);
        let text = original.to_json();
        let parsed = GateReport::from_json(&text).unwrap();
        assert_eq!(parsed, original);
        // Lookups work on the parsed form.
        assert_eq!(parsed.row("memento", 1).unwrap().mpps, 18.25);
        assert!(parsed.row("memento", 2).is_none());
    }

    #[test]
    fn json_parser_handles_the_usual_shapes() {
        let v = Json::parse(
            r#"{"a": [1, -2.5, 1e3], "b": {"nested": true}, "s": "q\"\\\né", "n": null}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(1000.0));
        assert_eq!(v.get("b").unwrap().get("nested"), Some(&Json::Bool(true)));
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "q\"\\\né");
        assert_eq!(v.get("n"), Some(&Json::Null));
        assert!(Json::parse("{\"unterminated\": ").is_err());
        assert!(Json::parse("[1,2] trailing").is_err());
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut bad = report(vec![]);
        bad.schema_version = 999;
        assert!(GateReport::from_json(&bad.to_json())
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn comparator_accepts_within_tolerance() {
        let baseline = report(vec![row("memento", 1, 20.0)]);
        let current = report(vec![row("memento", 1, 15.0)]); // −25% < 30%
        assert!(compare_throughput(&current, &baseline, 0.30).is_empty());
    }

    #[test]
    fn comparator_flags_regressions_and_missing_rows() {
        let baseline = report(vec![
            row("memento", 1, 20.0),
            row("sharded-memento", 4, 60.0),
        ]);
        let current = report(vec![row("memento", 1, 10.0)]); // −50% and one row gone
        let violations = compare_throughput(&current, &baseline, 0.30);
        assert_eq!(violations.len(), 2);
        assert!(violations.iter().any(|v| v.contains("regressed")));
        assert!(violations
            .iter()
            .any(|v| v.contains("missing configuration")));
    }

    #[test]
    fn comparator_ignores_rows_new_in_current() {
        let baseline = report(vec![row("memento", 1, 20.0)]);
        let current = report(vec![row("memento", 1, 20.0), row("wcss", 1, 5.0)]);
        assert!(compare_throughput(&current, &baseline, 0.30).is_empty());
    }

    #[test]
    fn comparator_normalizes_for_machine_speed() {
        let baseline = report(vec![row("memento", 1, 20.0)]);
        // The current machine calibrates at half the baseline machine's
        // speed, so 11 mpps is within 30% of the scaled 10-mpps expectation…
        let mut current = report(vec![row("memento", 1, 11.0)]);
        current.calibration_mops = 400.0;
        assert!(compare_throughput(&current, &baseline, 0.30).is_empty());
        // …while 6.9 mpps (−31% of 10) is not.
        current.rows[0].mpps = 6.9;
        assert_eq!(compare_throughput(&current, &baseline, 0.30).len(), 1);
    }

    #[test]
    fn rmse_blowup_rule_flags_sharded_regressions_only() {
        // The PR-2 failure mode: single-shard RMSE ~123, 4-shard ~3308.
        let bad = report(vec![
            rmse_row("memento", 1, Some(123.0)),
            rmse_row("sharded-memento", 1, Some(123.0)),
            rmse_row("sharded-memento", 4, Some(3308.0)),
        ]);
        let violations = check_rmse_blowup(&bad, 2.0);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert!(violations[0].contains("sharded-memento@4"));
        assert!(violations[0].contains("blew up"));

        // Global-position windows: sharded RMSE tracks the single-shard
        // reference (within the ratio + noise slack).
        let good = report(vec![
            rmse_row("memento", 1, Some(123.0)),
            rmse_row("sharded-memento", 2, Some(140.0)),
            rmse_row("sharded-memento", 4, Some(180.0)),
            rmse_row("wcss", 1, Some(47.0)),
            rmse_row("sharded-wcss", 4, Some(60.0)),
        ]);
        assert!(check_rmse_blowup(&good, 2.0).is_empty());
    }

    #[test]
    fn rmse_blowup_rule_skips_unmatched_rows() {
        // No single-shard reference, a missing RMSE, and a different
        // workload are all ignored rather than failed.
        let mut other_workload = rmse_row("memento", 1, Some(1.0));
        other_workload.workload = "backbone".to_string();
        let report = report(vec![
            rmse_row("sharded-memento", 4, Some(10_000.0)),
            rmse_row("sharded-wcss", 4, None),
            other_workload,
        ]);
        assert!(check_rmse_blowup(&report, 2.0).is_empty());
    }

    #[test]
    fn rmse_blowup_slack_tolerates_tiny_references() {
        // A near-zero reference must not fail on a few packets of noise.
        let report = report(vec![
            rmse_row("wcss", 1, Some(0.5)),
            rmse_row("sharded-wcss", 4, Some(4.0)), // 8x, but within +5 slack
        ]);
        assert!(check_rmse_blowup(&report, 2.0).is_empty());
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let mops = calibration_mops();
        assert!(mops.is_finite() && mops > 0.0);
    }
}
