//! Figure 7 — H-Memento (sliding window) vs RHHH (interval) update speed on
//! the backbone trace, 1D (H=5) and 2D (H=25).
//!
//! Output: CSV of million packets per second per (dimension, algorithm, τ).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig07_vs_rhhh [--full]
//! ```

use memento_baselines::Rhhh;
use memento_bench::{csv_header, csv_row, make_trace, measure_mpps, scaled};
use memento_core::HMemento;
use memento_hierarchy::{Hierarchy, SrcDstHierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn run_dim<Hi: Hierarchy>(
    hier: Hi,
    packets: usize,
    window: usize,
    counters_per_level: usize,
    to_item: impl Fn(&memento_traces::Packet) -> Hi::Item,
) where
    Hi::Prefix: std::hash::Hash,
{
    let trace = make_trace(&TracePreset::backbone(), packets, 19);
    let h = hier.h();
    let dim = if hier.dimensions() == 1 { "1d" } else { "2d" };
    for i in 0..=10 {
        let tau = 2f64.powi(-i);
        let mut hm = HMemento::new(hier.clone(), h * counters_per_level, window, tau, 0.01, 3);
        let hm_mpps = measure_mpps(packets, || {
            for pkt in &trace {
                hm.update(to_item(pkt));
            }
        });
        let mut rhhh = Rhhh::new(hier.clone(), counters_per_level, tau, 0.01, 3);
        let rhhh_mpps = measure_mpps(packets, || {
            for pkt in &trace {
                rhhh.update(to_item(pkt));
            }
        });
        csv_row(&[
            dim.to_string(),
            "h_memento".to_string(),
            format!("{tau:.6}"),
            format!("{hm_mpps:.2}"),
        ]);
        csv_row(&[
            dim.to_string(),
            "rhhh".to_string(),
            format!("{tau:.6}"),
            format!("{rhhh_mpps:.2}"),
        ]);
    }
}

fn main() {
    let packets = scaled(200_000, 8_000_000);
    let window = scaled(80_000, 1_000_000);
    let counters_per_level = 512;
    eprintln!("# Figure 7: H-Memento vs RHHH, backbone trace, N={packets}, W={window}");
    csv_header(&["dimension", "algorithm", "tau", "mpps"]);
    run_dim(SrcHierarchy, packets, window, counters_per_level, |p| p.src);
    run_dim(SrcDstHierarchy, packets, window, counters_per_level, |p| {
        p.src_dst()
    });
}
