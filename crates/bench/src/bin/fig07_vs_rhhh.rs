//! Figure 7 — H-Memento (sliding window) vs RHHH (interval) update speed on
//! the backbone trace, 1D (H=5) and 2D (H=25).
//!
//! Both algorithms run behind the generic [`measure_hhh_mpps`] driver.
//! Output: CSV of million packets per second per (dimension, algorithm, τ).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig07_vs_rhhh [--full]
//! ```

use memento_baselines::Rhhh;
use memento_bench::{csv_header, csv_row, make_trace, measure_hhh_mpps, scaled};
use memento_core::traits::HhhAlgorithm;
use memento_core::HMemento;
use memento_hierarchy::{Hierarchy, SrcDstHierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn run_dim<Hi: Hierarchy + 'static>(
    hier: Hi,
    packets: usize,
    window: usize,
    counters_per_level: usize,
    to_item: impl Fn(&memento_traces::Packet) -> Hi::Item,
) where
    Hi::Prefix: std::hash::Hash,
{
    let items: Vec<Hi::Item> = make_trace(&TracePreset::backbone(), packets, 19)
        .iter()
        .map(&to_item)
        .collect();
    let h = hier.h();
    let dim = if hier.dimensions() == 1 { "1d" } else { "2d" };
    for i in 0..=10 {
        let tau = 2f64.powi(-i);
        let mut hm = HMemento::new(hier.clone(), h * counters_per_level, window, tau, 0.01, 3);
        let mut rhhh = Rhhh::new(hier.clone(), counters_per_level, tau, 0.01, 3);
        let contenders: [&mut dyn HhhAlgorithm<Hi>; 2] = [&mut hm, &mut rhhh];
        for alg in contenders {
            let mpps = measure_hhh_mpps(alg, &items);
            csv_row(&[
                dim.to_string(),
                alg.name().to_string(),
                format!("{tau:.6}"),
                format!("{mpps:.2}"),
            ]);
        }
    }
}

fn main() {
    let packets = scaled(200_000, 8_000_000);
    let window = scaled(80_000, 1_000_000);
    let counters_per_level = 512;
    eprintln!("# Figure 7: H-Memento vs RHHH, backbone trace, N={packets}, W={window}");
    csv_header(&["dimension", "algorithm", "tau", "mpps"]);
    run_dim(SrcHierarchy, packets, window, counters_per_level, |p| p.src);
    run_dim(SrcDstHierarchy, packets, window, counters_per_level, |p| {
        p.src_dst()
    });
}
