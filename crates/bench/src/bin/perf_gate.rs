//! The CI performance gate: a deterministic, laptop-scale throughput and
//! accuracy smoke harness.
//!
//! Measures update throughput (million packets per second) and on-arrival
//! RMSE for a matrix of algorithm × shard-count configurations on a
//! synthetic Zipf trace — including the `publish-heavy` row, which pins the
//! snapshot-publication cadence to every shipped batch to bound the cost of
//! the delta publication plane — writes the result as machine-readable JSON
//! (`BENCH_pr.json`, schema in `memento_bench::gate`), and fails when
//!
//! * a configuration's throughput regressed beyond the noise tolerance
//!   against the committed baseline,
//! * the sharded engine no longer scales (the 4-shard Memento falls below
//!   2× the single-core throughput, checked only when the host has ≥ 4
//!   cores so CI containers with tiny CPU quotas don't flap), or
//! * sharded accuracy blows up on the skewed workload (schema v2): a
//!   sharded configuration's on-arrival RMSE exceeding 2× its single-shard
//!   reference means the global-position windows regressed to the old
//!   `W/N` under-coverage failure mode, or
//! * a replay row — the trace replayed *at recorded timestamps* through the
//!   grain-mapped `TimedWindow<Memento>`, on two arrival clocks: the
//!   `bursty-replay` worst case (idle-gap floods, then a diurnal rotation)
//!   and the `dense-replay` steady state (uniform at-rate arrivals, zero
//!   wholesale clears — the regime PR 10's chunked `record_timed` hoist
//!   targets) — drifts beyond its bound against the exact time-window
//!   oracle (grain-quantization reference + sketch error headroom).
//!
//! The machine-speed calibration figure that normalizes baseline
//! comparisons is the median of three runs of the fixed integer workload.
//!
//! When `GITHUB_STEP_SUMMARY` is set (GitHub Actions), the gate verdict is
//! also appended there as markdown.
//!
//! Usage: `perf_gate [--full] [--write-baseline] [--output PATH]
//! [--baseline PATH]`. Environment: `PERF_GATE_TOLERANCE` (fractional
//! regression tolerance, default 0.30), `PERF_GATE_SKIP_BASELINE=1`,
//! `PERF_GATE_SKIP_SPEEDUP=1`. Refresh the baseline on a quiet machine with
//! `cargo run --release --bin perf_gate -- --write-baseline`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use memento_bench::gate::{
    calibration_mops, check_rmse_blowup, compare_throughput, GateReport, GateRow,
    GATE_SCHEMA_VERSION,
};
use memento_bench::{
    full_scale, make_trace, measure_mpps, on_arrival_rmse, on_arrival_rmse_timed, scaled,
    stamp_bursty_then_diurnal,
};
use memento_core::traits::SlidingWindowEstimator;
use memento_core::{Memento, TimedWindow, Wcss, WindowQuery};
use memento_shard::{PublishPolicy, ShardedEstimator};
use memento_sketches::ExactWindow;
use memento_traces::{ArrivalModel, Packet, TracePreset};

/// Packet-burst size fed to `update_batch` (a NIC-burst-like unit, same for
/// every configuration so the comparison is fair).
const CHUNK: usize = 4_096;

/// Throughput passes per configuration; the best pass is reported (the
/// usual best-of-N discipline for wall-clock microbenchmarks).
const PASSES: usize = 3;

/// Shard counts measured for the sharded engine.
const SHARD_SWEEP: [usize; 3] = [1, 2, 4];

/// Maximum sharded-vs-single on-arrival RMSE ratio on the skewed workload
/// (the schema-v2 accuracy rule): global-position windows keep sharded
/// accuracy at the single-shard level, so 2× is generous headroom — the
/// old count-based `W/N` windows sat at ~27×.
const RMSE_BLOWUP_LIMIT: f64 = 2.0;

/// Grains of the `bursty-replay` row's [`TimedWindow`] — the production
/// default resolution (the load balancer uses 64 as well).
const REPLAY_GRAINS: u64 = 64;

/// Mean inter-arrival gap inside a flood, in nanoseconds. The row's time
/// window is `REPLAY_FLOOD_GAP_NANOS × W` ticks, so a sustained flood
/// arrives at exactly the provisioned positions-per-grain rate — the
/// boundary where the grain schedule is fully loaded but overruns stay
/// within jitter.
const REPLAY_FLOOD_GAP_NANOS: u64 = 100;

struct GateConfig {
    packets: usize,
    window: usize,
    counters: usize,
    tau: f64,
    accuracy_packets: usize,
    probe_every: usize,
    seed: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let write_baseline = args.iter().any(|a| a == "--write-baseline");
    let output_path = flag_value(&args, "--output").unwrap_or_else(|| "BENCH_pr.json".to_string());
    let baseline_path = flag_value(&args, "--baseline")
        .unwrap_or_else(|| "crates/bench/baselines/perf_gate_baseline.json".to_string());

    let full = full_scale();
    let config = GateConfig {
        packets: scaled(1_500_000, 30_000_000),
        window: scaled(100_000, 1_000_000),
        counters: 4_096,
        tau: 0.25,
        accuracy_packets: scaled(300_000, 3_000_000),
        probe_every: 101,
        seed: 2018,
    };

    let preset = TracePreset::datacenter();
    eprintln!(
        "perf_gate: generating {} packets of the {} preset (seed {})...",
        config.packets, preset.name, config.seed
    );
    let packets = make_trace(&preset, config.packets, config.seed);
    let keys: Vec<u64> = packets.iter().map(Packet::flow).collect();
    let accuracy_keys = &keys[..config.accuracy_packets.min(keys.len())];

    let mut rows = Vec::new();

    // Single-core references.
    rows.push(measure_row(
        &config,
        &preset,
        1,
        config.tau,
        &keys,
        accuracy_keys,
        || {
            Box::new(Memento::new(
                config.counters,
                config.window,
                config.tau,
                config.seed,
            ))
        },
    ));
    rows.push(measure_row(
        &config,
        &preset,
        1,
        1.0,
        &keys,
        accuracy_keys,
        || Box::new(Wcss::new(config.counters, config.window)),
    ));

    // The sharded engine across the shard sweep: every shard keeps a full
    // `W` global-position window with the full counter budget, so the
    // sharded rows are directly comparable (same error bound) to the
    // single-core references.
    for &shards in &SHARD_SWEEP {
        rows.push(measure_row(
            &config,
            &preset,
            shards,
            config.tau,
            &keys,
            accuracy_keys,
            || {
                Box::new(ShardedEstimator::memento(
                    shards,
                    config.counters,
                    config.window,
                    config.tau,
                    config.seed,
                ))
            },
        ));
    }
    for &shards in &SHARD_SWEEP[1..] {
        rows.push(measure_row(
            &config,
            &preset,
            shards,
            1.0,
            &keys,
            accuracy_keys,
            || {
                Box::new(ShardedEstimator::wcss(
                    shards,
                    config.counters,
                    config.window,
                ))
            },
        ));
    }

    // The PR 7 query-plane row: the 4-shard Memento ingesting at full tilt
    // while 4 wait-free snapshot readers hammer `estimate` concurrently.
    rows.push(measure_readers_row(&config, &preset, &keys));

    // The PR 8 delta-publication row: the 4-shard Memento publishing a
    // snapshot after *every* shipped batch.
    rows.push(measure_publish_heavy_row(&config, &preset, &keys));

    // The PR 9 time-plane row: the same trace replayed at recorded
    // timestamps (idle-gap floods, then a diurnal rotation) through a
    // grain-mapped `TimedWindow<Memento>`.
    let (replay_row, replay_quant_rmse) = measure_bursty_replay_row(&config, &packets);
    rows.push(replay_row);

    // The PR 10 time-plane row: the same trace at uniform at-rate arrivals
    // — long same-grain runs, zero wholesale clears — through the identical
    // geometry, isolating the chunked `record_timed` steady state.
    let (dense_row, dense_quant_rmse) = measure_dense_replay_row(&config, &packets);
    rows.push(dense_row);

    let calibration = calibration_mops();
    eprintln!("perf_gate: calibration workload: {calibration:.0} mops single-core");

    let report = GateReport {
        schema_version: GATE_SCHEMA_VERSION,
        mode: if full { "full" } else { "laptop" }.to_string(),
        trace_preset: preset.name.to_string(),
        packets: config.packets,
        window: config.window,
        calibration_mops: calibration,
        rows,
    };

    println!("algorithm,shards,tau,mpps,on_arrival_rmse");
    for row in &report.rows {
        println!(
            "{},{},{},{:.3},{}",
            row.algorithm,
            row.shards,
            row.tau,
            row.mpps,
            row.on_arrival_rmse
                .map(|v| format!("{v:.3}"))
                .unwrap_or_else(|| "-".to_string())
        );
    }

    std::fs::write(&output_path, report.to_json())
        .unwrap_or_else(|e| panic!("cannot write {output_path}: {e}"));
    eprintln!("perf_gate: wrote {output_path}");

    let mut failures = Vec::new();
    check_speedup(&report, &mut failures);
    check_reader_overhead(&report, &mut failures);
    check_replay_rmse(&report, "bursty-replay", replay_quant_rmse, &mut failures);
    check_replay_rmse(&report, "dense-replay", dense_quant_rmse, &mut failures);

    // Schema-v2 accuracy rule: sharded on-arrival RMSE must track the
    // single-shard reference on the skewed workload.
    let rmse_violations = check_rmse_blowup(&report, RMSE_BLOWUP_LIMIT);
    if rmse_violations.is_empty() {
        eprintln!(
            "perf_gate: sharded on-arrival RMSE within {RMSE_BLOWUP_LIMIT}x of the \
             single-shard references"
        );
    }
    failures.extend(rmse_violations);

    if write_baseline {
        if let Some(parent) = std::path::Path::new(&baseline_path).parent() {
            std::fs::create_dir_all(parent)
                .unwrap_or_else(|e| panic!("cannot create {}: {e}", parent.display()));
        }
        std::fs::write(&baseline_path, report.to_json())
            .unwrap_or_else(|e| panic!("cannot write {baseline_path}: {e}"));
        eprintln!("perf_gate: refreshed baseline {baseline_path}");
    } else if env_truthy("PERF_GATE_SKIP_BASELINE") {
        eprintln!("perf_gate: baseline comparison skipped (PERF_GATE_SKIP_BASELINE)");
    } else {
        compare_with_baseline(&report, &baseline_path, &mut failures);
    }

    write_step_summary(&report, &failures);
    if failures.is_empty() {
        eprintln!("perf_gate: PASS");
    } else {
        for failure in &failures {
            eprintln!("perf_gate: FAIL: {failure}");
        }
        std::process::exit(1);
    }
}

/// Appends the gate verdict (and the measured matrix) to the GitHub
/// Actions step summary when `GITHUB_STEP_SUMMARY` points at a writable
/// file; silently does nothing elsewhere.
fn write_step_summary(report: &GateReport, failures: &[String]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut md = String::new();
    md.push_str(if failures.is_empty() {
        "## Perf gate: PASS ✅\n\n"
    } else {
        "## Perf gate: FAIL ❌\n\n"
    });
    for failure in failures {
        md.push_str(&format!("- **FAIL** {failure}\n"));
    }
    md.push_str(&format!(
        "\n{} rows, {} mode, {} preset, calibration {:.0} mops\n\n\
         | algorithm | shards | τ | mpps | on-arrival RMSE |\n|---|---|---|---|---|\n",
        report.rows.len(),
        report.mode,
        report.trace_preset,
        report.calibration_mops
    ));
    for row in &report.rows {
        md.push_str(&format!(
            "| {} | {} | {} | {:.2} | {} |\n",
            row.algorithm,
            row.shards,
            row.tau,
            row.mpps,
            row.on_arrival_rmse
                .map(|v| format!("{v:.1}"))
                .unwrap_or_else(|| "—".to_string())
        ));
    }
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, md.as_bytes()))
    {
        eprintln!("perf_gate: could not write step summary {path}: {e}");
    }
}

/// Measures one configuration: best-of-N chunked `update_batch` throughput
/// plus on-arrival RMSE on the accuracy prefix of the trace.
fn measure_row(
    config: &GateConfig,
    preset: &TracePreset,
    shards: usize,
    tau: f64,
    keys: &[u64],
    accuracy_keys: &[u64],
    mut make: impl FnMut() -> Box<dyn SlidingWindowEstimator<u64>>,
) -> GateRow {
    let mut best = 0.0f64;
    let mut name = "";
    for _ in 0..PASSES {
        let mut estimator = make();
        name = estimator.name();
        let mpps = measure_mpps(keys.len(), || {
            for part in keys.chunks(CHUNK) {
                estimator.update_batch(part);
            }
            // Barrier: a sharded engine has in-flight batches until queried;
            // counting them inside the timed region keeps the comparison
            // honest. For single-threaded estimators this is a field read.
            assert_eq!(estimator.processed(), keys.len() as u64);
        });
        best = best.max(mpps);
    }
    let mut estimator = make();
    let rmse = on_arrival_rmse(
        estimator.as_mut(),
        accuracy_keys,
        config.window.min(accuracy_keys.len() / 3),
        config.probe_every,
    );
    eprintln!(
        "perf_gate: {name}@{shards} shards: {best:.2} mpps, on-arrival RMSE {:.2} over {} probes",
        rmse.value(),
        rmse.count()
    );
    GateRow {
        algorithm: name.to_string(),
        shards,
        tau,
        counters: config.counters,
        workload: preset.name.to_string(),
        mpps: best,
        on_arrival_rmse: Some(rmse.value()),
    }
}

/// Measures the `concurrent-readers` row: the 4-shard Memento's ingest
/// throughput while 4 wait-free [`SnapshotReader`] threads spin on
/// `estimate` against the published snapshots. The engine publishes every
/// 16 shipped batches, so the readers chew on a continuously-swapping epoch
/// buffer — the worst case for reader/publisher interference. Because the
/// readers never touch a worker FIFO or a router lock, ingest should be
/// nearly unaffected (the `check_reader_overhead` rule).
///
/// [`SnapshotReader`]: memento_shard::SnapshotReader
fn measure_readers_row(config: &GateConfig, preset: &TracePreset, keys: &[u64]) -> GateRow {
    const READERS: usize = 4;
    let mut best = 0.0f64;
    for _ in 0..PASSES {
        let mut engine =
            ShardedEstimator::memento(4, config.counters, config.window, config.tau, config.seed)
                .with_policy(PublishPolicy {
                    every_batches: 16,
                    on_query: true,
                });
        let reader = engine.reader();
        let stop = Arc::new(AtomicBool::new(false));
        let guards: Vec<_> = (0..READERS)
            .map(|i| {
                let r = reader.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut acc = 0.0f64;
                    let mut key = i as u64;
                    while !stop.load(Ordering::Relaxed) {
                        acc += r.estimate(&key);
                        key = (key + 7) % 4_096;
                    }
                    acc
                })
            })
            .collect();
        let mpps = measure_mpps(keys.len(), || {
            for part in keys.chunks(CHUNK) {
                engine.update_batch(part);
            }
            assert_eq!(engine.processed(), keys.len() as u64);
        });
        stop.store(true, Ordering::Relaxed);
        for g in guards {
            let _ = g.join();
        }
        best = best.max(mpps);
    }
    eprintln!("perf_gate: concurrent-readers@4 shards + {READERS} readers: {best:.2} mpps");
    GateRow {
        algorithm: "concurrent-readers".to_string(),
        shards: 4,
        tau: config.tau,
        counters: config.counters,
        workload: preset.name.to_string(),
        mpps: best,
        on_arrival_rmse: None,
    }
}

/// Measures the `publish-heavy` row: the 4-shard Memento with
/// `every_batches = 1` — a snapshot publication after every shipped batch,
/// the densest cadence the policy supports. Under the PR 7 plane each
/// publication re-froze every shard's entire summary (O(k) per shard);
/// under the PR 8 delta plane it freezes only the slots dirtied since the
/// previous epoch and folds them onto the assembler's persistent views, so
/// this row isolates the cost of the publication machinery itself. The
/// RMSE column runs the same engine configuration through the on-arrival
/// harness, where `on_query` publications exercise the delta-built
/// snapshots' accuracy.
fn measure_publish_heavy_row(config: &GateConfig, preset: &TracePreset, keys: &[u64]) -> GateRow {
    let policy = PublishPolicy {
        every_batches: 1,
        on_query: true,
    };
    let make = || {
        Box::new(
            ShardedEstimator::memento(4, config.counters, config.window, config.tau, config.seed)
                .with_policy(policy),
        )
    };
    let mut best = 0.0f64;
    for _ in 0..PASSES {
        let mut engine = make();
        let mpps = measure_mpps(keys.len(), || {
            for part in keys.chunks(CHUNK) {
                engine.update_batch(part);
            }
            assert_eq!(engine.processed(), keys.len() as u64);
        });
        best = best.max(mpps);
    }
    let mut engine = make();
    let accuracy_keys = &keys[..config.accuracy_packets.min(keys.len())];
    let rmse = on_arrival_rmse(
        engine.as_mut(),
        accuracy_keys,
        config.window.min(accuracy_keys.len() / 3),
        config.probe_every,
    );
    eprintln!(
        "perf_gate: publish-heavy@4 shards (every_batches=1): {best:.2} mpps, \
         on-arrival RMSE {:.2} over {} probes",
        rmse.value(),
        rmse.count()
    );
    GateRow {
        algorithm: "publish-heavy".to_string(),
        shards: 4,
        tau: config.tau,
        counters: config.counters,
        workload: preset.name.to_string(),
        mpps: best,
        on_arrival_rmse: Some(rmse.value()),
    }
}

/// Measures the `bursty-replay` row: the trace replayed *at recorded
/// timestamps* through a grain-mapped `TimedWindow<Memento>`. The arrival
/// clock is the time plane's worst case — idle-gap/flood bursts for the
/// first half (each idle gap outruns the whole ring and takes the
/// wholesale-clear path; each flood loads the grain schedule to its
/// provisioned rate), then a diurnal fast/slow rotation spanning many
/// windows. Throughput drives [`TimedWindow::record_timed`] in
/// [`CHUNK`]-sized slices (the gap-stamped batch fast path); accuracy is
/// on-arrival RMSE against an exact *time*-window oracle over the same
/// span. Also returns the RMSE of a `TimedWindow<ExactWindow>` with the
/// identical geometry on the identical arrivals — the pure
/// grain-quantization error [`check_bursty_rmse`] separates from the
/// sketch error.
fn measure_bursty_replay_row(config: &GateConfig, packets: &[Packet]) -> (GateRow, f64) {
    let window_positions = config.window as u64;
    let window_ticks = REPLAY_FLOOD_GAP_NANOS * window_positions;
    // Floods of W/4 packets separated by idle gaps of two full windows
    // (every gap clears the ring wholesale); the diurnal tail alternates
    // the provisioned rate with 1/16th of it every W/2 packets.
    let bursty = ArrivalModel::Bursty {
        burst_len: (window_positions / 4).max(1),
        flood_gap_nanos: REPLAY_FLOOD_GAP_NANOS,
        idle_nanos: 2 * window_ticks,
    };
    let diurnal = ArrivalModel::Diurnal {
        fast_gap_nanos: REPLAY_FLOOD_GAP_NANOS,
        slow_gap_nanos: 16 * REPLAY_FLOOD_GAP_NANOS,
        period: (window_positions / 2).max(1),
    };
    let arrivals = stamp_bursty_then_diurnal(packets, bursty, diurnal, config.seed);

    let make_timed = || {
        TimedWindow::with_grains(
            Memento::new(config.counters, config.window, config.tau, config.seed),
            window_ticks,
            window_positions,
            REPLAY_GRAINS,
        )
    };
    let mut best = 0.0f64;
    let mut clears = 0u64;
    for _ in 0..PASSES {
        let mut timed = make_timed();
        let mpps = measure_mpps(arrivals.len(), || {
            for part in arrivals.chunks(CHUNK) {
                timed.record_timed(part);
            }
        });
        best = best.max(mpps);
        clears = timed.whole_window_advances();
    }

    let accuracy_arrivals = &arrivals[..config.accuracy_packets.min(arrivals.len())];
    let mut timed = make_timed();
    let rmse = on_arrival_rmse_timed(&mut timed, accuracy_arrivals, config.probe_every);
    // The quantization reference: an exact count window behind the same
    // grain clock, so its only error against the time oracle is the grain
    // mapping itself.
    let mut quant_ref = TimedWindow::with_grains(
        ExactWindow::new(config.window),
        window_ticks,
        window_positions,
        REPLAY_GRAINS,
    );
    let quant_rmse =
        on_arrival_rmse_timed(&mut quant_ref, accuracy_arrivals, config.probe_every).value();
    eprintln!(
        "perf_gate: bursty-replay@1: {best:.2} mpps, on-arrival RMSE {:.2} over {} probes \
         (quantization reference {quant_rmse:.2}, {clears} wholesale clears)",
        rmse.value(),
        rmse.count()
    );
    (
        GateRow {
            algorithm: "bursty-replay".to_string(),
            shards: 1,
            tau: config.tau,
            counters: config.counters,
            workload: "bursty-replay".to_string(),
            mpps: best,
            on_arrival_rmse: Some(rmse.value()),
        },
        quant_rmse,
    )
}

/// Measures the `dense-replay` row (PR 10): the trace replayed at uniform
/// at-rate arrivals — one packet every [`REPLAY_FLOOD_GAP_NANOS`] ns mean,
/// so a grain holds its provisioned positions-per-grain packets and no gap
/// ever outruns the ring (zero wholesale clears). This is the steady state
/// the chunked [`TimedWindow::record_timed`] hoist targets: nearly every
/// packet is the tail of a same-grain run and pays one grain-end
/// comparison instead of a full `GrainClock::observe`. Geometry, chunking
/// and the accuracy harness are identical to the `bursty-replay` row, so
/// the pair brackets the time plane's arrival regimes. Returns the row and
/// the grain-quantization reference RMSE, as for the bursty row.
fn measure_dense_replay_row(config: &GateConfig, packets: &[Packet]) -> (GateRow, f64) {
    let window_positions = config.window as u64;
    let window_ticks = REPLAY_FLOOD_GAP_NANOS * window_positions;
    let arrivals: Vec<(u64, u64)> = ArrivalModel::Uniform {
        gap_nanos: REPLAY_FLOOD_GAP_NANOS,
    }
    .stamp(packets, config.seed)
    .iter()
    .map(|tp| (tp.nanos, tp.packet.flow()))
    .collect();

    let make_timed = || {
        TimedWindow::with_grains(
            Memento::new(config.counters, config.window, config.tau, config.seed),
            window_ticks,
            window_positions,
            REPLAY_GRAINS,
        )
    };
    let mut best = 0.0f64;
    let mut clears = 0u64;
    for _ in 0..PASSES {
        let mut timed = make_timed();
        let mpps = measure_mpps(arrivals.len(), || {
            for part in arrivals.chunks(CHUNK) {
                timed.record_timed(part);
            }
        });
        best = best.max(mpps);
        clears = timed.whole_window_advances();
    }
    assert_eq!(
        clears, 0,
        "dense-replay must never outrun the ring (uniform at-rate arrivals)"
    );

    let accuracy_arrivals = &arrivals[..config.accuracy_packets.min(arrivals.len())];
    let mut timed = make_timed();
    let rmse = on_arrival_rmse_timed(&mut timed, accuracy_arrivals, config.probe_every);
    let mut quant_ref = TimedWindow::with_grains(
        ExactWindow::new(config.window),
        window_ticks,
        window_positions,
        REPLAY_GRAINS,
    );
    let quant_rmse =
        on_arrival_rmse_timed(&mut quant_ref, accuracy_arrivals, config.probe_every).value();
    eprintln!(
        "perf_gate: dense-replay@1: {best:.2} mpps, on-arrival RMSE {:.2} over {} probes \
         (quantization reference {quant_rmse:.2}, {clears} wholesale clears)",
        rmse.value(),
        rmse.count()
    );
    (
        GateRow {
            algorithm: "dense-replay".to_string(),
            shards: 1,
            tau: config.tau,
            counters: config.counters,
            workload: "dense-replay".to_string(),
            mpps: best,
            on_arrival_rmse: Some(rmse.value()),
        },
        quant_rmse,
    )
}

/// The PR 9 acceptance check, generalized over the replay rows in PR 10:
/// a replay row's on-arrival RMSE must be bounded against the exact
/// time-window baseline. The timed Memento's error decomposes into
/// grain-quantization error (measured directly by the exact-inner
/// reference on the same clock) plus sketch error (tracked by the
/// count-based `memento@1` row); 3× headroom on the sketch term plus a
/// 5-packet absolute slack absorbs measurement noise.
fn check_replay_rmse(report: &GateReport, row: &str, quant_rmse: f64, failures: &mut Vec<String>) {
    let (Some(replay), Some(sketch_ref)) = (report.row(row, 1), report.row("memento", 1)) else {
        failures.push(format!(
            "replay RMSE check: {row}@1 or memento@1 row missing"
        ));
        return;
    };
    let (Some(rmse), Some(sketch_rmse)) = (replay.on_arrival_rmse, sketch_ref.on_arrival_rmse)
    else {
        failures.push(format!(
            "replay RMSE check ({row}): a required on_arrival_rmse is missing"
        ));
        return;
    };
    let ceiling = quant_rmse + 3.0 * sketch_rmse + 5.0;
    eprintln!(
        "perf_gate: {row} on-arrival RMSE {rmse:.1} vs ceiling {ceiling:.1} \
         (quantization {quant_rmse:.1} + 3x sketch {sketch_rmse:.1} + 5)"
    );
    if rmse > ceiling {
        failures.push(format!(
            "{row}@1 on-arrival RMSE {rmse:.1} exceeds the time-window bound \
             {ceiling:.1} (quantization reference {quant_rmse:.1}, count-based sketch \
             reference {sketch_rmse:.1})"
        ));
    }
}

/// The PR 7 acceptance check: with 4 concurrent snapshot readers, ingest
/// throughput must stay within 10% of the no-reader 4-shard Memento row.
/// Enforced from 8 cores up (4 workers + 4 readers genuinely in parallel);
/// below that the readers legitimately steal worker cycles and the check
/// would measure the scheduler, not the query plane. Skipped with
/// `PERF_GATE_SKIP_READERS=1`.
fn check_reader_overhead(report: &GateReport, failures: &mut Vec<String>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (Some(no_readers), Some(with_readers)) = (
        report.row("sharded-memento", 4),
        report.row("concurrent-readers", 4),
    ) else {
        failures.push(
            "reader overhead check: sharded-memento@4 or concurrent-readers@4 row missing"
                .to_string(),
        );
        return;
    };
    let ratio = with_readers.mpps / no_readers.mpps;
    eprintln!(
        "perf_gate: ingest with 4 readers at {:.2}x the no-reader throughput \
         ({:.2} / {:.2} mpps, {cores} cores)",
        ratio, with_readers.mpps, no_readers.mpps
    );
    if env_truthy("PERF_GATE_SKIP_READERS") {
        eprintln!("perf_gate: reader overhead check skipped (PERF_GATE_SKIP_READERS)");
    } else if cores < 8 {
        eprintln!("perf_gate: reader overhead check skipped (only {cores} cores available)");
    } else if ratio < 0.90 {
        failures.push(format!(
            "concurrent-readers@4 ingest dropped to {ratio:.2}x of the no-reader \
             throughput (need >= 0.90x)"
        ));
    }
}

/// The ISSUE-2 acceptance check: the 4-shard Memento must hold ≥ 2× the
/// single-core Memento throughput. Enforced from 4 cores up — the 4
/// workers then run genuinely in parallel (the feeding thread interleaves,
/// but it is a fraction of the per-packet work), and standard CI runners
/// have exactly 4 vCPUs, so the gate must bind there or it binds nowhere.
/// Skipped below 4 cores or with `PERF_GATE_SKIP_SPEEDUP=1`.
fn check_speedup(report: &GateReport, failures: &mut Vec<String>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (Some(single), Some(sharded)) =
        (report.row("memento", 1), report.row("sharded-memento", 4))
    else {
        failures.push("speedup check: memento@1 or sharded-memento@4 row missing".to_string());
        return;
    };
    let speedup = sharded.mpps / single.mpps;
    eprintln!(
        "perf_gate: sharded-memento@4 speedup vs single-core memento: {speedup:.2}x \
         ({:.2} / {:.2} mpps, {cores} cores)",
        sharded.mpps, single.mpps
    );
    if env_truthy("PERF_GATE_SKIP_SPEEDUP") {
        eprintln!("perf_gate: speedup check skipped (PERF_GATE_SKIP_SPEEDUP)");
    } else if cores < 4 {
        eprintln!("perf_gate: speedup check skipped (only {cores} cores available)");
    } else if speedup < 2.0 {
        failures.push(format!(
            "sharded-memento@4 is only {speedup:.2}x the single-core throughput (need >= 2x)"
        ));
    }
}

fn compare_with_baseline(report: &GateReport, baseline_path: &str, failures: &mut Vec<String>) {
    let tolerance = match std::env::var("PERF_GATE_TOLERANCE") {
        Err(_) => 0.30,
        Ok(raw) => match raw.parse::<f64>() {
            Ok(t) if (0.0..1.0).contains(&t) => t,
            _ => {
                failures.push(format!(
                    "PERF_GATE_TOLERANCE={raw:?} is not a fraction in [0, 1)"
                ));
                return;
            }
        },
    };
    match std::fs::read_to_string(baseline_path) {
        Err(e) => failures.push(format!(
            "no baseline at {baseline_path} ({e}); run with --write-baseline to create it \
             or set PERF_GATE_SKIP_BASELINE=1"
        )),
        Ok(text) => match GateReport::from_json(&text) {
            Err(e) => failures.push(format!("baseline {baseline_path} is invalid: {e}")),
            Ok(baseline) => {
                let violations = compare_throughput(report, &baseline, tolerance);
                if violations.is_empty() {
                    eprintln!(
                        "perf_gate: all {} baseline configurations within {:.0}% of {}",
                        baseline.rows.len(),
                        tolerance * 100.0,
                        baseline_path
                    );
                }
                failures.extend(violations);
            }
        },
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} needs a value"))
            .clone()
    })
}

fn env_truthy(name: &str) -> bool {
    std::env::var(name)
        .map(|v| memento_bench::is_truthy(&v))
        .unwrap_or(false)
}
