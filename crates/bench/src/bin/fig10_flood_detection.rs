//! Figure 10 — the HTTP-flood experiment: detection of 50 attacking subnets
//! over time (a, b) and the percentage of flood requests that reached the
//! backends (c), for the Batch, Sample and Aggregation methods under a
//! 1-byte-per-packet budget, against the OPT oracle.
//!
//! Output: two CSV sections — the detection curves and the missed-request
//! summary.
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig10_flood_detection [--full]
//! ```

use memento_bench::{csv_header, csv_row, scaled};
use memento_core::analysis::NetworkBudget;
use memento_lb::scenario::FloodConfig;
use memento_lb::{FloodExperiment, FloodExperimentConfig};
use memento_netwide::CommMethod;
use memento_traces::TracePreset;

fn main() {
    let window = scaled(100_000, 1_000_000);
    let budget = 1.0;
    let model = NetworkBudget {
        header_overhead: 64.0,
        sample_bytes: 4.0,
        points: 10,
        hierarchy: 5,
        window,
        delta: 0.0001,
        budget,
    };
    let (opt_b, _) = model.optimal_batch(2_000);

    let base = FloodExperimentConfig {
        proxies: 10,
        backends_per_proxy: 4,
        window,
        budget,
        counters: 4_096,
        method: CommMethod::Batch(opt_b),
        theta: 0.01,
        total_packets: scaled(4 * window, 4 * window),
        flood: FloodConfig {
            num_subnets: 50,
            flood_probability: 0.7,
            start: window,
        },
        preset: TracePreset::backbone(),
        check_interval: scaled(2_000, 10_000),
        mitigate: true,
        seed: 2018,
    };

    eprintln!(
        "# Figure 10: HTTP flood, 50 subnets @ 70%, W={window}, B={budget} byte/pkt, theta={}, batch b*={opt_b}",
        base.theta
    );

    let methods = [
        CommMethod::Batch(opt_b),
        CommMethod::Sample,
        CommMethod::Aggregation,
    ];
    let mut results = Vec::new();
    for method in methods {
        let mut cfg = base.clone();
        cfg.method = method;
        results.push(FloodExperiment::new(cfg).run());
    }

    // --- Figures 10a / 10b: detection curves -----------------------------
    println!("## detection_curves");
    csv_header(&[
        "method",
        "packet_index",
        "detected_subnets",
        "opt_detected_subnets",
    ]);
    for result in &results {
        for ((i, detected), (_, opt)) in result
            .detection_curve
            .iter()
            .zip(&result.opt_detection_curve)
        {
            csv_row(&[
                result.method.clone(),
                i.to_string(),
                detected.to_string(),
                opt.to_string(),
            ]);
        }
    }

    // --- Figure 10c: missed flood requests --------------------------------
    println!("## missed_requests");
    csv_header(&[
        "method",
        "detected_subnets",
        "total_attack_requests",
        "missed_attack_requests",
        "missed_percent",
        "mean_delay_vs_opt_packets",
        "bytes_per_packet",
    ]);
    for result in &results {
        csv_row(&[
            result.method.clone(),
            result.detected_subnets().to_string(),
            result.total_attack_requests.to_string(),
            result.missed_attack_requests.to_string(),
            format!("{:.3}", 100.0 * result.miss_rate()),
            format!("{:.0}", result.mean_delay_vs_opt()),
            format!("{:.3}", result.bytes_per_packet),
        ]);
    }
}
