//! Figure 6 — H-Memento vs the window-MST Baseline: hierarchical
//! heavy-hitter update speed on sliding windows, 1D (H=5) and 2D (H=25),
//! on the backbone trace (the paper notes the other traces behave alike).
//!
//! Both algorithms run behind the generic [`measure_hhh_mpps`] driver —
//! the harness neither knows nor cares which algorithm it drives. Output:
//! CSV of million packets per second per (dimension, counters, algorithm,
//! τ). The Baseline has no τ (it always performs H Full updates).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig06_hhh_speed [--full]
//! ```

use memento_baselines::WindowMst;
use memento_bench::{csv_header, csv_row, make_trace, measure_hhh_mpps, scaled, COUNTER_SWEEP};
use memento_core::traits::HhhAlgorithm;
use memento_core::HMemento;
use memento_hierarchy::{Hierarchy, SrcDstHierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn report<Hi: Hierarchy>(
    dim: &str,
    counters_label: &str,
    tau: f64,
    alg: &mut dyn HhhAlgorithm<Hi>,
    items: &[Hi::Item],
) {
    let mpps = measure_hhh_mpps(alg, items);
    csv_row(&[
        dim.to_string(),
        counters_label.to_string(),
        alg.name().to_string(),
        format!("{tau:.6}"),
        format!("{mpps:.2}"),
    ]);
}

fn run_dim<Hi: Hierarchy + 'static>(
    hier: Hi,
    packets: usize,
    window: usize,
    to_item: impl Fn(&memento_traces::Packet) -> Hi::Item,
) where
    Hi::Prefix: std::hash::Hash,
{
    let items: Vec<Hi::Item> = make_trace(&TracePreset::backbone(), packets, 17)
        .iter()
        .map(&to_item)
        .collect();
    let h = hier.h();
    let dim = if hier.dimensions() == 1 { "1d" } else { "2d" };
    for &counters_per_level in &COUNTER_SWEEP {
        let label = format!("{counters_per_level}H");
        // H-Memento across the tau sweep, floored at H * 2^-10 as in the paper.
        for i in 0..=10 {
            let tau = (2f64.powi(-i)).max(h as f64 * 2f64.powi(-10)).min(1.0);
            let mut hm = HMemento::new(hier.clone(), h * counters_per_level, window, tau, 0.01, 3);
            report(dim, &label, tau, &mut hm, &items);
        }
        // The Baseline (window MST): H full WCSS updates per packet.
        let mut baseline = WindowMst::new(hier.clone(), counters_per_level, window);
        report(dim, &label, 1.0, &mut baseline, &items);
    }
}

fn main() {
    let packets = scaled(150_000, 4_000_000);
    let window = scaled(60_000, 1_000_000);
    eprintln!(
        "# Figure 6: H-Memento vs Baseline (window MST), backbone trace, N={packets}, W={window}"
    );
    csv_header(&["dimension", "counters", "algorithm", "tau", "mpps"]);
    run_dim(SrcHierarchy, packets, window, |p| p.src);
    run_dim(SrcDstHierarchy, packets, window, |p| p.src_dst());
}
