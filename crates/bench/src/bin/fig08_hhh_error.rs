//! Figure 8 — single-device HHH accuracy: on-arrival error per prefix length
//! for the Interval algorithm (MST), the Baseline (window MST) and
//! H-Memento, on the three traces.
//!
//! For every probed arrival, each algorithm estimates the frequency of each
//! of the arriving packet's source prefixes; the error is measured against
//! the exact sliding window. The Interval algorithm is reset every `W`
//! requests and configured with a smaller ε so that its memory matches the
//! window algorithms, as in §6.3.1. Output: CSV of RMSE per
//! (trace, algorithm, prefix length).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig08_hhh_error [--full]
//! ```

use memento_baselines::{ExactWindowHhh, Mst, WindowMst};
use memento_bench::{csv_header, csv_row, make_trace, scaled, Rmse};
use memento_core::HMemento;
use memento_hierarchy::{Hierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn main() {
    let window = scaled(60_000, 1_000_000);
    let packets = scaled(180_000, 3_000_000);
    let probe_every = scaled(20, 200);
    let hier = SrcHierarchy;
    let h = hier.h();

    // Paper configuration: epsilon_a = 0.1% for the window algorithms,
    // 0.025% for MST, giving comparable memory. Scaled down proportionally
    // for the laptop-scale window.
    let eps_a = if memento_bench::full_scale() { 0.001 } else { 0.005 };
    let h_memento_counters = (h as f64 / eps_a).ceil() as usize;
    let baseline_counters_per_level = (4.0 / eps_a).ceil() as usize;
    let mst_counters_per_level = (1.0 / (eps_a / 4.0)).ceil() as usize;
    // The sampling probability must satisfy Theorem 5.3 for the window in
    // use: at the laptop-scale window the theorem forces a higher τ than the
    // paper's 10⁶-packet window allows.
    let tau = if memento_bench::full_scale() {
        (h as f64 * 2f64.powi(-10)).min(1.0)
    } else {
        (h as f64 * 2f64.powi(-4)).min(1.0)
    };

    eprintln!(
        "# Figure 8: HHH on-arrival RMSE per prefix length, W={window}, N={packets}, eps_a={eps_a}, tau={tau:.4}"
    );
    csv_header(&["trace", "algorithm", "prefix_len_bits", "rmse"]);

    for preset in TracePreset::all() {
        let trace = make_trace(&preset, packets, 23);
        let mut h_memento = HMemento::new(hier, h_memento_counters, window, tau, 0.01, 5);
        let mut baseline = WindowMst::new(hier, baseline_counters_per_level, window);
        let mut interval = Mst::new(hier, mst_counters_per_level);
        let mut oracle = ExactWindowHhh::new(hier, window);

        let mut rmse_hm = vec![Rmse::new(); h];
        let mut rmse_base = vec![Rmse::new(); h];
        let mut rmse_int = vec![Rmse::new(); h];

        for (n, pkt) in trace.iter().enumerate() {
            let src = pkt.src;
            if n > window && n % probe_every == 0 {
                for level in 0..h {
                    let prefix = hier.prefix_at(src, level);
                    let exact = oracle.frequency(&prefix) as f64;
                    rmse_hm[level].record(h_memento.estimate(&prefix), exact);
                    rmse_base[level].record(baseline.estimate(&prefix), exact);
                    rmse_int[level].record(interval.estimate(&prefix), exact);
                }
            }
            h_memento.update(src);
            baseline.update(src);
            interval.update(src);
            oracle.update(src);
            // The interval method restarts its measurement every W requests.
            if (n + 1) % window == 0 {
                interval.reset();
            }
        }

        for level in 0..h {
            let bits = 32 - 8 * level;
            csv_row(&[
                preset.name.to_string(),
                "h_memento".to_string(),
                bits.to_string(),
                format!("{:.1}", rmse_hm[level].value()),
            ]);
            csv_row(&[
                preset.name.to_string(),
                "baseline".to_string(),
                bits.to_string(),
                format!("{:.1}", rmse_base[level].value()),
            ]);
            csv_row(&[
                preset.name.to_string(),
                "interval_mst".to_string(),
                bits.to_string(),
                format!("{:.1}", rmse_int[level].value()),
            ]);
        }
    }
}
