//! Figure 8 — single-device HHH accuracy: on-arrival error per prefix length
//! for the Interval algorithm (MST), the Baseline (window MST) and
//! H-Memento, on the three traces.
//!
//! All three algorithms run behind the generic [`on_arrival_hhh_rmse`]
//! driver, which probes every algorithm against one shared exact
//! sliding-window oracle and resets the interval algorithms every `W`
//! requests (§6.3.1). The Interval algorithm is configured with a smaller ε
//! so that its memory matches the window algorithms. Output: CSV of RMSE per
//! (trace, algorithm, prefix length).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig08_hhh_error [--full]
//! ```

use memento_baselines::{Mst, WindowMst};
use memento_bench::{csv_header, csv_row, make_trace, on_arrival_hhh_rmse, scaled};
use memento_core::traits::HhhAlgorithm;
use memento_core::HMemento;
use memento_hierarchy::{Hierarchy, SrcHierarchy};
use memento_traces::TracePreset;

fn main() {
    let window = scaled(60_000, 1_000_000);
    let packets = scaled(180_000, 3_000_000);
    let probe_every = scaled(20, 200);
    let hier = SrcHierarchy;
    let h = hier.h();

    // Paper configuration: epsilon_a = 0.1% for the window algorithms,
    // 0.025% for MST, giving comparable memory. Scaled down proportionally
    // for the laptop-scale window.
    let eps_a = if memento_bench::full_scale() {
        0.001
    } else {
        0.005
    };
    let h_memento_counters = (h as f64 / eps_a).ceil() as usize;
    let baseline_counters_per_level = (4.0 / eps_a).ceil() as usize;
    let mst_counters_per_level = (1.0 / (eps_a / 4.0)).ceil() as usize;
    // The sampling probability must satisfy Theorem 5.3 for the window in
    // use: at the laptop-scale window the theorem forces a higher τ than the
    // paper's 10⁶-packet window allows.
    let tau = if memento_bench::full_scale() {
        (h as f64 * 2f64.powi(-10)).min(1.0)
    } else {
        (h as f64 * 2f64.powi(-4)).min(1.0)
    };

    eprintln!(
        "# Figure 8: HHH on-arrival RMSE per prefix length, W={window}, N={packets}, eps_a={eps_a}, tau={tau:.4}"
    );
    csv_header(&["trace", "algorithm", "prefix_len_bits", "rmse"]);

    for preset in TracePreset::all() {
        let items: Vec<u32> = make_trace(&preset, packets, 23)
            .iter()
            .map(|p| p.src)
            .collect();
        let mut h_memento = HMemento::new(hier, h_memento_counters, window, tau, 0.01, 5);
        let mut baseline = WindowMst::new(hier, baseline_counters_per_level, window);
        let mut interval = Mst::new(hier, mst_counters_per_level);
        let mut contenders: [&mut dyn HhhAlgorithm<SrcHierarchy>; 3] =
            [&mut h_memento, &mut baseline, &mut interval];
        let names: Vec<String> = contenders.iter().map(|a| a.name().to_string()).collect();

        let rmse = on_arrival_hhh_rmse(&hier, &mut contenders, &items, window, probe_every);

        for (name, per_level) in names.iter().zip(&rmse) {
            for (level, r) in per_level.iter().enumerate() {
                csv_row(&[
                    preset.name.to_string(),
                    name.clone(),
                    (32 - 8 * level).to_string(),
                    format!("{:.1}", r.value()),
                ]);
            }
        }
    }
}
