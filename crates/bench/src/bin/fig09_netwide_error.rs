//! Figure 9 — network-wide accuracy under a 1-byte-per-packet budget for the
//! Aggregation, Sample and Batch communication methods, on the three traces.
//!
//! Ten measurement points feed a D-H-Memento controller (or the idealized
//! Aggregation controller); the on-arrival RMSE of the arriving packet's
//! source prefixes is measured against the exact network-wide window.
//! Output: CSV of RMSE per (trace, method, prefix length).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig09_netwide_error [--full]
//! ```

use memento_bench::{csv_header, csv_row, make_trace, scaled, Rmse};
use memento_core::analysis::NetworkBudget;
use memento_hierarchy::{Hierarchy, SrcHierarchy};
use memento_netwide::{CommMethod, NetworkSimulator, SimConfig, WireFormat};
use memento_traces::TracePreset;

fn main() {
    let window = scaled(50_000, 1_000_000);
    let packets = scaled(150_000, 3_000_000);
    let probe_every = scaled(25, 250);
    let budget = 1.0;
    let hier = SrcHierarchy;

    // The batch size the paper's analysis recommends for this budget.
    let model = NetworkBudget {
        header_overhead: 64.0,
        sample_bytes: 4.0,
        points: 10,
        hierarchy: hier.h(),
        window,
        delta: 0.0001,
        budget,
    };
    let (opt_b, _) = model.optimal_batch(2_000);

    eprintln!("# Figure 9: network-wide RMSE, B={budget} byte/pkt, W={window}, N={packets}, batch b*={opt_b}");
    csv_header(&["trace", "method", "prefix_len_bits", "rmse"]);

    for preset in TracePreset::all() {
        let trace = make_trace(&preset, packets, 29);
        for method in [
            CommMethod::Aggregation,
            CommMethod::Sample,
            CommMethod::Batch(opt_b),
        ] {
            let config = SimConfig {
                points: 10,
                window,
                budget,
                counters: 4_096,
                method,
                delta: 0.01,
                seed: 31,
            };
            let mut sim = NetworkSimulator::new(hier, config, WireFormat::tcp_src());
            let mut rmse = vec![Rmse::new(); hier.h()];
            for (n, pkt) in trace.iter().enumerate() {
                if n > window && n % probe_every == 0 {
                    for (level, acc) in rmse.iter_mut().enumerate() {
                        let prefix = hier.prefix_at(pkt.src, level);
                        acc.record(sim.estimate(&prefix), sim.exact(&prefix) as f64);
                    }
                }
                sim.process(pkt.src);
            }
            for (level, r) in rmse.iter().enumerate() {
                csv_row(&[
                    preset.name.to_string(),
                    method.name(),
                    (32 - 8 * level).to_string(),
                    format!("{:.1}", r.value()),
                ]);
            }
            eprintln!(
                "#   {} / {}: {:.3} bytes/pkt used, {} reports",
                preset.name,
                method.name(),
                sim.bytes_per_packet(),
                sim.reports()
            );
        }
    }
}
