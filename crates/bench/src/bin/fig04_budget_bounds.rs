//! Figure 4 — analytic accuracy guarantees of the Sample, 100-Batch and
//! optimal-Batch synchronization methods as a function of the per-packet
//! bandwidth budget B (Theorem 5.5).
//!
//! Output: CSV with, for each budget, the total error bound of each method
//! and the split between delay error and sampling error (the hatched part of
//! the paper's figure), plus the optimal batch size.
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig04_budget_bounds
//! ```

use memento_bench::{csv_header, csv_row};
use memento_core::analysis::NetworkBudget;

fn main() {
    let base = NetworkBudget {
        header_overhead: 64.0,
        sample_bytes: 4.0,
        points: 10,
        hierarchy: 5,
        window: 1_000_000,
        delta: 0.0001,
        budget: 1.0,
    };

    eprintln!(
        "# Figure 4: error bounds vs bandwidth budget (O={}, E={}, m={}, H={}, W={}, delta={})",
        base.header_overhead,
        base.sample_bytes,
        base.points,
        base.hierarchy,
        base.window,
        base.delta
    );
    csv_header(&[
        "budget_bytes_per_pkt",
        "sample_total",
        "sample_delay",
        "batch100_total",
        "batch100_delay",
        "batch_opt_total",
        "batch_opt_delay",
        "optimal_b",
    ]);

    let mut budget_bytes = 0.5;
    while budget_bytes <= 8.01 {
        let mut model = base;
        model.budget = budget_bytes;
        let (sample_delay, sample_sampling) = model.error_components(1);
        let (b100_delay, b100_sampling) = model.error_components(100);
        let (opt_b, opt_total) = model.optimal_batch(2_000);
        let (opt_delay, _) = model.error_components(opt_b);
        csv_row(&[
            format!("{budget_bytes:.1}"),
            format!("{:.0}", sample_delay + sample_sampling),
            format!("{sample_delay:.0}"),
            format!("{:.0}", b100_delay + b100_sampling),
            format!("{b100_delay:.0}"),
            format!("{opt_total:.0}"),
            format!("{opt_delay:.0}"),
            format!("{opt_b}"),
        ]);
        budget_bytes += 0.5;
    }
}
