//! Low-noise interleaved A/B of the three `CompactMap` probe backends.
//!
//! The criterion `hot_path` rows swing ±30% between invocations on a
//! shared 1-core box — more than the byte-vs-group gap they are meant to
//! resolve. This harness interleaves the three scans round-robin (so
//! machine-state drift hits all of them equally), times whole passes
//! with a monotonic clock, and reports the per-scan minimum and median —
//! the statistics `EXPERIMENTS.md` records for the PR 10 parity bar.
//! Like the `hot_path` scan rows, each probe accumulates the returned
//! slot index (no entry touch — see the note on the scan rows there),
//! and a stream-weighted probe-length histogram attributes the timing.
//!
//! Usage: `cargo run --release --bin probe_ab [passes]` (default 60).

use std::collections::HashSet;
use std::time::Instant;

use memento_bench::make_trace;
use memento_sketches::CompactMap;
use memento_traces::TracePreset;

/// Monitored population (matches `hot_path`'s `MONITORED`).
const MONITORED: usize = 4_096;

/// Probe stream length (matches `hot_path`'s `OPS`).
const OPS: usize = 100_000;

fn main() {
    let passes: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    let keys: Vec<u64> = make_trace(&TracePreset::datacenter(), OPS, 2018)
        .iter()
        .map(|p| p.flow())
        .collect();
    let mut seen = HashSet::new();
    let mut population = Vec::with_capacity(MONITORED);
    for &key in &keys {
        if seen.insert(key) {
            population.push(key);
            if population.len() == MONITORED {
                break;
            }
        }
    }

    let mut map: CompactMap<u64, u32> = CompactMap::with_capacity(MONITORED);
    for &key in &population {
        map.insert(key, 0);
    }

    let mut times: [Vec<u64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut acc = 0u64;
    for _ in 0..passes {
        for (scan, bucket) in times.iter_mut().enumerate() {
            let start = Instant::now();
            for &key in &keys {
                let probed = match scan {
                    0 => map.probe_reference(&key),
                    1 => map.probe_swar(&key),
                    _ => map.probe(&key),
                };
                match probed {
                    Ok(slot) => acc += slot as u64,
                    Err(_) => acc += 1,
                }
            }
            bucket.push(start.elapsed().as_nanos() as u64);
        }
    }

    // Stream-weighted probe-length histogram: how many slots each of the
    // 100k probes actually walks (hits end at the key, misses at the
    // first empty), so the timing gap above can be attributed. The home
    // slot is the hash's low bits, as in `CompactMap::decompose`; the
    // slot count is recovered from the 7/8 load cap.
    let slots = map.capacity() * 8 / 7;
    assert!(slots.is_power_of_two(), "unexpected table geometry");
    let mut hist = [0u64; 10];
    for &key in &keys {
        let slot = match map.probe(&key) {
            Ok(slot) => slot,
            Err((slot, _)) => slot,
        };
        let home = memento_sketches::fasthash::hash_one(&key) as usize & (slots - 1);
        let len = (slot + slots - home) % slots + 1;
        hist[len.min(9)] += 1;
    }
    eprintln!("probe length histogram (1..=8 slots, 9 = longer): {hist:?}");

    for (name, bucket) in ["byte", "swar", "group"].iter().zip(times.iter_mut()) {
        bucket.sort_unstable();
        let min = bucket[0];
        let med = bucket[bucket.len() / 2];
        println!(
            "{name:>5}: min {:.1} us  median {:.1} us  ({} passes)",
            min as f64 / 1_000.0,
            med as f64 / 1_000.0,
            bucket.len()
        );
    }
    eprintln!("(checksum {acc})");
}
