//! The worked example of §5.2 as a table: optimal batch sizes and error
//! guarantees for several budgets, window sizes and hierarchies.
//!
//! ```text
//! cargo run -p memento-bench --release --bin tab01_optimal_batch
//! ```

use memento_bench::{csv_header, csv_row};
use memento_core::analysis::NetworkBudget;

fn main() {
    eprintln!("# Optimal batch sizes (Theorem 5.5), TCP transport, m=10, delta=0.01%");
    csv_header(&[
        "hierarchy",
        "window",
        "budget_bytes_per_pkt",
        "optimal_b",
        "error_packets",
        "error_percent",
        "paper_reported",
    ]);

    let cases = [
        // (H, E, W, B, what the paper's prose reports)
        (5usize, 4.0, 1_000_000usize, 1.0, "b=44, err~13K (1.3%)"),
        (5, 4.0, 1_000_000, 5.0, "b=68, err~5.3K (0.53%)"),
        (
            5,
            4.0,
            10_000_000,
            1.0,
            "b=109, err~0.15% (see EXPERIMENTS.md)",
        ),
        (25, 8.0, 1_000_000, 1.0, "larger error, larger b than 1D"),
    ];

    for (h, sample_bytes, window, budget, note) in cases {
        let model = NetworkBudget {
            header_overhead: 64.0,
            sample_bytes,
            points: 10,
            hierarchy: h,
            window,
            delta: 0.0001,
            budget,
        };
        let (b, err) = model.optimal_batch(5_000);
        csv_row(&[
            format!("{h}"),
            format!("{window}"),
            format!("{budget}"),
            format!("{b}"),
            format!("{err:.0}"),
            format!("{:.3}", 100.0 * err / window as f64),
            note.to_string(),
        ]);
    }
}
