//! Figure 1b — detection time of a new heavy hitter vs. its frequency, for
//! the Interval, improved-Interval and sliding-Window measurement
//! disciplines (exact counting, as in §3 of the paper).
//!
//! Output: CSV with the expected detection time (in windows) for each method
//! as a function of the ratio between the new flow's normalized frequency
//! and the detection threshold.
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig01_detection [--full]
//! ```

use memento_baselines::detectors::{
    detection_index, Detector, ImprovedIntervalDetector, IntervalDetector, WindowDetector,
};
use memento_bench::{csv_header, csv_row, scaled};
use memento_traces::{EmergingFlowScenario, Packet, TraceGenerator, TracePreset};

fn mean_detection_windows<D, F>(make: F, window: usize, fraction: f64, trials: usize) -> f64
where
    D: Detector<u64>,
    F: Fn(u64) -> D,
{
    let target_flow = Packet::from_octets([250, 250, 250, 250], [9, 9, 9, 9]);
    let mut total = 0.0;
    for trial in 0..trials {
        let base = TraceGenerator::new(TracePreset::edge(), 100 + trial as u64);
        // The flow appears somewhere inside the second window.
        let start = window + (trial * window / trials.max(1)) % window;
        let scenario =
            EmergingFlowScenario::new(base, target_flow, fraction, start, 7 + trial as u64);
        let mut detector = make(trial as u64);
        let stream = scenario.map(|p| p.flow()).take(start + 12 * window);
        let idx = detection_index(&mut detector, stream);
        let detected_at = idx.unwrap_or(start + 12 * window);
        total += (detected_at.saturating_sub(start)) as f64 / window as f64;
    }
    total / trials as f64
}

fn main() {
    let window = scaled(10_000, 100_000);
    let theta = 0.01;
    let threshold = (theta * window as f64) as u64;
    let trials = scaled(5, 9);
    let target = Packet::from_octets([250, 250, 250, 250], [9, 9, 9, 9]).flow();

    eprintln!(
        "# Figure 1b: detection time vs frequency/threshold ratio (W={window}, theta={theta})"
    );
    csv_header(&[
        "freq_over_threshold",
        "window",
        "improved_interval",
        "interval",
    ]);
    let mut ratio = 1.05;
    while ratio <= 3.01 {
        let fraction = ratio * theta;
        let win = mean_detection_windows(
            |_| WindowDetector::new(window, target, threshold),
            window,
            fraction,
            trials,
        );
        let imp = mean_detection_windows(
            |_| ImprovedIntervalDetector::new(window, target, threshold),
            window,
            fraction,
            trials,
        );
        let interval = mean_detection_windows(
            |_| IntervalDetector::new(window, target, threshold),
            window,
            fraction,
            trials,
        );
        csv_row(&[
            format!("{ratio:.2}"),
            format!("{win:.3}"),
            format!("{imp:.3}"),
            format!("{interval:.3}"),
        ]);
        ratio += if ratio < 1.5 { 0.05 } else { 0.25 };
    }
}
