//! Figure 5 (a, c, e) — single-device heavy-hitter update speed vs the
//! sampling probability τ, for 64/512/4096 counters, on the three traces.
//!
//! WCSS corresponds to the τ = 1 column. Every algorithm runs behind the
//! generic [`measure_estimator_mpps`] driver; the batched column shows the
//! geometric-skip `update_batch` fast path on the same instance
//! configuration. Output: CSV of million packets per second per
//! (trace, counters, τ, path).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig05_hh_speed [--full]
//! ```

use memento_bench::{
    csv_header, csv_row, make_trace, measure_estimator_batch_mpps, measure_estimator_mpps, scaled,
    tau_sweep, COUNTER_SWEEP,
};
use memento_core::Memento;
use memento_shard::ShardedEstimator;
use memento_traces::{Packet, TracePreset};

fn main() {
    let packets = scaled(300_000, 16_000_000);
    let window = scaled(100_000, 5_000_000);

    eprintln!("# Figure 5 (speed): N={packets}, W={window}; tau=1 is WCSS");
    csv_header(&["trace", "counters", "tau_exponent", "tau", "path", "mpps"]);

    for preset in TracePreset::all() {
        let flows: Vec<u64> = make_trace(&preset, packets, 11)
            .iter()
            .map(Packet::flow)
            .collect();
        for &counters in &COUNTER_SWEEP {
            for (i, &tau) in tau_sweep().iter().enumerate() {
                let mut memento: Memento<u64> = Memento::new(counters, window, tau, 5);
                let mpps = measure_estimator_mpps(&mut memento, &flows);
                csv_row(&[
                    preset.name.to_string(),
                    counters.to_string(),
                    format!("-{i}"),
                    format!("{tau:.6}"),
                    "per_packet".to_string(),
                    format!("{mpps:.2}"),
                ]);
                let mut memento: Memento<u64> = Memento::new(counters, window, tau, 5);
                let mpps = measure_estimator_batch_mpps(&mut memento, &flows);
                csv_row(&[
                    preset.name.to_string(),
                    counters.to_string(),
                    format!("-{i}"),
                    format!("{tau:.6}"),
                    "batched".to_string(),
                    format!("{mpps:.2}"),
                ]);
                // The multi-core engine behind the same trait and the same
                // generic driver (sharded rows only at the largest counter
                // config to keep the sweep's runtime in check).
                if counters == COUNTER_SWEEP[COUNTER_SWEEP.len() - 1] {
                    for shards in [2usize, 4] {
                        let mut sharded: ShardedEstimator<u64> =
                            ShardedEstimator::memento(shards, counters, window, tau, 5);
                        let mpps = measure_estimator_batch_mpps(&mut sharded, &flows);
                        csv_row(&[
                            preset.name.to_string(),
                            counters.to_string(),
                            format!("-{i}"),
                            format!("{tau:.6}"),
                            format!("sharded-{shards}"),
                            format!("{mpps:.2}"),
                        ]);
                    }
                }
            }
        }
    }
}
