//! Figure 5 (b, d, f) — single-device heavy-hitter on-arrival RMSE vs the
//! sampling probability τ, for 64/512/4096 counters, on the three traces.
//!
//! Every algorithm runs behind the generic [`on_arrival_rmse`] driver (the
//! paper's On Arrival model: the estimate of the arriving packet's flow is
//! compared against the exact sliding window). Output: CSV of RMSE per
//! (trace, counters, τ).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig05_hh_error [--full]
//! ```

use memento_bench::{csv_header, csv_row, make_trace, on_arrival_rmse, scaled, COUNTER_SWEEP};
use memento_core::Memento;
use memento_traces::{Packet, TracePreset};

fn main() {
    let packets = scaled(200_000, 16_000_000);
    let window = scaled(80_000, 5_000_000);
    // Estimate every k-th arrival to keep the harness fast; the RMSE is a
    // property of the estimator, not of how often we probe it.
    let probe_every = scaled(10, 100);

    eprintln!("# Figure 5 (error): N={packets}, W={window}, on-arrival RMSE; tau=1 is WCSS");
    csv_header(&["trace", "counters", "tau_exponent", "tau", "rmse"]);

    for preset in TracePreset::all() {
        let flows: Vec<u64> = make_trace(&preset, packets, 13)
            .iter()
            .map(Packet::flow)
            .collect();
        for &counters in &COUNTER_SWEEP {
            for i in [0i32, 2, 4, 6, 8, 10] {
                let tau = 2f64.powi(-i);
                let mut memento: Memento<u64> = Memento::new(counters, window, tau, 3);
                let rmse = on_arrival_rmse(&mut memento, &flows, window, probe_every);
                csv_row(&[
                    preset.name.to_string(),
                    counters.to_string(),
                    format!("-{i}"),
                    format!("{tau:.6}"),
                    format!("{:.1}", rmse.value()),
                ]);
            }
        }
    }
}
