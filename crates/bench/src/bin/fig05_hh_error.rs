//! Figure 5 (b, d, f) — single-device heavy-hitter on-arrival RMSE vs the
//! sampling probability τ, for 64/512/4096 counters, on the three traces.
//!
//! For every sampled arrival the estimate of the arriving packet's flow is
//! compared against the exact sliding-window count (the paper's On Arrival
//! model). Output: CSV of RMSE per (trace, counters, τ).
//!
//! ```text
//! cargo run -p memento-bench --release --bin fig05_hh_error [--full]
//! ```

use memento_bench::{csv_header, csv_row, make_trace, scaled, Rmse, COUNTER_SWEEP};
use memento_core::Memento;
use memento_sketches::ExactWindow;
use memento_traces::TracePreset;

fn main() {
    let packets = scaled(200_000, 16_000_000);
    let window = scaled(80_000, 5_000_000);
    // Estimate every k-th arrival to keep the harness fast; the RMSE is a
    // property of the estimator, not of how often we probe it.
    let probe_every = scaled(10, 100);

    eprintln!("# Figure 5 (error): N={packets}, W={window}, on-arrival RMSE; tau=1 is WCSS");
    csv_header(&["trace", "counters", "tau_exponent", "tau", "rmse"]);

    for preset in TracePreset::all() {
        let trace = make_trace(&preset, packets, 13);
        for &counters in &COUNTER_SWEEP {
            for i in [0i32, 2, 4, 6, 8, 10] {
                let tau = 2f64.powi(-i);
                let mut memento = Memento::new(counters, window, tau, 3);
                let mut exact = ExactWindow::new(window);
                let mut rmse = Rmse::new();
                for (n, pkt) in trace.iter().enumerate() {
                    let flow = pkt.flow();
                    // On-arrival: estimate the arriving packet's flow first.
                    if n > window && n % probe_every == 0 {
                        rmse.record(memento.estimate(&flow), exact.query(&flow) as f64);
                    }
                    memento.update(flow);
                    exact.add(flow);
                }
                csv_row(&[
                    preset.name.to_string(),
                    counters.to_string(),
                    format!("-{i}"),
                    format!("{tau:.6}"),
                    format!("{:.1}", rmse.value()),
                ]);
            }
        }
    }
}
