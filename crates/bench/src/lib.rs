//! # memento-bench
//!
//! Benchmark and figure-regeneration harness for the Memento reproduction.
//!
//! Each figure of the paper's evaluation has a dedicated binary under
//! `src/bin/` that prints the same series the paper plots as CSV on stdout
//! (see `DESIGN.md` §6 for the experiment index and `EXPERIMENTS.md` for the
//! recorded results). The Criterion benches under `benches/` measure the
//! speed comparisons (Figures 5–7) with statistical rigor.
//!
//! All harnesses run at a laptop-friendly scale by default; pass `--full`
//! (or set `MEMENTO_FULL=1`) to use the paper-scale parameters (windows of
//! millions of packets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use memento_traces::{Packet, TraceGenerator, TracePreset};

/// True when the harness should run at paper scale (`--full` argument or
/// `MEMENTO_FULL=1`).
pub fn full_scale() -> bool {
    std::env::args().any(|a| a == "--full") || std::env::var("MEMENTO_FULL").is_ok()
}

/// Picks between the laptop-scale and paper-scale value of a parameter.
pub fn scaled(small: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        small
    }
}

/// The τ sweep used by the paper's speed/accuracy figures: 2⁰ … 2⁻¹⁰.
pub fn tau_sweep() -> Vec<f64> {
    (0..=10).map(|i| 2f64.powi(-i)).collect()
}

/// The counter configurations of Figure 5.
pub const COUNTER_SWEEP: [usize; 3] = [64, 512, 4096];

/// Pre-generates a packet trace for a preset.
pub fn make_trace(preset: &TracePreset, packets: usize, seed: u64) -> Vec<Packet> {
    let mut gen = TraceGenerator::new(preset.clone(), seed);
    gen.generate(packets)
}

/// Measures the throughput of `run` over `packets` items and returns
/// million packets per second.
pub fn measure_mpps<F: FnMut()>(packets: usize, mut run: F) -> f64 {
    let start = Instant::now();
    run();
    let elapsed = start.elapsed().as_secs_f64();
    packets as f64 / elapsed / 1e6
}

/// Prints a CSV header line.
pub fn csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Prints one CSV row from string-able cells.
pub fn csv_row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// Root-mean-square error accumulator (same semantics as the paper's
/// on-arrival RMSE).
#[derive(Debug, Clone, Default)]
pub struct Rmse {
    sum_sq: f64,
    n: u64,
}

impl Rmse {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Rmse::default()
    }

    /// Records one (estimate, exact) pair.
    pub fn record(&mut self, estimate: f64, exact: f64) {
        let d = estimate - exact;
        self.sum_sq += d * d;
        self.n += 1;
    }

    /// The RMSE over everything recorded (0 when empty).
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_sweep_spans_paper_range() {
        let sweep = tau_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0], 1.0);
        assert!((sweep[10] - 2f64.powi(-10)).abs() < 1e-12);
    }

    #[test]
    fn scaled_picks_by_mode() {
        // In the test environment --full is not set.
        assert_eq!(scaled(10, 1000), 10);
    }

    #[test]
    fn rmse_math() {
        let mut r = Rmse::new();
        r.record(2.0, 0.0);
        r.record(0.0, 2.0);
        assert_eq!(r.count(), 2);
        assert!((r.value() - 2.0).abs() < 1e-12);
        assert_eq!(Rmse::new().value(), 0.0);
    }

    #[test]
    fn make_trace_produces_requested_length() {
        let t = make_trace(&TracePreset::tiny(), 1000, 1);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn measure_mpps_is_positive() {
        let mut acc = 0u64;
        let mpps = measure_mpps(10_000, || {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i);
            }
        });
        assert!(mpps > 0.0);
        assert!(acc > 0);
    }
}
