//! # memento-bench
//!
//! Benchmark and figure-regeneration harness for the Memento reproduction.
//!
//! Each figure of the paper's evaluation has a dedicated binary under
//! `src/bin/` that prints the same series the paper plots as CSV on stdout
//! (see `DESIGN.md` §6 for the experiment index and `EXPERIMENTS.md` for the
//! recorded results). The Criterion benches under `benches/` measure the
//! speed comparisons (Figures 5–7) with statistical rigor.
//!
//! All harnesses run at a laptop-friendly scale by default; pass `--full`
//! (or set `MEMENTO_FULL=1`) to use the paper-scale parameters (windows of
//! millions of packets).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;

use std::hash::Hash;
use std::time::Instant;

use memento_baselines::ExactWindowHhh;
use memento_core::traits::{HhhAlgorithm, SlidingWindowEstimator};
use memento_core::TimedWindow;
use memento_hierarchy::Hierarchy;
use memento_sketches::{ExactTimedWindow, ExactWindow};
use memento_traces::{ArrivalModel, Packet, TraceGenerator, TracePreset};

/// True when the harness should run at paper scale (`--full` argument or
/// `MEMENTO_FULL` set to a truthy value — `MEMENTO_FULL=0` explicitly stays
/// at laptop scale).
pub fn full_scale() -> bool {
    full_scale_from(
        std::env::args(),
        std::env::var("MEMENTO_FULL").ok().as_deref(),
    )
}

/// Pure core of [`full_scale`]: decides from an argument list and the value
/// of `MEMENTO_FULL` (if set). The env var is truthy unless it is one of the
/// usual falsy spellings — a seed-era bug treated *any* set value,
/// including `0`, as paper scale.
pub fn full_scale_from<I: IntoIterator<Item = String>>(args: I, var: Option<&str>) -> bool {
    args.into_iter().any(|a| a == "--full") || var.map(is_truthy).unwrap_or(false)
}

/// The workspace's one truthiness rule for environment toggles
/// (`MEMENTO_FULL`, `PERF_GATE_SKIP_*`): everything is truthy except the
/// usual falsy spellings (empty, `0`, `false`, `no`, `off`,
/// case-insensitive, surrounding whitespace ignored).
pub fn is_truthy(value: &str) -> bool {
    !matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "" | "0" | "false" | "no" | "off"
    )
}

/// Picks between the laptop-scale and paper-scale value of a parameter.
pub fn scaled(small: usize, full: usize) -> usize {
    if full_scale() {
        full
    } else {
        small
    }
}

/// The τ sweep used by the paper's speed/accuracy figures: 2⁰ … 2⁻¹⁰.
pub fn tau_sweep() -> Vec<f64> {
    (0..=10).map(|i| 2f64.powi(-i)).collect()
}

/// The counter configurations of Figure 5.
pub const COUNTER_SWEEP: [usize; 3] = [64, 512, 4096];

/// Pre-generates a packet trace for a preset.
pub fn make_trace(preset: &TracePreset, packets: usize, seed: u64) -> Vec<Packet> {
    let mut gen = TraceGenerator::new(preset.clone(), seed);
    gen.generate(packets)
}

/// Measures the throughput of `run` over `packets` items and returns
/// million packets per second.
pub fn measure_mpps<F: FnMut()>(packets: usize, mut run: F) -> f64 {
    let start = Instant::now();
    run();
    let elapsed = start.elapsed().as_secs_f64();
    packets as f64 / elapsed / 1e6
}

// ---------------------------------------------------------------------------
// Generic drivers. Every figure harness drives its algorithms through these,
// so adding an algorithm to a comparison means implementing a trait, not
// writing another per-algorithm loop.
// ---------------------------------------------------------------------------

/// Per-packet update throughput of a flow estimator, in million packets per
/// second.
pub fn measure_estimator_mpps<K: Clone>(
    estimator: &mut dyn SlidingWindowEstimator<K>,
    keys: &[K],
) -> f64 {
    measure_mpps(keys.len(), || {
        for key in keys {
            estimator.update(key.clone());
        }
    })
}

/// Batched update throughput of a flow estimator (drives the
/// `update_batch` fast path), in million packets per second. The timed
/// region ends with a `processed()` barrier: for an asynchronous engine
/// (the sharded estimator) that forces in-flight batches to drain, so the
/// number reflects completed work; for single-threaded estimators it is a
/// field read.
pub fn measure_estimator_batch_mpps<K: Clone>(
    estimator: &mut dyn SlidingWindowEstimator<K>,
    keys: &[K],
) -> f64 {
    measure_mpps(keys.len(), || {
        estimator.update_batch(keys);
        let _ = estimator.processed();
    })
}

/// Per-packet update throughput of an HHH algorithm, in million packets per
/// second.
pub fn measure_hhh_mpps<Hi: Hierarchy>(
    algorithm: &mut dyn HhhAlgorithm<Hi>,
    items: &[Hi::Item],
) -> f64 {
    measure_mpps(items.len(), || {
        for &item in items {
            algorithm.update(item);
        }
    })
}

/// The paper's On Arrival error model for flow estimators: before each
/// probed arrival, the arriving packet's flow is estimated and compared
/// against an exact sliding window of `window` packets. The first `window`
/// packets warm up; afterwards every `probe_every`-th arrival is scored.
pub fn on_arrival_rmse<K: Eq + Hash + Clone>(
    estimator: &mut dyn SlidingWindowEstimator<K>,
    keys: &[K],
    window: usize,
    probe_every: usize,
) -> Rmse {
    assert!(probe_every > 0, "probe interval must be positive");
    let mut exact = ExactWindow::new(window);
    let mut rmse = Rmse::new();
    for (n, key) in keys.iter().enumerate() {
        if n > window && n % probe_every == 0 {
            rmse.record(estimator.estimate(key), exact.query(key) as f64);
        }
        estimator.update(key.clone());
        exact.add(key.clone());
    }
    rmse
}

/// The On Arrival error model on the time plane (the gate's
/// `bursty-replay` row): before each probed arrival the arriving packet's
/// flow is estimated from the grain-mapped [`TimedWindow`] and compared
/// against an [`ExactTimedWindow`] oracle spanning the same `window_ticks`
/// — the true timestamp-eviction window the grain clock quantizes.
/// Arrivals inside the first `window_ticks` of the clock warm up;
/// afterwards every `probe_every`-th arrival is scored. `arrivals` is a
/// `(nanos, flow)` sequence, monotone non-decreasing in time.
pub fn on_arrival_rmse_timed<E: SlidingWindowEstimator<u64>>(
    timed: &mut TimedWindow<u64, E>,
    arrivals: &[(u64, u64)],
    probe_every: usize,
) -> Rmse {
    assert!(probe_every > 0, "probe interval must be positive");
    let window_ticks = timed.clock().map().window_ticks();
    let mut oracle: ExactTimedWindow<u64> = ExactTimedWindow::new(window_ticks);
    let mut rmse = Rmse::new();
    for (n, &(t, key)) in arrivals.iter().enumerate() {
        if t > window_ticks && n % probe_every == 0 {
            oracle.advance_to(t);
            let exact = oracle.query(&key) as f64;
            rmse.record(timed.query_at(t).estimate(&key), exact);
        }
        timed.record_at(key, t);
        oracle.add_at(key, t);
    }
    rmse
}

/// Stamps a packet trace with the gate's `bursty-replay` arrival clock: the
/// first half arrives as idle-gap/flood bursts (stressing the wholesale
/// clear and the schedule-overrun re-anchor), the second half as a diurnal
/// fast/slow rate rotation, with the second segment's clock continuing from
/// the end of the first. Returns monotone `(nanos, flow)` arrivals.
pub fn stamp_bursty_then_diurnal(
    packets: &[Packet],
    bursty: ArrivalModel,
    diurnal: ArrivalModel,
    seed: u64,
) -> Vec<(u64, u64)> {
    let mid = packets.len() / 2;
    let (front, back) = packets.split_at(mid);
    let mut arrivals: Vec<(u64, u64)> = bursty
        .stamp(front, seed)
        .iter()
        .map(|tp| (tp.nanos, tp.packet.flow()))
        .collect();
    let offset = arrivals.last().map_or(0, |&(t, _)| t);
    arrivals.extend(
        diurnal
            .stamp(back, seed.wrapping_add(1))
            .iter()
            .map(|tp| (offset.saturating_add(tp.nanos), tp.packet.flow())),
    );
    arrivals
}

/// On Arrival error for HHH algorithms, per prefix level: before each probed
/// arrival, every algorithm estimates each of the arriving packet's
/// prefixes against an exact sliding window of `window` packets. Interval
/// algorithms ([`HhhAlgorithm::is_interval`]) are reset every `window`
/// packets, as in §6.3.1. Returns one `Vec<Rmse>` (indexed by prefix level)
/// per algorithm, in input order.
pub fn on_arrival_hhh_rmse<Hi: Hierarchy>(
    hier: &Hi,
    algorithms: &mut [&mut dyn HhhAlgorithm<Hi>],
    items: &[Hi::Item],
    window: usize,
    probe_every: usize,
) -> Vec<Vec<Rmse>>
where
    Hi::Prefix: Hash,
{
    assert!(probe_every > 0, "probe interval must be positive");
    let h = hier.h();
    let mut oracle = ExactWindowHhh::new(hier.clone(), window);
    let mut rmse = vec![vec![Rmse::new(); h]; algorithms.len()];
    for (n, &item) in items.iter().enumerate() {
        if n > window && n % probe_every == 0 {
            for level in 0..h {
                let prefix = hier.prefix_at(item, level);
                let exact = oracle.frequency(&prefix) as f64;
                for (alg, acc) in algorithms.iter().zip(rmse.iter_mut()) {
                    acc[level].record(alg.estimate(&prefix), exact);
                }
            }
        }
        for alg in algorithms.iter_mut() {
            alg.update(item);
        }
        oracle.update(item);
        if (n + 1) % window == 0 {
            for alg in algorithms.iter_mut() {
                if alg.is_interval() {
                    alg.reset_interval();
                }
            }
        }
    }
    rmse
}

/// Prints a CSV header line.
pub fn csv_header(columns: &[&str]) {
    println!("{}", columns.join(","));
}

/// Prints one CSV row from string-able cells.
pub fn csv_row(cells: &[String]) {
    println!("{}", cells.join(","));
}

/// Root-mean-square error accumulator (same semantics as the paper's
/// on-arrival RMSE).
#[derive(Debug, Clone, Default)]
pub struct Rmse {
    sum_sq: f64,
    n: u64,
}

impl Rmse {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Rmse::default()
    }

    /// Records one (estimate, exact) pair.
    pub fn record(&mut self, estimate: f64, exact: f64) {
        let d = estimate - exact;
        self.sum_sq += d * d;
        self.n += 1;
    }

    /// The RMSE over everything recorded (0 when empty).
    pub fn value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_sweep_spans_paper_range() {
        let sweep = tau_sweep();
        assert_eq!(sweep.len(), 11);
        assert_eq!(sweep[0], 1.0);
        assert!((sweep[10] - 2f64.powi(-10)).abs() < 1e-12);
    }

    #[test]
    fn scaled_picks_by_mode() {
        // In the test environment --full is not set.
        assert_eq!(scaled(10, 1000), 10);
    }

    #[test]
    fn full_scale_honors_falsy_env_values() {
        let no_args = Vec::<String>::new();
        // Unset, and every falsy spelling: laptop scale.
        assert!(!full_scale_from(no_args.clone(), None));
        for falsy in ["", "0", "false", "no", "off", " 0 ", "FALSE", "Off"] {
            assert!(!full_scale_from(no_args.clone(), Some(falsy)), "{falsy:?}");
        }
        // Any other value: paper scale.
        for truthy in ["1", "true", "yes", "on", "2", "full"] {
            assert!(full_scale_from(no_args.clone(), Some(truthy)), "{truthy:?}");
        }
        // --full wins regardless of the env var.
        let args = vec!["bin".to_string(), "--full".to_string()];
        assert!(full_scale_from(args, Some("0")));
    }

    #[test]
    fn rmse_math() {
        let mut r = Rmse::new();
        r.record(2.0, 0.0);
        r.record(0.0, 2.0);
        assert_eq!(r.count(), 2);
        assert!((r.value() - 2.0).abs() < 1e-12);
        assert_eq!(Rmse::new().value(), 0.0);
    }

    #[test]
    fn make_trace_produces_requested_length() {
        let t = make_trace(&TracePreset::tiny(), 1000, 1);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn measure_mpps_is_positive() {
        let mut acc = 0u64;
        let mpps = measure_mpps(10_000, || {
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i);
            }
        });
        assert!(mpps > 0.0);
        assert!(acc > 0);
    }

    #[test]
    fn generic_estimator_drivers_process_every_packet() {
        use memento_core::{Memento, WindowQuery};
        let keys: Vec<u64> = make_trace(&TracePreset::tiny(), 5_000, 2)
            .iter()
            .map(Packet::flow)
            .collect();
        let mut memento: Memento<u64> = Memento::new(64, 2_000, 0.5, 1);
        let mpps = measure_estimator_mpps(&mut memento, &keys);
        assert!(mpps > 0.0);
        assert_eq!(WindowQuery::processed(&memento), 5_000);
        let mut batched: Memento<u64> = Memento::new(64, 2_000, 0.5, 1);
        let mpps = measure_estimator_batch_mpps(&mut batched, &keys);
        assert!(mpps > 0.0);
        assert_eq!(WindowQuery::processed(&batched), 5_000);
    }

    #[test]
    fn stamp_bursty_then_diurnal_is_monotone_and_complete() {
        let pkts = make_trace(&TracePreset::tiny(), 1_000, 9);
        let arrivals = stamp_bursty_then_diurnal(
            &pkts,
            ArrivalModel::Bursty {
                burst_len: 100,
                flood_gap_nanos: 50,
                idle_nanos: 100_000,
            },
            ArrivalModel::Diurnal {
                fast_gap_nanos: 50,
                slow_gap_nanos: 5_000,
                period: 100,
            },
            9,
        );
        assert_eq!(arrivals.len(), pkts.len());
        assert!(arrivals.windows(2).all(|w| w[0].0 <= w[1].0));
        // The keys are the trace's flows, in order.
        assert!(arrivals
            .iter()
            .zip(&pkts)
            .all(|(&(_, flow), p)| flow == p.flow()));
        // Stamping is deterministic.
        let again = stamp_bursty_then_diurnal(
            &pkts,
            ArrivalModel::Bursty {
                burst_len: 100,
                flood_gap_nanos: 50,
                idle_nanos: 100_000,
            },
            ArrivalModel::Diurnal {
                fast_gap_nanos: 50,
                slow_gap_nanos: 5_000,
                period: 100,
            },
            9,
        );
        assert_eq!(arrivals, again);
    }

    #[test]
    fn timed_on_arrival_rmse_stays_within_the_quantization_sandwich() {
        // One key every 10 ticks; 100 grains of span 10 over a 1000-tick
        // window with one position per grain, so the provisioning exactly
        // matches the arrival rate (no schedule overrun). The grained
        // estimate then stays within a couple of grains of the time
        // oracle, bounding the RMSE by the quantization alone.
        let arrivals: Vec<(u64, u64)> = (1..=2_000u64).map(|i| (i * 10, 42)).collect();
        let mut timed = TimedWindow::with_grains(ExactWindow::new(100), 1_000, 100, 100);
        let rmse = on_arrival_rmse_timed(&mut timed, &arrivals, 7);
        assert!(rmse.count() > 0);
        assert!(
            rmse.value() <= 4.0,
            "quantization error blew up: {}",
            rmse.value()
        );
    }

    #[test]
    fn on_arrival_rmse_is_zero_for_an_exact_estimator() {
        let keys: Vec<u64> = make_trace(&TracePreset::tiny(), 4_000, 3)
            .iter()
            .map(Packet::flow)
            .collect();
        let mut exact: ExactWindow<u64> = ExactWindow::new(1_000);
        let rmse = on_arrival_rmse(&mut exact, &keys, 1_000, 10);
        assert!(rmse.count() > 0);
        assert_eq!(rmse.value(), 0.0);
    }

    #[test]
    fn hhh_driver_scores_all_algorithms_and_resets_interval_ones() {
        use memento_baselines::Mst;
        use memento_core::HMemento;
        use memento_hierarchy::SrcHierarchy;
        let hier = SrcHierarchy;
        let items: Vec<u32> = make_trace(&TracePreset::tiny(), 6_000, 5)
            .iter()
            .map(|p| p.src)
            .collect();
        let window = 2_000;
        let mut hm = HMemento::new(hier, 512, window, 1.0, 0.01, 1);
        let mut mst = Mst::new(hier, 128);
        let rmse = on_arrival_hhh_rmse(
            &hier,
            &mut [&mut hm as &mut dyn HhhAlgorithm<_>, &mut mst],
            &items,
            window,
            20,
        );
        assert_eq!(rmse.len(), 2);
        assert_eq!(rmse[0].len(), hier.h());
        assert!(rmse[0][0].count() > 0);
        // The interval algorithm was reset at each window boundary, so its
        // interval only covers the tail of the trace.
        assert!(Mst::processed(&mst) < items.len() as u64);
        // The exact-by-construction /0 root estimate of MST right after a
        // reset is small, but every algorithm was scored the same number of
        // times.
        assert_eq!(rmse[0][0].count(), rmse[1][0].count());
    }
}
