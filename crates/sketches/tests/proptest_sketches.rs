//! Property-based tests for the counting substrates.

use std::collections::HashMap;

use memento_sketches::{ExactWindow, OverflowQueue, SpaceSaving};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Space Saving never underestimates and overestimates by at most N/k.
    #[test]
    fn space_saving_error_bounds(
        stream in prop::collection::vec(0u32..64, 1..2000),
        counters in 4usize..64,
    ) {
        let mut ss = SpaceSaving::new(counters);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        for &x in &stream {
            ss.add(x);
            *truth.entry(x).or_insert(0) += 1;
        }
        let n = stream.len() as u64;
        for (key, &real) in &truth {
            let est = ss.query(key);
            prop_assert!(est >= real, "underestimate for {key}: {est} < {real}");
            prop_assert!(est - real <= n / counters as u64 + 1,
                "overestimate too large for {key}: est={est} real={real}");
            prop_assert!(ss.query_lower(key) <= real);
        }
    }

    /// The estimated total mass of all counters never exceeds the stream length.
    #[test]
    fn space_saving_mass_conservation(
        stream in prop::collection::vec(0u32..32, 1..1000),
        counters in 2usize..32,
    ) {
        let mut ss = SpaceSaving::new(counters);
        for &x in &stream {
            ss.add(x);
        }
        let mass: u64 = ss.snapshot().iter().map(|c| c.count).sum();
        // Every increment adds exactly one to exactly one counter, so the sum
        // of counters equals the number of processed items... except counters
        // inherit mass on eviction; the invariant that always holds is that the
        // *minimum* counter is at most N/k and the total of (count - error)
        // is at most N.
        let lower_mass: u64 = ss.snapshot().iter().map(|c| c.count - c.error).sum();
        prop_assert!(lower_mass <= stream.len() as u64);
        prop_assert!(mass >= lower_mass);
        prop_assert!(ss.min_count() <= stream.len() as u64 / counters as u64 + 1);
    }

    /// ExactWindow agrees with a naive re-count of the suffix.
    #[test]
    fn exact_window_matches_naive(
        stream in prop::collection::vec(0u32..16, 1..500),
        window in 1usize..64,
    ) {
        let mut w = ExactWindow::new(window);
        for &x in &stream {
            w.add(x);
        }
        let start = stream.len().saturating_sub(window);
        let mut naive: HashMap<u32, u64> = HashMap::new();
        for &x in &stream[start..] {
            *naive.entry(x).or_insert(0) += 1;
        }
        for key in 0u32..16 {
            prop_assert_eq!(w.query(&key), naive.get(&key).copied().unwrap_or(0));
        }
        prop_assert_eq!(w.occupancy(), stream.len().min(window));
    }

    /// The overflow queue releases exactly what was pushed, in FIFO order per
    /// block, and never loses items when rotation returns the undrained rest.
    #[test]
    fn overflow_queue_conserves_items(
        ops in prop::collection::vec((0u8..3, 0u32..100), 1..500),
        blocks in 1usize..8,
    ) {
        let mut q = OverflowQueue::new(blocks);
        let mut pushed = 0usize;
        let mut released = 0usize;
        for &(op, val) in &ops {
            match op {
                0 => { q.push_current(val); pushed += 1; }
                1 => { if q.pop_oldest().is_some() { released += 1; } }
                _ => { released += q.rotate().len(); }
            }
        }
        prop_assert_eq!(pushed, released + q.pending());
    }
}
