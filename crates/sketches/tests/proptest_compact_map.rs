//! Differential property tests for the hot-path layer (PRs 5 and 6).
//!
//! Three suites:
//!
//! * [`CompactMap`] vs `std::collections::HashMap` under random
//!   insert/get/remove/iterate sequences — including a removal-heavy
//!   variant that keeps the table churning, which is exactly the regime
//!   backward-shift deletion exists for (a shift bug shows up as a key
//!   becoming unreachable or a stale value resurfacing after later
//!   inserts probe over the hole).
//! * The group-scan `probe` (SSE2 on x86_64, SWAR elsewhere) vs the
//!   forced-SWAR `probe_swar` vs the byte-at-a-time `probe_reference` on
//!   arbitrary insert/remove/get interleavings, under backward-shift
//!   churn, and on tables filled to the full 7/8 load cap: all scans
//!   must return the *identical* `Ok(slot)` / `Err((empty, fp))` for
//!   every key, present or absent.
//! * [`StreamSummary`] (CompactMap index + hot/cold SoA slots) vs a
//!   test-local copy of the seed-era implementation (AoS slots,
//!   `HashMap` index): same operation sequences must produce identical
//!   counts, error terms, evicted keys and minimum counters — the
//!   refactor is memory layout only.

use std::collections::HashMap;

use memento_sketches::{CompactMap, StreamSummary};
use proptest::prelude::*;

/// One differential step: both maps get the op, both must agree on every
/// observable.
fn run_map_ops(ops: &[(u8, u8)]) {
    let mut compact: CompactMap<u64, u32> = CompactMap::new();
    let mut reference: HashMap<u64, u32> = HashMap::new();
    for (step, &(op, key)) in ops.iter().enumerate() {
        let key = key as u64;
        match op % 4 {
            0 => {
                let value = step as u32;
                assert_eq!(
                    compact.insert(key, value),
                    reference.insert(key, value),
                    "insert({key}) disagreed at step {step}"
                );
            }
            1 => {
                assert_eq!(
                    compact.remove(&key),
                    reference.remove(&key),
                    "remove({key}) disagreed at step {step}"
                );
            }
            2 => {
                *compact.get_or_insert_with(key, || 100) += 1;
                *reference.entry(key).or_insert(100) += 1;
            }
            _ => {
                if let Some(v) = compact.get_mut(&key) {
                    *v = v.wrapping_add(7);
                }
                if let Some(v) = reference.get_mut(&key) {
                    *v = v.wrapping_add(7);
                }
            }
        }
        assert_eq!(compact.get(&key), reference.get(&key));
        assert_eq!(
            compact.len(),
            reference.len(),
            "len diverged at step {step}"
        );
    }
    // Full-table agreement, both directions: iterate the compact map and
    // compare entry-by-entry, then sizes (so neither side holds extras).
    let mut from_compact: Vec<(u64, u32)> = compact.iter().map(|(k, v)| (*k, *v)).collect();
    let mut from_reference: Vec<(u64, u32)> = reference.iter().map(|(k, v)| (*k, *v)).collect();
    from_compact.sort_unstable();
    from_reference.sort_unstable();
    assert_eq!(from_compact, from_reference);
    for (key, value) in &from_reference {
        assert_eq!(compact.get(key), Some(value));
        assert!(compact.contains_key(key));
    }
}

/// Asserts all three probe paths agree on `key` — the active group scan
/// (`probe`: SSE2 on x86_64, SWAR elsewhere), the portable SWAR backend
/// forced via `probe_swar`, and the byte-scan `probe_reference` — same hit
/// slot on a present key, same terminating empty slot and fingerprint on
/// an absent one. On an SSE2 build this pins SIMD ≡ SWAR ≡ byte loop in
/// one run; on the `memento_no_simd` / non-x86_64 build `probe` *is* the
/// SWAR backend and the assertion degenerates to the two-way pin.
fn assert_probes_agree(map: &CompactMap<u64, u32>, key: u64, context: &str) {
    assert_eq!(
        map.probe(&key),
        map.probe_reference(&key),
        "group probe diverges from the byte scan for key {key} ({context})"
    );
    assert_eq!(
        map.probe_swar(&key),
        map.probe_reference(&key),
        "SWAR probe diverges from the byte scan for key {key} ({context})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Mixed op mix over a small key universe (dense collisions in the
    /// 8-slot starting table, growth, overwrite).
    #[test]
    fn compact_map_matches_hashmap(
        ops in prop::collection::vec((0u8..8, 0u8..48), 1..600),
    ) {
        run_map_ops(&ops);
    }

    /// SWAR ≡ byte scan under arbitrary insert/remove/upsert interleavings
    /// (removal-weighted, so backward-shift churn keeps rearranging the
    /// clusters the scans walk): after every op, probe a window of keys
    /// around the touched one — present, absent, and just-removed alike.
    #[test]
    fn swar_probe_equals_reference_under_churn(
        ops in prop::collection::vec(
            prop_oneof![
                2 => (Just(1u8), 0u8..32),          // remove
                2 => (Just(0u8), 0u8..32),          // insert
                1 => (Just(2u8), 0u8..32),          // upsert-increment
            ],
            1..500,
        ),
    ) {
        let ops: Vec<(u8, u8)> = ops;
        let mut map: CompactMap<u64, u32> = CompactMap::new();
        for (step, &(op, key)) in ops.iter().enumerate() {
            let key = key as u64;
            match op {
                0 => {
                    map.insert(key, step as u32);
                }
                1 => {
                    map.remove(&key);
                }
                _ => {
                    *map.get_or_insert_with(key, || 0) += 1;
                }
            }
            for probe_key in key.saturating_sub(3)..=key + 3 {
                assert_probes_agree(&map, probe_key, &format!("after step {step}"));
            }
        }
        for probe_key in 0u64..36 {
            assert_probes_agree(&map, probe_key, "final table");
        }
    }

    /// SWAR ≡ byte scan on tables at the full 7/8 load cap — the longest
    /// clusters and the fewest empty lanes the scan can ever meet — and
    /// again after backward-shift churn removes every third key.
    #[test]
    fn swar_probe_equals_reference_at_full_load(
        base in 0u64..u64::MAX,
        capacity in 1usize..160,
    ) {
        let mut map: CompactMap<u64, u32> = CompactMap::with_capacity(capacity);
        let full = map.capacity() as u64; // exactly the 7/8 load limit
        for i in 0..full {
            map.insert(base.wrapping_add(i), i as u32);
        }
        prop_assert_eq!(map.len() as u64, full);
        for i in 0..full + 16 {
            assert_probes_agree(&map, base.wrapping_add(i), "at 7/8 load");
        }
        for i in (0..full).step_by(3) {
            map.remove(&base.wrapping_add(i));
        }
        for i in 0..full + 16 {
            assert_probes_agree(&map, base.wrapping_add(i), "after churn");
        }
    }

    /// Removal-heavy churn: half the ops are removes, so clusters form and
    /// collapse constantly — pins backward-shift deletion (no tombstone
    /// decay, no lost keys behind a hole).
    #[test]
    fn compact_map_survives_removal_churn(
        ops in prop::collection::vec(
            prop_oneof![
                2 => (Just(1u8), 0u8..24),          // remove
                1 => (Just(0u8), 0u8..24),          // insert
                1 => (Just(2u8), 0u8..24),          // upsert-increment
            ],
            1..800,
        ),
    ) {
        run_map_ops(&ops);
    }

    /// The new StreamSummary is the old StreamSummary with a different
    /// memory layout: identical observable behaviour on any op sequence.
    #[test]
    fn stream_summary_matches_seed_implementation(
        ops in prop::collection::vec((0u8..4, 0u8..32), 1..500),
        capacity in 1usize..12,
    ) {
        let mut new = StreamSummary::new(capacity);
        let mut old = seed_summary::StreamSummary::new(capacity);
        for &(op, key) in &ops {
            let key = key as u32;
            match op {
                0 => {
                    // The Space Saving policy step, as SpaceSaving::add
                    // drives it.
                    let got = if let Some(count) = new.increment(&key) {
                        (count, None)
                    } else if !new.is_full() {
                        (new.insert_new(key).expect("not full"), None)
                    } else {
                        let (count, evicted) = new.replace_min(key);
                        (count, Some(evicted))
                    };
                    let want = if old.contains(&key) {
                        (old.increment(&key).expect("present"), None)
                    } else if !old.is_full() {
                        (old.insert_new(key).expect("not full"), None)
                    } else {
                        let (count, evicted) = old.replace_min(key);
                        (count, Some(evicted))
                    };
                    // Counts, and the *identity* of the evicted key (the
                    // bucket-head choice among ties must survive the SoA
                    // split — Memento estimates are bit-for-bit only if it
                    // does).
                    prop_assert_eq!(got, want);
                }
                1 => {
                    prop_assert_eq!(new.get(&key), old.get(&key));
                    prop_assert_eq!(new.get_with_error(&key), old.get_with_error(&key));
                }
                2 => {
                    prop_assert_eq!(new.min_count(), old.min_count());
                    prop_assert_eq!(new.len(), old.len());
                    prop_assert_eq!(new.is_full(), old.is_full());
                }
                _ => {
                    let mut lhs: Vec<(u32, u64, u64)> =
                        new.iter().map(|(k, c, e)| (*k, c, e)).collect();
                    let mut rhs: Vec<(u32, u64, u64)> =
                        old.iter().map(|(k, c, e)| (*k, c, e)).collect();
                    lhs.sort_unstable();
                    rhs.sort_unstable();
                    prop_assert_eq!(lhs, rhs);
                }
            }
        }
        new.check_invariants();
        let mut lhs: Vec<(u32, u64, u64)> = new.iter().map(|(k, c, e)| (*k, c, e)).collect();
        let mut rhs: Vec<(u32, u64, u64)> = old.iter().map(|(k, c, e)| (*k, c, e)).collect();
        lhs.sort_unstable();
        rhs.sort_unstable();
        prop_assert_eq!(lhs, rhs);
    }
}

/// The seed-era stream summary, verbatim in structure: array-of-structs
/// counter slots and a SipHash `HashMap` key index. Kept here (test-only)
/// as the differential reference for the SoA/CompactMap rewrite.
mod seed_summary {
    use std::collections::HashMap;
    use std::hash::Hash;

    const NIL: usize = usize::MAX;

    #[derive(Debug, Clone)]
    struct CounterSlot<K> {
        key: Option<K>,
        count: u64,
        error: u64,
        bucket: usize,
        prev: usize,
        next: usize,
    }

    #[derive(Debug, Clone)]
    struct Bucket {
        count: u64,
        child: usize,
        prev: usize,
        next: usize,
        in_use: bool,
    }

    #[derive(Debug, Clone)]
    pub struct StreamSummary<K: Eq + Hash + Clone> {
        slots: Vec<CounterSlot<K>>,
        buckets: Vec<Bucket>,
        free_buckets: Vec<usize>,
        min_bucket: usize,
        index: HashMap<K, usize>,
        capacity: usize,
    }

    impl<K: Eq + Hash + Clone> StreamSummary<K> {
        pub fn new(capacity: usize) -> Self {
            assert!(capacity > 0);
            StreamSummary {
                slots: Vec::with_capacity(capacity),
                buckets: Vec::with_capacity(capacity + 1),
                free_buckets: Vec::new(),
                min_bucket: NIL,
                index: HashMap::with_capacity(capacity * 2),
                capacity,
            }
        }

        pub fn len(&self) -> usize {
            self.index.len()
        }

        pub fn is_full(&self) -> bool {
            self.index.len() >= self.capacity
        }

        pub fn min_count(&self) -> u64 {
            if self.min_bucket == NIL {
                0
            } else {
                self.buckets[self.min_bucket].count
            }
        }

        pub fn get(&self, key: &K) -> Option<u64> {
            self.index.get(key).map(|&slot| self.slots[slot].count)
        }

        pub fn get_with_error(&self, key: &K) -> Option<(u64, u64)> {
            self.index
                .get(key)
                .map(|&slot| (self.slots[slot].count, self.slots[slot].error))
        }

        pub fn contains(&self, key: &K) -> bool {
            self.index.contains_key(key)
        }

        pub fn increment(&mut self, key: &K) -> Option<u64> {
            let slot = *self.index.get(key)?;
            Some(self.increment_slot(slot))
        }

        pub fn insert_new(&mut self, key: K) -> Option<u64> {
            if self.is_full() || self.index.contains_key(&key) {
                return None;
            }
            let slot = self.slots.len();
            self.slots.push(CounterSlot {
                key: Some(key.clone()),
                count: 0,
                error: 0,
                bucket: NIL,
                prev: NIL,
                next: NIL,
            });
            self.index.insert(key, slot);
            Some(self.increment_slot(slot))
        }

        pub fn replace_min(&mut self, key: K) -> (u64, K) {
            assert!(self.min_bucket != NIL);
            let slot = self.buckets[self.min_bucket].child;
            let old_key = self.slots[slot].key.clone().expect("occupied");
            assert!(!self.index.contains_key(&key));
            self.index.remove(&old_key);
            self.slots[slot].error = self.slots[slot].count;
            self.slots[slot].key = Some(key.clone());
            self.index.insert(key, slot);
            (self.increment_slot(slot), old_key)
        }

        pub fn iter(&self) -> impl Iterator<Item = (&K, u64, u64)> {
            self.slots
                .iter()
                .filter_map(|s| s.key.as_ref().map(|k| (k, s.count, s.error)))
        }

        fn alloc_bucket(&mut self, count: u64) -> usize {
            if let Some(idx) = self.free_buckets.pop() {
                let b = &mut self.buckets[idx];
                b.count = count;
                b.child = NIL;
                b.prev = NIL;
                b.next = NIL;
                b.in_use = true;
                idx
            } else {
                self.buckets.push(Bucket {
                    count,
                    child: NIL,
                    prev: NIL,
                    next: NIL,
                    in_use: true,
                });
                self.buckets.len() - 1
            }
        }

        fn free_bucket(&mut self, bucket: usize) {
            let (prev, next) = (self.buckets[bucket].prev, self.buckets[bucket].next);
            if prev != NIL {
                self.buckets[prev].next = next;
            } else if self.min_bucket == bucket {
                self.min_bucket = next;
            }
            if next != NIL {
                self.buckets[next].prev = prev;
            }
            self.buckets[bucket].in_use = false;
            self.buckets[bucket].prev = NIL;
            self.buckets[bucket].next = NIL;
            self.free_buckets.push(bucket);
        }

        fn detach_slot(&mut self, slot: usize) {
            let bucket = self.slots[slot].bucket;
            let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
            if prev != NIL {
                self.slots[prev].next = next;
            } else if bucket != NIL {
                self.buckets[bucket].child = next;
            }
            if next != NIL {
                self.slots[next].prev = prev;
            }
            self.slots[slot].prev = NIL;
            self.slots[slot].next = NIL;
            self.slots[slot].bucket = NIL;
        }

        fn attach_slot(&mut self, slot: usize, bucket: usize) {
            let head = self.buckets[bucket].child;
            self.slots[slot].bucket = bucket;
            self.slots[slot].prev = NIL;
            self.slots[slot].next = head;
            if head != NIL {
                self.slots[head].prev = slot;
            }
            self.buckets[bucket].child = slot;
        }

        fn increment_slot(&mut self, slot: usize) -> u64 {
            let old_bucket = self.slots[slot].bucket;
            let new_count = self.slots[slot].count + 1;
            self.slots[slot].count = new_count;
            let dest = if old_bucket == NIL {
                if self.min_bucket != NIL && self.buckets[self.min_bucket].count == new_count {
                    self.min_bucket
                } else {
                    let b = self.alloc_bucket(new_count);
                    let old_min = self.min_bucket;
                    self.buckets[b].next = old_min;
                    if old_min != NIL {
                        self.buckets[old_min].prev = b;
                    }
                    self.min_bucket = b;
                    b
                }
            } else {
                let next = self.buckets[old_bucket].next;
                if next != NIL && self.buckets[next].count == new_count {
                    next
                } else {
                    let b = self.alloc_bucket(new_count);
                    self.buckets[b].prev = old_bucket;
                    self.buckets[b].next = next;
                    self.buckets[old_bucket].next = b;
                    if next != NIL {
                        self.buckets[next].prev = b;
                    }
                    b
                }
            };
            self.detach_slot(slot);
            self.attach_slot(slot, dest);
            if old_bucket != NIL && self.buckets[old_bucket].child == NIL {
                self.free_bucket(old_bucket);
            }
            new_count
        }
    }
}
