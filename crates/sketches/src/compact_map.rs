//! A flat open-addressing map for the per-packet hot path.
//!
//! [`CompactMap`] replaces `std::collections::HashMap` on the structures a
//! Full update touches (the [`StreamSummary`](crate::StreamSummary) key
//! index, Memento's overflow table `B`). Design, in order of importance
//! for cache behaviour:
//!
//! * **One-byte control array** (`ctrl`): each slot's occupancy plus a
//!   7-bit *fingerprint* of its key's hash live in a dense `Vec<u8>`, so
//!   a probe sequence walks one cache line of control bytes (64 slots)
//!   before it ever touches a key — the SoA idea of SwissTable/hashbrown,
//!   minus the SIMD and the `unsafe` (the crate forbids unsafe code, so
//!   entries are `Option<(K, V)>` rather than `MaybeUninit`).
//! * **Power-of-two capacity, linear probing**: the bucket index is
//!   `hash & mask` (no integer division) and the probe step is +1, the
//!   friendliest pattern for the prefetcher. The fast hash
//!   ([`crate::fasthash`]) mixes low bits well enough for this to be safe.
//! * **Backward-shift deletion, no tombstones**: removing a key shifts the
//!   displaced tail of its probe cluster back (Knuth's Algorithm R
//!   generalized to circular tables), so heavy churn — Memento retires an
//!   overflow entry for every one it inserts, forever — never decays the
//!   table into a tombstone field that each probe must wade through.
//!
//! The map resizes at 7/8 load; [`CompactMap::with_capacity`] pre-sizes the
//! table so the requested number of keys fits without ever resizing (what
//! the stream-summary index wants: its population is bounded by
//! construction).

use std::hash::Hash;

use crate::fasthash::hash_one;

/// Minimum number of slots (keeps the mask arithmetic trivial and small
/// maps allocation-cheap).
const MIN_SLOTS: usize = 8;

/// Control byte for an empty slot. Fingerprints always have the top bit
/// set, so 0 is unambiguous.
const EMPTY: u8 = 0;

/// A flat, power-of-two, linear-probing hash map with a separate one-byte
/// fingerprint array and backward-shift deletion. See the module docs for
/// the design rationale; see `tests/proptest_compact_map.rs` for the
/// differential suite that pins its behaviour to `std`'s `HashMap`.
#[derive(Debug, Clone)]
pub struct CompactMap<K, V> {
    /// One byte per slot: [`EMPTY`] or `0x80 | (hash >> 48) as u8`
    /// (fingerprint from hash bits 48–54; see [`Self::decompose`] for why
    /// those bits).
    ctrl: Vec<u8>,
    /// The slot payloads, parallel to `ctrl` (`Some` iff `ctrl[i] != EMPTY`).
    entries: Vec<Option<(K, V)>>,
    /// `ctrl.len() - 1`; `ctrl.len()` is a power of two.
    mask: usize,
    /// Occupied slot count.
    len: usize,
}

impl<K: Eq + Hash, V> Default for CompactMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> CompactMap<K, V> {
    /// Creates an empty map with the minimum table size.
    pub fn new() -> Self {
        Self::with_slots(MIN_SLOTS)
    }

    /// Creates a map that can hold `capacity` keys without resizing
    /// (table sized so `capacity` stays within the 7/8 load limit).
    pub fn with_capacity(capacity: usize) -> Self {
        // slots * 7/8 >= capacity  ⇒  slots >= ceil(8c / 7).
        let needed = capacity.saturating_mul(8).div_ceil(7).max(MIN_SLOTS);
        Self::with_slots(needed.next_power_of_two())
    }

    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        let mut entries = Vec::new();
        entries.resize_with(slots, || None);
        CompactMap {
            ctrl: vec![EMPTY; slots],
            entries,
            mask: slots - 1,
            len: 0,
        }
    }

    /// Number of keys in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of keys the map can hold before its next resize.
    pub fn capacity(&self) -> usize {
        self.max_load()
    }

    /// The 7/8-of-slots load limit.
    fn max_load(&self) -> usize {
        let slots = self.ctrl.len();
        slots - slots / 8
    }

    /// Home slot and fingerprint byte for a hash value: index from the low
    /// bits, fingerprint from bits 48–54 (top bit forced on so a
    /// fingerprint never equals [`EMPTY`]). The fingerprint bits are
    /// deliberately disjoint from *both* consumers of the hash's ends: the
    /// low bits index this table, and the topmost bits pick the shard in
    /// [`crate::fasthash::route`] — a fingerprint drawn from either range
    /// would lose entropy exactly when sharding or table growth fixes
    /// those bits per table.
    #[inline]
    fn decompose(&self, hash: u64) -> (usize, u8) {
        ((hash as usize) & self.mask, 0x80 | (hash >> 48) as u8)
    }

    /// Walks `key`'s probe sequence once: `Ok(slot)` when the key is
    /// present, otherwise `Err((empty_slot, fingerprint))` — the
    /// terminating empty slot, which is exactly where a no-resize insert
    /// must place the key (so miss-then-insert pays one walk, not two).
    /// The table is never full (load is capped at 7/8), so the probe
    /// always terminates.
    #[inline]
    fn probe(&self, key: &K) -> Result<usize, (usize, u8)> {
        let (mut i, fp) = self.decompose(hash_one(key));
        loop {
            let c = self.ctrl[i];
            if c == EMPTY {
                return Err((i, fp));
            }
            if c == fp {
                if let Some((k, _)) = &self.entries[i] {
                    if k == key {
                        return Ok(i);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find(&self, key: &K) -> Option<usize> {
        self.probe(key).ok()
    }

    /// Reference to the value stored for `key`.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key)
            .map(|i| &self.entries[i].as_ref().expect("occupied slot").1)
    }

    /// Mutable reference to the value stored for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.find(key)
            .map(|i| &mut self.entries[i].as_mut().expect("occupied slot").1)
    }

    /// True when the map holds `key`.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Writes an absent `key → value` into `slot` (the terminating empty
    /// slot [`Self::probe`] returned) and bumps `len`. The entry goes in
    /// before the control byte so an unwinding value expression cannot
    /// leave a fingerprint over an empty payload.
    #[inline]
    fn occupy(&mut self, slot: usize, fp: u8, key: K, value: V) {
        self.entries[slot] = Some((key, value));
        self.ctrl[slot] = fp;
        self.len += 1;
    }

    /// Installs `key → value` in the first empty slot of its probe
    /// sequence and returns that slot — the re-walking form used when no
    /// prior probe result is valid (after [`Self::grow`] remapped every
    /// slot). Callers guarantee `key` is absent; `len` is not touched
    /// (grow re-installs existing entries).
    #[inline]
    fn install(&mut self, key: K, value: V) -> usize {
        let (mut i, fp) = self.decompose(hash_one(&key));
        while self.ctrl[i] != EMPTY {
            i = (i + 1) & self.mask;
        }
        self.entries[i] = Some((key, value));
        self.ctrl[i] = fp;
        i
    }

    /// Inserts `key → value`; returns the previous value if the key was
    /// already present. One probe walk on every path (the miss walk ends
    /// at the very slot the key goes into, unless the insert triggers a
    /// resize).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.probe(&key) {
            Ok(i) => {
                let slot = self.entries[i].as_mut().expect("occupied slot");
                Some(std::mem::replace(&mut slot.1, value))
            }
            Err((slot, fp)) => {
                if self.len + 1 > self.max_load() {
                    self.grow();
                    self.install(key, value);
                    self.len += 1;
                } else {
                    self.occupy(slot, fp, key, value);
                }
                None
            }
        }
    }

    /// Mutable reference to the value for `key`, inserting
    /// `default()` first when the key is absent (the hot-path shape of
    /// `HashMap::entry(k).or_insert_with(f)`, hashing the key once and
    /// walking the probe sequence once on either path). A panicking
    /// `default` leaves the map unchanged.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.probe(&key) {
            Ok(i) => i,
            Err((slot, fp)) => {
                if self.len + 1 > self.max_load() {
                    // Evaluate the default before growing: an unwinding
                    // default must leave even the allocation untouched.
                    let value = default();
                    self.grow();
                    let slot = self.install(key, value);
                    self.len += 1;
                    slot
                } else {
                    self.occupy(slot, fp, key, default());
                    slot
                }
            }
        };
        &mut self.entries[i].as_mut().expect("occupied slot").1
    }

    /// Removes `key`, returning its value if it was present. Uses
    /// backward-shift deletion: the displaced tail of the probe cluster
    /// moves back over the vacated slot, leaving no tombstone.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.entries[hole].take().expect("occupied slot");
        self.ctrl[hole] = EMPTY;
        self.len -= 1;
        // Knuth's Algorithm R on a circular table: walk the cluster after
        // the hole; any entry whose home position is cyclically outside
        // (hole, j] would become unreachable through the hole — move it
        // into the hole and continue from its old slot.
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            if self.ctrl[j] == EMPTY {
                return Some(value);
            }
            let home = {
                let (k, _) = self.entries[j].as_ref().expect("occupied slot");
                (hash_one(k) as usize) & self.mask
            };
            // Cyclic probe distances from the entry's home: if the hole is
            // strictly closer to home than j is, the hole lies on the
            // entry's probe path and the entry can (and must) fill it.
            let dist_hole = hole.wrapping_sub(home) & self.mask;
            let dist_j = j.wrapping_sub(home) & self.mask;
            if dist_hole < dist_j {
                self.entries[hole] = self.entries[j].take();
                self.ctrl[hole] = self.ctrl[j];
                self.ctrl[j] = EMPTY;
                hole = j;
            }
        }
    }

    /// Removes every key, keeping the allocated table.
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        self.ctrl.fill(EMPTY);
        for slot in &mut self.entries {
            *slot = None;
        }
        self.len = 0;
    }

    /// Iterates over `(&key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (k, v)))
    }

    /// Heap footprint of the table itself in bytes: the control array plus
    /// the slot array, *at the allocated size* (the table never shrinks, so
    /// a churn peak's allocation persists — `len`-based accounting would
    /// understate it).
    pub fn heap_bytes(&self) -> usize {
        self.ctrl.len() * (1 + std::mem::size_of::<Option<(K, V)>>())
    }

    /// Doubles the table and re-inserts every entry.
    fn grow(&mut self) {
        let slots = self.ctrl.len() * 2;
        let old_entries = std::mem::take(&mut self.entries);
        self.ctrl = vec![EMPTY; slots];
        self.entries = Vec::new();
        self.entries.resize_with(slots, || None);
        self.mask = slots - 1;
        for (key, value) in old_entries.into_iter().flatten() {
            self.install(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m: CompactMap<u64, u32> = CompactMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&1) && !m.contains_key(&3));
    }

    #[test]
    fn get_mut_and_entry_shape() {
        let mut m: CompactMap<&str, u32> = CompactMap::new();
        *m.get_or_insert_with("a", || 0) += 1;
        *m.get_or_insert_with("a", || 0) += 1;
        assert_eq!(m.get(&"a"), Some(&2));
        if let Some(v) = m.get_mut(&"a") {
            *v = 9;
        }
        assert_eq!(m.get(&"a"), Some(&9));
    }

    #[test]
    fn remove_returns_value_and_shrinks_len() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        for i in 0..50 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.remove(&25), Some(50));
        assert_eq!(m.remove(&25), None);
        assert_eq!(m.len(), 49);
        for i in 0..50 {
            assert_eq!(m.get(&i).copied(), if i == 25 { None } else { Some(i * 2) });
        }
    }

    #[test]
    fn backward_shift_keeps_clusters_reachable() {
        // Insert enough keys to force long probe clusters in a small table,
        // then delete from the middle of clusters and verify every survivor
        // is still reachable.
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(64);
        for i in 0..60 {
            m.insert(i, i);
        }
        for i in (0..60).step_by(3) {
            assert_eq!(m.remove(&i), Some(i));
        }
        for i in 0..60 {
            let expect = if i % 3 == 0 { None } else { Some(&i) };
            assert_eq!(m.get(&i), expect, "key {i} lost after churn");
        }
        assert_eq!(m.len(), 40);
    }

    #[test]
    fn with_capacity_never_resizes_within_capacity() {
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(4096);
        let slots = m.ctrl.len();
        assert!(m.capacity() >= 4096);
        for i in 0..4096 {
            m.insert(i, i);
        }
        assert_eq!(
            m.ctrl.len(),
            slots,
            "table resized below its stated capacity"
        );
        assert_eq!(m.len(), 4096);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        for i in 0..10_000 {
            m.insert(i, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(&i), Some(&i));
        }
    }

    #[test]
    fn clear_keeps_allocation_and_empties() {
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(100);
        for i in 0..100 {
            m.insert(i, i);
        }
        let slots = m.ctrl.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.ctrl.len(), slots);
        assert_eq!(m.get(&5), None);
        m.insert(5, 5);
        assert_eq!(m.get(&5), Some(&5));
    }

    #[test]
    fn panicking_default_leaves_map_unchanged() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut m: CompactMap<u64, u32> = CompactMap::new();
        m.insert(1, 10);
        let result = catch_unwind(AssertUnwindSafe(|| {
            m.get_or_insert_with(2, || panic!("default exploded"));
        }));
        assert!(result.is_err());
        assert_eq!(m.len(), 1, "len must not count the failed insert");
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&10));
        m.insert(2, 20);
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn panicking_default_at_max_load_leaves_allocation_unchanged() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Fill a fresh map exactly to its load limit so the next miss
        // would grow: a panicking default must fire before the resize.
        let mut m: CompactMap<u64, u32> = CompactMap::new();
        let cap = m.capacity() as u64;
        for i in 0..cap {
            m.insert(i, 0);
        }
        let bytes = m.heap_bytes();
        let result = catch_unwind(AssertUnwindSafe(|| {
            m.get_or_insert_with(cap, || panic!("default exploded"));
        }));
        assert!(result.is_err());
        assert_eq!(m.heap_bytes(), bytes, "table grew for a failed insert");
        assert_eq!(m.len(), cap as usize);
        assert_eq!(m.get(&cap), None);
    }

    #[test]
    fn fingerprints_survive_shard_partitioning() {
        // The fingerprint bits (48–54) must stay uncorrelated with the
        // shard choice: collect the keys shard 0 of 8 owns and require
        // their fingerprint bytes to cover most of the 128-value space
        // (a fingerprint drawn from the route bits would collapse here).
        use crate::fasthash::{hash_one, route};
        let mut fps = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            if route(&i, 8) == 0 {
                fps.insert(0x80u8 | (hash_one(&i) >> 48) as u8);
            }
        }
        assert!(
            fps.len() > 100,
            "only {} of 128 fingerprints inside one shard",
            fps.len()
        );
    }

    #[test]
    fn iter_yields_every_entry_once() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        for i in 0..37 {
            m.insert(i, i + 100);
        }
        let mut seen: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 37);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!((k, v), (i as u64, i as u64 + 100));
        }
    }
}
