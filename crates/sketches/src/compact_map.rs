//! A flat open-addressing map for the per-packet hot path.
//!
//! [`CompactMap`] replaces `std::collections::HashMap` on the structures a
//! Full update touches (the [`StreamSummary`](crate::StreamSummary) key
//! index, Memento's overflow table `B`). Design, in order of importance
//! for cache behaviour:
//!
//! * **One-byte control array** (`ctrl`): each slot's occupancy plus a
//!   7-bit *fingerprint* of its key's hash live in a dense `Vec<u8>`, so
//!   a probe sequence walks one cache line of control bytes (64 slots)
//!   before it ever touches a key — the SoA idea of SwissTable/hashbrown,
//!   with `unsafe` confined to one alignment-free 16-byte load (entries
//!   are `Option<(K, V)>` rather than `MaybeUninit`).
//! * **Group probing**: the probe loop inspects control bytes a *group*
//!   at a time through one small `ProbeGroup` abstraction with two
//!   backends. On x86_64, sixteen bytes load into one SSE2 register and
//!   `_mm_cmpeq_epi8`/`_mm_movemask_epi8` flag fingerprint matches and
//!   empty lanes exactly (the SwissTable scan; the crate's one
//!   memory-touching intrinsic is the 16-byte unaligned load). Everywhere
//!   else — and under `--cfg memento_no_simd`, CI's portable leg — eight
//!   bytes load as one little-endian `u64` and SWAR arithmetic (SIMD
//!   within a register: broadcast the fingerprint, XOR, then the
//!   zero-byte trick `(x - 0x01…) & !x & 0x80…`) flags the same lanes;
//!   empty lanes are `!word & 0x80…` exactly, because fingerprints always
//!   carry the top bit and the empty control byte never does.
//!   `trailing_zeros` turns a flag into a slot index. A short scalar
//!   head (`SCALAR_HEAD` byte compares in probe order) resolves the
//!   1–2-slot probes the load cap makes dominant before any group
//!   machinery runs. The same group scan backs `get`/`insert`/`remove`
//!   (via [`CompactMap::probe`]), the backward-shift cluster walk, and
//!   the first-empty scan; the byte-at-a-time loop survives as
//!   `probe_reference` for the differential property tests, and
//!   `probe_swar` keeps the SWAR backend reachable on SSE2 builds so the
//!   tests pin all three against each other.
//! * **Power-of-two capacity, linear probing**: the bucket index is
//!   `hash & mask` (no integer division) and the probe step is +1, the
//!   friendliest pattern for the prefetcher. The fast hash
//!   ([`crate::fasthash`]) mixes low bits well enough for this to be safe.
//! * **Backward-shift deletion, no tombstones**: removing a key shifts the
//!   displaced tail of its probe cluster back (Knuth's Algorithm R
//!   generalized to circular tables), so heavy churn — Memento retires an
//!   overflow entry for every one it inserts, forever — never decays the
//!   table into a tombstone field that each probe must wade through.
//!
//! The map resizes at 7/8 load; [`CompactMap::with_capacity`] pre-sizes the
//! table so the requested number of keys fits without ever resizing (what
//! the stream-summary index wants: its population is bounded by
//! construction).

use std::hash::Hash;

use crate::fasthash::hash_one;

/// Minimum number of slots. Sized to the *widest* probe group (the
/// 16-lane SSE2 backend), so `ctrl.len()` is always a multiple of every
/// group width and group loads never straddle the end of the array — and
/// the table geometry is identical on every build, whichever backend is
/// active.
const MIN_SLOTS: usize = 16;

/// Control byte for an empty slot. Fingerprints always have the top bit
/// set, so 0 is unambiguous.
const EMPTY: u8 = 0;

/// Control bytes per SWAR group (one `u64`).
const WORD: usize = 8;

/// Probe-order slots the scalar fast head of
/// [`CompactMap::probe_grouped`] covers before the grouped scan takes
/// over. Below [`MIN_SLOTS`] (so the head never laps the table) and
/// sized to the probe lengths the 7/8 load cap makes overwhelmingly
/// common: at the summary index's ~1/2 operating load the mean probe for
/// a present key is ~1.5 slots, so nearly every probe resolves inside
/// the head at byte-loop cost and only displaced clusters pay the group
/// machinery's fixed setup.
const SCALAR_HEAD: usize = 4;

/// Every byte's low bit: the subtrahend of the zero-byte trick and the
/// fingerprint-broadcast multiplier.
const LSB: u64 = 0x0101_0101_0101_0101;

/// Every byte's top bit: where the zero-byte trick and the empty-lane test
/// leave their flags.
const MSB: u64 = 0x8080_8080_8080_8080;

/// Lane flags from a group-wide comparison: one flag per control byte, in
/// lane order. The two backends carry flags differently (MSB-flagged `u64`
/// lanes for SWAR, a dense `movemask` bitmap for SSE2), so the probe loops
/// are written against this trait and monomorphized per backend.
trait LaneMask: Copy {
    /// True when at least one lane is flagged.
    fn any(self) -> bool;
    /// Lane index of the lowest flagged lane (callers check [`Self::any`]
    /// first).
    fn first(self) -> usize;
    /// Clears the lowest flagged lane.
    fn clear_first(self) -> Self;
    /// Keeps only lanes at or above `lane` (the identity at `lane == 0`).
    /// `lane` is always below the group width.
    fn keep_from(self, lane: usize) -> Self;
}

/// A fixed-width view of [`WIDTH`](Self::WIDTH) consecutive control bytes,
/// compared against a fingerprint or [`EMPTY`] across all lanes at once.
///
/// [`Self::match_fp`] may flag false positives *above* the lowest flagged
/// lane (the SWAR backend's borrow propagation); every candidate is
/// rejected by a key comparison, so callers need no exactness there.
/// [`Self::match_empty`] is exact in every lane on both backends.
trait ProbeGroup: Sized {
    /// Control bytes per group: a power of two dividing [`MIN_SLOTS`].
    const WIDTH: usize;
    /// The lane-flag carrier of this backend.
    type Mask: LaneMask;
    /// Loads group `group` (control bytes `group * WIDTH ..`).
    fn load(ctrl: &[u8], group: usize) -> Self;
    /// Flags lanes whose control byte may equal `fp`.
    fn match_fp(&self, fp: u8) -> Self::Mask;
    /// Flags exactly the [`EMPTY`] lanes.
    fn match_empty(&self) -> Self::Mask;
}

/// The portable backend: eight control bytes as one little-endian `u64`.
/// The byte for slot `group * 8 + i` sits in bits `8i..8i+8`, so
/// `trailing_zeros / 8` recovers the lowest flagged lane.
#[derive(Clone, Copy)]
struct SwarGroup(u64);

/// [`SwarGroup`] lane flags: the flagged lanes' top bits ([`MSB`]
/// positions).
#[derive(Clone, Copy)]
struct SwarMask(u64);

impl LaneMask for SwarMask {
    #[inline(always)]
    fn any(self) -> bool {
        self.0 != 0
    }

    #[inline(always)]
    fn first(self) -> usize {
        self.0.trailing_zeros() as usize / 8
    }

    #[inline(always)]
    fn clear_first(self) -> Self {
        SwarMask(self.0 & (self.0 - 1))
    }

    #[inline(always)]
    fn keep_from(self, lane: usize) -> Self {
        SwarMask(self.0 & (!0u64 << (8 * lane)))
    }
}

impl ProbeGroup for SwarGroup {
    const WIDTH: usize = WORD;
    type Mask = SwarMask;

    #[inline(always)]
    fn load(ctrl: &[u8], group: usize) -> Self {
        SwarGroup(u64::from_le_bytes(
            ctrl[group * WORD..(group + 1) * WORD]
                .try_into()
                .expect("ctrl length is a multiple of the group width"),
        ))
    }

    #[inline(always)]
    fn match_fp(&self, fp: u8) -> SwarMask {
        let diff = self.0 ^ ((fp as u64) * LSB);
        SwarMask(diff.wrapping_sub(LSB) & !diff & MSB)
    }

    #[inline(always)]
    fn match_empty(&self) -> SwarMask {
        SwarMask(!self.0 & MSB)
    }
}

/// The x86_64 backend: sixteen control bytes in one SSE2 register,
/// compared with `_mm_cmpeq_epi8` and condensed to a dense lane bitmap by
/// `_mm_movemask_epi8` — exact in every lane, twice the width of the SWAR
/// group. SSE2 is part of the x86_64 baseline, so no runtime feature
/// detection is needed; build with `--cfg memento_no_simd` (CI's `no-simd`
/// leg) to force the portable SWAR backend on x86_64 too.
#[cfg(all(target_arch = "x86_64", not(miri), not(memento_no_simd)))]
mod sse2 {
    use core::arch::x86_64::{
        __m128i, _mm_cmpeq_epi8, _mm_loadu_si128, _mm_movemask_epi8, _mm_set1_epi8,
        _mm_setzero_si128,
    };

    use super::{LaneMask, ProbeGroup};

    /// Sixteen control bytes in an SSE2 register (see the module docs).
    #[derive(Clone, Copy)]
    pub(super) struct Sse2Group(__m128i);

    /// [`Sse2Group`] lane flags: `_mm_movemask_epi8`'s bitmap, one bit per
    /// lane in the low 16 bits.
    #[derive(Clone, Copy)]
    pub(super) struct Sse2Mask(u32);

    impl LaneMask for Sse2Mask {
        #[inline(always)]
        fn any(self) -> bool {
            self.0 != 0
        }

        #[inline(always)]
        fn first(self) -> usize {
            self.0.trailing_zeros() as usize
        }

        #[inline(always)]
        fn clear_first(self) -> Self {
            Sse2Mask(self.0 & (self.0 - 1))
        }

        #[inline(always)]
        fn keep_from(self, lane: usize) -> Self {
            Sse2Mask(self.0 & (!0u32 << lane))
        }
    }

    impl ProbeGroup for Sse2Group {
        const WIDTH: usize = 16;
        type Mask = Sse2Mask;

        #[inline(always)]
        fn load(ctrl: &[u8], group: usize) -> Self {
            let bytes = &ctrl[group * Self::WIDTH..(group + 1) * Self::WIDTH];
            // SAFETY: the slice index above bounds-checks that 16 bytes are
            // readable at `bytes.as_ptr()`, `_mm_loadu_si128` carries no
            // alignment requirement, and SSE2 is statically part of the
            // x86_64 baseline this module is gated on. This is the map's
            // only memory-touching intrinsic.
            #[allow(unsafe_code)]
            let vector = unsafe { _mm_loadu_si128(bytes.as_ptr().cast()) };
            Sse2Group(vector)
        }

        #[inline(always)]
        fn match_fp(&self, fp: u8) -> Sse2Mask {
            // SAFETY: pure value operations on registers (no memory
            // access); SSE2 is statically part of the x86_64 baseline this
            // module is gated on, so the required target feature is
            // always present.
            #[allow(unsafe_code)]
            let mask =
                unsafe { _mm_movemask_epi8(_mm_cmpeq_epi8(self.0, _mm_set1_epi8(fp as i8))) };
            Sse2Mask(mask as u32)
        }

        #[inline(always)]
        fn match_empty(&self) -> Sse2Mask {
            // SAFETY: as in `match_fp` — value operations only, and the
            // sse2 target feature is unconditionally present on x86_64.
            #[allow(unsafe_code)]
            let mask = unsafe { _mm_movemask_epi8(_mm_cmpeq_epi8(self.0, _mm_setzero_si128())) };
            Sse2Mask(mask as u32)
        }
    }
}

/// The probe-group backend the hot paths use: SSE2 on x86_64 (16 lanes),
/// the portable SWAR word elsewhere (8 lanes). [`CompactMap::probe_swar`]
/// keeps the SWAR backend reachable on every build for the differential
/// tests.
#[cfg(all(target_arch = "x86_64", not(miri), not(memento_no_simd)))]
type ActiveGroup = sse2::Sse2Group;
#[cfg(not(all(target_arch = "x86_64", not(miri), not(memento_no_simd))))]
type ActiveGroup = SwarGroup;

/// Probe-shape statistics of a live [`CompactMap`], from
/// [`CompactMap::probe_stats`]. "Probe length" is the number of slots a
/// successful lookup of the key inspects, home slot and hit included
/// (a key sitting in its home slot has probe length 1); "words" counts the
/// control *groups* the active scan loads for that same lookup — one SSE2
/// register (16 control bytes) per load on x86_64, one SWAR `u64` (8)
/// elsewhere. A whole home-slot-resident table costs exactly one group
/// load per probe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeStats {
    /// Number of keys the statistics cover (the map's `len`).
    pub keys: usize,
    /// Mean probe length over all keys (0.0 for an empty map).
    pub mean_probe_len: f64,
    /// Longest probe sequence of any key.
    pub max_probe_len: usize,
    /// Mean control-group loads per probe (0.0 for an empty map).
    pub mean_words_per_probe: f64,
    /// Most control-group loads any single probe performs.
    pub max_words_per_probe: usize,
}

/// Change journal accumulated between two [`CompactMap::drain_journal`]
/// calls (see [`CompactMap::enable_journal`]). Boxed behind an `Option` so
/// maps that never snapshot (the shard routers) pay one null check per
/// write, nothing more.
#[derive(Debug, Clone)]
struct MapJournal<K> {
    /// One bit per slot: the slot's payload changed (insert, value update,
    /// or an existing entry moved here by backward-shift deletion) since
    /// the last drain.
    dirty: Vec<u64>,
    /// Keys removed since the last drain. A removed key may have been
    /// re-inserted afterwards; consumers must check the live map.
    removed: Vec<K>,
    /// Set when slot identity was invalidated wholesale (`clear`, `grow`):
    /// per-slot tracking is suspended and the next drain reports a full
    /// rebuild.
    all_dirty: bool,
}

/// The drained contents of a [`CompactMap`] change journal, as returned by
/// [`CompactMap::drain_journal`]. When `all_dirty` is set the per-slot and
/// per-key lists are empty and meaningless — the consumer must re-read the
/// whole map.
#[derive(Debug)]
pub struct MapJournalDrain<K> {
    /// Slot identity was invalidated wholesale (`clear` or a resize) since
    /// the last drain; rebuild instead of patching.
    pub all_dirty: bool,
    /// Slots whose payload changed since the last drain, ascending. A listed
    /// slot may be empty *now* (its entry was removed or shifted away); read
    /// the live map via [`CompactMap::slot_entry`].
    pub dirty_slots: Vec<usize>,
    /// Keys removed since the last drain (possibly re-inserted later; check
    /// the live map before treating one as gone).
    pub removed: Vec<K>,
}

/// A flat, power-of-two, linear-probing hash map with a separate one-byte
/// fingerprint array and backward-shift deletion. See the module docs for
/// the design rationale; see `tests/proptest_compact_map.rs` for the
/// differential suite that pins its behaviour to `std`'s `HashMap`.
#[derive(Debug, Clone)]
pub struct CompactMap<K, V> {
    /// One byte per slot: [`EMPTY`] or `0x80 | (hash >> 48) as u8`
    /// (fingerprint from hash bits 48–54; see [`Self::decompose`] for why
    /// those bits).
    ctrl: Vec<u8>,
    /// The slot payloads, parallel to `ctrl` (`Some` iff `ctrl[i] != EMPTY`).
    entries: Vec<Option<(K, V)>>,
    /// `ctrl.len() - 1`; `ctrl.len()` is a power of two.
    mask: usize,
    /// Occupied slot count.
    len: usize,
    /// Change journal for incremental snapshot publication; `None` until
    /// [`Self::enable_journal`].
    journal: Option<Box<MapJournal<K>>>,
}

impl<K: Eq + Hash, V> Default for CompactMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash, V> CompactMap<K, V> {
    /// Creates an empty map with the minimum table size.
    pub fn new() -> Self {
        Self::with_slots(MIN_SLOTS)
    }

    /// Creates a map that can hold `capacity` keys without resizing
    /// (table sized so `capacity` stays within the 7/8 load limit).
    pub fn with_capacity(capacity: usize) -> Self {
        // slots * 7/8 >= capacity  ⇒  slots >= ceil(8c / 7).
        let needed = capacity.saturating_mul(8).div_ceil(7).max(MIN_SLOTS);
        Self::with_slots(needed.next_power_of_two())
    }

    fn with_slots(slots: usize) -> Self {
        debug_assert!(slots.is_power_of_two());
        let mut entries = Vec::new();
        entries.resize_with(slots, || None);
        CompactMap {
            ctrl: vec![EMPTY; slots],
            entries,
            mask: slots - 1,
            len: 0,
            journal: None,
        }
    }

    /// Starts recording per-slot changes for incremental snapshots
    /// ([`Self::drain_journal`]). The journal opens in the `all_dirty`
    /// state so the first drain after enabling always reports a full
    /// rebuild. Idempotent; maps that never enable the journal pay one
    /// null check per write.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Box::new(MapJournal {
                dirty: vec![0; self.ctrl.len().div_ceil(64)],
                removed: Vec::new(),
                all_dirty: true,
            }));
        }
    }

    /// True once [`Self::enable_journal`] has been called.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Takes everything recorded since the previous drain and resets the
    /// journal to clean. Returns `None` when the journal was never enabled.
    pub fn drain_journal(&mut self) -> Option<MapJournalDrain<K>> {
        let j = self.journal.as_deref_mut()?;
        let mut dirty_slots = Vec::new();
        if !j.all_dirty {
            for (w, &word) in j.dirty.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    dirty_slots.push(w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
        }
        let drained = MapJournalDrain {
            all_dirty: j.all_dirty,
            dirty_slots,
            removed: std::mem::take(&mut j.removed),
        };
        j.dirty.clear();
        j.dirty.resize(self.ctrl.len().div_ceil(64), 0);
        j.all_dirty = false;
        Some(drained)
    }

    /// Records `slot` as changed. No-op without a journal or after a
    /// wholesale invalidation (the pending rebuild supersedes per-slot
    /// marks).
    #[inline]
    fn journal_mark(&mut self, slot: usize) {
        if let Some(j) = self.journal.as_deref_mut() {
            if !j.all_dirty {
                j.dirty[slot / 64] |= 1 << (slot % 64);
            }
        }
    }

    /// Records `key` as removed, consuming the owned key the removal freed
    /// (no clone on the removal path).
    #[inline]
    fn journal_removed(&mut self, key: K) {
        if let Some(j) = self.journal.as_deref_mut() {
            if !j.all_dirty {
                j.removed.push(key);
            }
        }
    }

    /// Suspends per-slot tracking until the next drain: slot identity was
    /// invalidated wholesale (`clear`, `grow`).
    #[inline]
    fn journal_invalidate(&mut self) {
        if let Some(j) = self.journal.as_deref_mut() {
            j.all_dirty = true;
            j.removed.clear();
            j.dirty.clear();
        }
    }

    /// Number of keys in the map.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of keys the map can hold before its next resize.
    pub fn capacity(&self) -> usize {
        self.max_load()
    }

    /// The 7/8-of-slots load limit.
    fn max_load(&self) -> usize {
        let slots = self.ctrl.len();
        slots - slots / 8
    }

    /// Home slot and fingerprint byte for a hash value: index from the low
    /// bits, fingerprint from bits 48–54 (top bit forced on so a
    /// fingerprint never equals [`EMPTY`]). The fingerprint bits are
    /// deliberately disjoint from *both* consumers of the hash's ends: the
    /// low bits index this table, and the topmost bits pick the shard in
    /// [`crate::fasthash::route`] — a fingerprint drawn from either range
    /// would lose entropy exactly when sharding or table growth fixes
    /// those bits per table.
    #[inline]
    fn decompose(&self, hash: u64) -> (usize, u8) {
        ((hash as usize) & self.mask, 0x80 | (hash >> 48) as u8)
    }

    /// Walks `key`'s probe sequence once: `Ok(slot)` when the key is
    /// present, otherwise `Err((empty_slot, fingerprint))` — the
    /// terminating empty slot, which is exactly where a no-resize insert
    /// must place the key (so miss-then-insert pays one walk, not two).
    /// The table is never full (load is capped at 7/8), so the probe
    /// always terminates.
    ///
    /// The scan is two-tier. Tier 1 is the scalar fast head: the first
    /// [`SCALAR_HEAD`] probe-order slots, one control byte at a time,
    /// bit-identical to [`Self::probe_reference`] over those slots —
    /// below the 7/8 load cap, the overwhelming majority of probes end
    /// there (at the summary index's ~1/2 operating load, ~97% inside
    /// two slots), and for a 1–2-slot probe a predicted byte compare
    /// beats any group machinery's fixed setup. Probes that survive the
    /// head — long displaced clusters, the regime backward-shift churn
    /// and high load produce — continue in the `#[cold]` tier-2 loop
    /// ([`Self::probe_spill`]): group-at-a-time, 16 control bytes per
    /// SSE2 `cmpeq`/`movemask` on x86_64, 8 per SWAR word elsewhere,
    /// first group masked to the lanes at or past the head's end.
    /// Checking a group's candidates before its empty lanes is safe even
    /// for a candidate past the first empty, because a key is always
    /// reachable through its own probe sequence (backward-shift deletion
    /// maintains this), so a slot beyond `key`'s terminating empty
    /// cannot hold `key`; the `Err` slot is still the *first* empty in
    /// probe order, which keeps the scan bit-for-bit equal to
    /// [`Self::probe_reference`]. If the probe wraps the whole table,
    /// the head's groups are eventually re-scanned with all lanes live,
    /// where re-checking already-rejected lanes is harmless.
    ///
    /// (History: PR 6's tier 1 byte-walked the home word and tier 2
    /// word-scanned, at an ~18% isolated-probe cost vs the pure byte
    /// loop. PR 10 tried a pure group scan — home group masked, then
    /// whole groups — and measured the same gap from the other side:
    /// group setup dominates when ~93% of probes end at the home slot.
    /// The scalar-head-plus-grouped-spill split is what reaches byte
    /// parity on lookups while keeping 16-lane scans for clusters; see
    /// EXPERIMENTS.md §PR 10 for the byte/SWAR/SSE2 A/B.)
    ///
    /// Exposed `#[doc(hidden)]` so the differential property tests can pin
    /// it against [`Self::probe_reference`]; not part of the supported API.
    #[doc(hidden)]
    #[inline(always)]
    pub fn probe(&self, key: &K) -> Result<usize, (usize, u8)> {
        self.probe_hashed(hash_one(key), key)
    }

    /// [`Self::probe`] with the caller supplying `hash_one(key)` — the
    /// batched pipelines hash each key once when they issue its prefetch
    /// and hand the value down here, so the probe does not hash again.
    /// Passing anything but `key`'s own [`hash_one`] value breaks the
    /// table's invariants.
    #[doc(hidden)]
    #[inline(always)]
    pub fn probe_hashed(&self, hash: u64, key: &K) -> Result<usize, (usize, u8)> {
        let (home, fp) = self.decompose(hash);
        self.probe_grouped::<ActiveGroup>(home, fp, key)
    }

    /// [`Self::probe`] forced onto the portable SWAR backend, whichever
    /// backend [`Self::probe`] itself uses. Bit-for-bit equal to both
    /// [`Self::probe`] and [`Self::probe_reference`]; exists so one build
    /// of the differential property tests pins SSE2 ≡ SWAR ≡ byte loop.
    /// Not part of the supported API.
    #[doc(hidden)]
    #[inline]
    pub fn probe_swar(&self, key: &K) -> Result<usize, (usize, u8)> {
        let (home, fp) = self.decompose(hash_one(key));
        self.probe_grouped::<SwarGroup>(home, fp, key)
    }

    /// Tier 1 of the probe (see [`Self::probe`]): a short scalar head
    /// over the first probe-order slots, spilling to the out-of-line
    /// grouped scan on exhaustion.
    #[inline(always)]
    fn probe_grouped<G: ProbeGroup>(
        &self,
        home: usize,
        fp: u8,
        key: &K,
    ) -> Result<usize, (usize, u8)> {
        // Scalar fast head: `with_capacity`'s 7/8 load cap sizes the
        // per-packet tables so probes are short — at the summary index's
        // actual ~1/2 operating load the mean probe length for present
        // keys is ~1.5 slots — and a byte compare per slot settles those
        // without the group-load/movemask machinery, whose fixed setup
        // cost a 1–2 slot probe never amortizes. The head is
        // bit-identical to `probe_reference` over the slots it covers
        // (same order, same hit/empty outcomes); only probes that
        // survive `SCALAR_HEAD` slots — displaced clusters — fall
        // through to the grouped scan, which resumes at the first
        // uncovered slot and earns its width there.
        // The home slot is peeled out of the loop so the ~90%-of-probes
        // case runs straight-line — one fingerprint compare, no loop
        // bookkeeping at all. The loop over the remaining head slots
        // computes its end through the runtime mask so its trip count
        // stays opaque to the optimizer: rolled, the loop has a single
        // key-hit site, and LLVM fuses the caller's entry access
        // (`slot_value`, `get`'s value load) straight into it — unrolled,
        // the hit sites all join in one block that re-checks the entry
        // and costs the fast path a measurable couple of cycles.
        let c = self.ctrl[home];
        if c == fp {
            if let Some((k, _)) = &self.entries[home] {
                if k == key {
                    return Ok(home);
                }
            }
        } else if c == EMPTY {
            return Err((home, fp));
        }
        let mut i = (home + 1) & self.mask;
        let end = (home + SCALAR_HEAD) & self.mask;
        while i != end {
            let c = self.ctrl[i];
            if c == fp {
                if let Some((k, _)) = &self.entries[i] {
                    if k == key {
                        return Ok(i);
                    }
                }
            } else if c == EMPTY {
                return Err((i, fp));
            }
            i = (i + 1) & self.mask;
        }
        self.probe_spill::<G>(i, fp, key)
    }

    /// Tier 2 of the probe: the group-at-a-time scan over every slot from
    /// `start` in probe order, entered only when the scalar head resolved
    /// nothing. The first group is masked to the lanes at or past
    /// `start`; from there whole groups — 16 slots per compare on SSE2 —
    /// until a key hit or an empty lane (the 7/8 load cap guarantees
    /// one). Kept out of line (`#[cold]`) so the common short-probe path
    /// stays small enough to inline into the callers — folding the group
    /// machinery into tier 1 measurably slowed the lookup-dominated
    /// bench through sheer code size.
    #[cold]
    #[inline(never)]
    fn probe_spill<G: ProbeGroup>(
        &self,
        start: usize,
        fp: u8,
        key: &K,
    ) -> Result<usize, (usize, u8)> {
        let group_mask = self.ctrl.len() / G::WIDTH - 1;
        let mut g = start / G::WIDTH;
        let mut lane = start % G::WIDTH;
        loop {
            let group = G::load(&self.ctrl, g);
            let mut candidates = group.match_fp(fp).keep_from(lane);
            while candidates.any() {
                let slot = g * G::WIDTH + candidates.first();
                if let Some((k, _)) = &self.entries[slot] {
                    if k == key {
                        return Ok(slot);
                    }
                }
                candidates = candidates.clear_first();
            }
            let empties = group.match_empty().keep_from(lane);
            if empties.any() {
                return Err((g * G::WIDTH + empties.first(), fp));
            }
            g = (g + 1) & group_mask;
            lane = 0;
        }
    }

    /// Bit-for-bit byte-at-a-time reference for [`Self::probe`]: the
    /// seed-era scan, one control byte per step. Kept for the differential
    /// property tests (`tests/proptest_compact_map.rs`) and as the baseline
    /// of the probe micro-benchmarks; not part of the supported API.
    #[doc(hidden)]
    #[inline]
    pub fn probe_reference(&self, key: &K) -> Result<usize, (usize, u8)> {
        let (mut i, fp) = self.decompose(hash_one(key));
        loop {
            let c = self.ctrl[i];
            if c == EMPTY {
                return Err((i, fp));
            }
            if c == fp {
                if let Some((k, _)) = &self.entries[i] {
                    if k == key {
                        return Ok(i);
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Value stored in `slot` (as returned by [`Self::probe`] /
    /// [`Self::probe_reference`]), if the slot is occupied. Exposed
    /// `#[doc(hidden)]` so the benches can pay the same entries touch
    /// after either scan without a second probe.
    #[doc(hidden)]
    #[inline]
    pub fn slot_value(&self, slot: usize) -> Option<&V> {
        self.entries[slot].as_ref().map(|(_, v)| v)
    }

    /// First [`EMPTY`] slot at or cyclically after `home`, by the same
    /// group scan as [`Self::probe`]. The table always holds one (load is
    /// capped at 7/8), so the scan terminates.
    #[inline]
    fn first_empty_from(&self, home: usize) -> usize {
        let group_mask = self.ctrl.len() / ActiveGroup::WIDTH - 1;
        let mut g = home / ActiveGroup::WIDTH;
        let mut lane = home % ActiveGroup::WIDTH;
        loop {
            let empties = ActiveGroup::load(&self.ctrl, g)
                .match_empty()
                .keep_from(lane);
            if empties.any() {
                return g * ActiveGroup::WIDTH + empties.first();
            }
            g = (g + 1) & group_mask;
            lane = 0;
        }
    }

    /// Hints the CPU to pull the cache lines `key`'s probe will touch —
    /// the home control group and the home entry — without reading them
    /// (see [`crate::fasthash::prefetch`]). The batched update pipelines
    /// call this for keys a small lookahead before probing them, so the
    /// misses of a batch overlap instead of serializing. Costs one hash
    /// of `key`; has no observable effect on the map.
    #[inline]
    pub fn prefetch(&self, key: &K) {
        self.prefetch_hashed(hash_one(key));
    }

    /// [`Self::prefetch`] with the caller supplying `hash_one(key)`,
    /// letting the batched pipelines reuse one hash for the prefetch and
    /// the later [`Self::probe_hashed`].
    #[inline]
    pub fn prefetch_hashed(&self, hash: u64) {
        let (home, _) = self.decompose(hash);
        crate::fasthash::prefetch(&self.ctrl[home]);
        crate::fasthash::prefetch(&self.entries[home]);
    }

    /// Probe-shape statistics of the current table, computed on demand by
    /// walking every occupied slot (nothing is counted on the hot path).
    /// Used by the workspace's regression tests to pin the Lemire-route
    /// probe-length invariant and by the benches to report table health.
    /// Group loads are counted at the *active* backend's width (16 on
    /// x86_64, 8 on the SWAR fallback), consistently with what
    /// [`Self::probe`] actually loads on this build.
    pub fn probe_stats(&self) -> ProbeStats {
        let width = ActiveGroup::WIDTH;
        let groups = self.ctrl.len() / width;
        let mut total_len = 0u64;
        let mut max_len = 0usize;
        let mut total_words = 0u64;
        let mut max_words = 0usize;
        for (i, slot) in self.entries.iter().enumerate() {
            let Some((k, _)) = slot else { continue };
            let home = (hash_one(k) as usize) & self.mask;
            let probe_len = (i.wrapping_sub(home) & self.mask) + 1;
            let word_loads = ((i / width).wrapping_sub(home / width) & (groups - 1)) + 1;
            total_len += probe_len as u64;
            max_len = max_len.max(probe_len);
            total_words += word_loads as u64;
            max_words = max_words.max(word_loads);
        }
        let mean = |total: u64| {
            if self.len == 0 {
                0.0
            } else {
                total as f64 / self.len as f64
            }
        };
        ProbeStats {
            keys: self.len,
            mean_probe_len: mean(total_len),
            max_probe_len: max_len,
            mean_words_per_probe: mean(total_words),
            max_words_per_probe: max_words,
        }
    }

    /// Slot holding `key`, if present.
    #[inline]
    fn find(&self, key: &K) -> Option<usize> {
        self.probe(key).ok()
    }

    /// Reference to the value stored for `key`.
    #[inline]
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key)
            .map(|i| &self.entries[i].as_ref().expect("occupied slot").1)
    }

    /// [`Self::get`] with the caller supplying `hash_one(key)` (see
    /// [`Self::probe_hashed`]): the batched pipelines hash once at
    /// prefetch time and reuse the value for the probe.
    #[inline]
    pub fn get_hashed(&self, hash: u64, key: &K) -> Option<&V> {
        self.probe_hashed(hash, key)
            .ok()
            .map(|i| &self.entries[i].as_ref().expect("occupied slot").1)
    }

    /// Mutable reference to the value stored for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let i = self.find(key)?;
        // The caller may write through the reference: journal conservatively.
        self.journal_mark(i);
        Some(&mut self.entries[i].as_mut().expect("occupied slot").1)
    }

    /// Slot holding `key`, if present — the stable per-table identity the
    /// incremental snapshot path uses as a tie-breaking rank (slots only
    /// change on removal shifts and resizes, both journaled).
    #[inline]
    pub fn slot_of(&self, key: &K) -> Option<usize> {
        self.find(key)
    }

    /// The `(key, value)` stored in `slot`, if the slot is occupied. The
    /// journal consumer reads dirty slots through this.
    #[inline]
    pub fn slot_entry(&self, slot: usize) -> Option<(&K, &V)> {
        self.entries.get(slot)?.as_ref().map(|(k, v)| (k, v))
    }

    /// True when the map holds `key`.
    #[inline]
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Writes an absent `key → value` into `slot` (the terminating empty
    /// slot [`Self::probe`] returned) and bumps `len`. The entry goes in
    /// before the control byte so an unwinding value expression cannot
    /// leave a fingerprint over an empty payload.
    #[inline]
    fn occupy(&mut self, slot: usize, fp: u8, key: K, value: V) {
        self.entries[slot] = Some((key, value));
        self.ctrl[slot] = fp;
        self.len += 1;
        self.journal_mark(slot);
    }

    /// Installs `key → value` in the first empty slot of its probe
    /// sequence and returns that slot — the re-walking form used when no
    /// prior probe result is valid (after [`Self::grow`] remapped every
    /// slot). Callers guarantee `key` is absent; `len` is not touched
    /// (grow re-installs existing entries).
    #[inline]
    fn install(&mut self, key: K, value: V) -> usize {
        let (home, fp) = self.decompose(hash_one(&key));
        let i = self.first_empty_from(home);
        self.entries[i] = Some((key, value));
        self.ctrl[i] = fp;
        i
    }

    /// Inserts `key → value`; returns the previous value if the key was
    /// already present. One probe walk on every path (the miss walk ends
    /// at the very slot the key goes into, unless the insert triggers a
    /// resize).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.probe(&key) {
            Ok(i) => {
                let slot = self.entries[i].as_mut().expect("occupied slot");
                let previous = std::mem::replace(&mut slot.1, value);
                self.journal_mark(i);
                Some(previous)
            }
            Err((slot, fp)) => {
                if self.len + 1 > self.max_load() {
                    self.grow();
                    self.install(key, value);
                    self.len += 1;
                } else {
                    self.occupy(slot, fp, key, value);
                }
                None
            }
        }
    }

    /// Mutable reference to the value for `key`, inserting
    /// `default()` first when the key is absent (the hot-path shape of
    /// `HashMap::entry(k).or_insert_with(f)`, hashing the key once and
    /// walking the probe sequence once on either path). A panicking
    /// `default` leaves the map unchanged.
    pub fn get_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        let i = match self.probe(&key) {
            Ok(i) => {
                // The caller gets `&mut V`: journal conservatively.
                self.journal_mark(i);
                i
            }
            Err((slot, fp)) => {
                if self.len + 1 > self.max_load() {
                    // Evaluate the default before growing: an unwinding
                    // default must leave even the allocation untouched.
                    let value = default();
                    self.grow();
                    let slot = self.install(key, value);
                    self.len += 1;
                    slot
                } else {
                    self.occupy(slot, fp, key, default());
                    slot
                }
            }
        };
        &mut self.entries[i].as_mut().expect("occupied slot").1
    }

    /// Removes `key`, returning its value if it was present. Uses
    /// backward-shift deletion: the displaced tail of the probe cluster
    /// moves back over the vacated slot, leaving no tombstone.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let mut hole = self.find(key)?;
        let (removed_key, value) = self.entries[hole].take().expect("occupied slot");
        self.ctrl[hole] = EMPTY;
        self.len -= 1;
        self.journal_removed(removed_key);
        // Knuth's Algorithm R on a circular table: walk the cluster after
        // the hole; any entry whose home position is cyclically outside
        // (hole, j] would become unreachable through the hole — move it
        // into the hole and continue from its old slot. The cluster's end
        // is computed up front with one group scan: the walk only ever
        // vacates slots it has *already* visited (a shifted entry's old
        // slot trails `j`), so the first EMPTY at or after `hole + 1`
        // never moves while the walk runs, and the per-step occupancy
        // byte-check the seed-era walk paid becomes a single wide scan
        // over the cluster.
        let end = self.first_empty_from((hole + 1) & self.mask);
        let mut j = hole;
        loop {
            j = (j + 1) & self.mask;
            if j == end {
                return Some(value);
            }
            let home = {
                let (k, _) = self.entries[j].as_ref().expect("occupied slot");
                (hash_one(k) as usize) & self.mask
            };
            // Cyclic probe distances from the entry's home: if the hole is
            // strictly closer to home than j is, the hole lies on the
            // entry's probe path and the entry can (and must) fill it.
            let dist_hole = hole.wrapping_sub(home) & self.mask;
            let dist_j = j.wrapping_sub(home) & self.mask;
            if dist_hole < dist_j {
                self.entries[hole] = self.entries[j].take();
                self.ctrl[hole] = self.ctrl[j];
                self.ctrl[j] = EMPTY;
                // The shifted entry changed slots: its rank is stale.
                self.journal_mark(hole);
                hole = j;
            }
        }
    }

    /// Removes every key, keeping the allocated table.
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        self.ctrl.fill(EMPTY);
        for slot in &mut self.entries {
            *slot = None;
        }
        self.len = 0;
        self.journal_invalidate();
    }

    /// Iterates over `(&key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries
            .iter()
            .filter_map(|slot| slot.as_ref().map(|(k, v)| (k, v)))
    }

    /// Heap footprint of the table itself in bytes: the control array plus
    /// the slot array, *at the allocated size* (the table never shrinks, so
    /// a churn peak's allocation persists — `len`-based accounting would
    /// understate it).
    pub fn heap_bytes(&self) -> usize {
        self.ctrl.len() * (1 + std::mem::size_of::<Option<(K, V)>>())
    }

    /// Doubles the table and re-inserts every entry.
    fn grow(&mut self) {
        self.journal_invalidate();
        let slots = self.ctrl.len() * 2;
        let old_entries = std::mem::take(&mut self.entries);
        self.ctrl = vec![EMPTY; slots];
        self.entries = Vec::new();
        self.entries.resize_with(slots, || None);
        self.mask = slots - 1;
        for (key, value) in old_entries.into_iter().flatten() {
            self.install(key, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_overwrite() {
        let mut m: CompactMap<u64, u32> = CompactMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(&1), Some(&11));
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.get(&3), None);
        assert_eq!(m.len(), 2);
        assert!(m.contains_key(&1) && !m.contains_key(&3));
    }

    #[test]
    fn get_mut_and_entry_shape() {
        let mut m: CompactMap<&str, u32> = CompactMap::new();
        *m.get_or_insert_with("a", || 0) += 1;
        *m.get_or_insert_with("a", || 0) += 1;
        assert_eq!(m.get(&"a"), Some(&2));
        if let Some(v) = m.get_mut(&"a") {
            *v = 9;
        }
        assert_eq!(m.get(&"a"), Some(&9));
    }

    #[test]
    fn remove_returns_value_and_shrinks_len() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        for i in 0..50 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.remove(&25), Some(50));
        assert_eq!(m.remove(&25), None);
        assert_eq!(m.len(), 49);
        for i in 0..50 {
            assert_eq!(m.get(&i).copied(), if i == 25 { None } else { Some(i * 2) });
        }
    }

    #[test]
    fn backward_shift_keeps_clusters_reachable() {
        // Insert enough keys to force long probe clusters in a small table,
        // then delete from the middle of clusters and verify every survivor
        // is still reachable.
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(64);
        for i in 0..60 {
            m.insert(i, i);
        }
        for i in (0..60).step_by(3) {
            assert_eq!(m.remove(&i), Some(i));
        }
        for i in 0..60 {
            let expect = if i % 3 == 0 { None } else { Some(&i) };
            assert_eq!(m.get(&i), expect, "key {i} lost after churn");
        }
        assert_eq!(m.len(), 40);
    }

    #[test]
    fn group_backends_agree_with_reference() {
        // Unit-level pin of the three probe paths (the proptests cover the
        // same equivalence under randomized churn): present keys, absent
        // keys, and keys removed mid-churn must agree on `Ok` slots *and*
        // on `Err` first-empty slots, bit for bit.
        for capacity in [0usize, 8, 64, 512] {
            let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(capacity);
            let fill = (capacity.max(8) * 7 / 8) as u64;
            for i in 0..fill {
                m.insert(i.wrapping_mul(0x9e37_79b9), i);
            }
            for i in (0..fill).step_by(3) {
                m.remove(&i.wrapping_mul(0x9e37_79b9));
            }
            for probe_key in (0..2 * fill.max(16)).map(|i| i.wrapping_mul(0x9e37_79b9)) {
                let active = m.probe(&probe_key);
                assert_eq!(active, m.probe_swar(&probe_key), "key {probe_key}");
                assert_eq!(active, m.probe_reference(&probe_key), "key {probe_key}");
            }
        }
    }

    #[test]
    fn with_capacity_never_resizes_within_capacity() {
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(4096);
        let slots = m.ctrl.len();
        assert!(m.capacity() >= 4096);
        for i in 0..4096 {
            m.insert(i, i);
        }
        assert_eq!(
            m.ctrl.len(),
            slots,
            "table resized below its stated capacity"
        );
        assert_eq!(m.len(), 4096);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        for i in 0..10_000 {
            m.insert(i, i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000 {
            assert_eq!(m.get(&i), Some(&i));
        }
    }

    #[test]
    fn clear_keeps_allocation_and_empties() {
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(100);
        for i in 0..100 {
            m.insert(i, i);
        }
        let slots = m.ctrl.len();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.ctrl.len(), slots);
        assert_eq!(m.get(&5), None);
        m.insert(5, 5);
        assert_eq!(m.get(&5), Some(&5));
    }

    #[test]
    fn panicking_default_leaves_map_unchanged() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let mut m: CompactMap<u64, u32> = CompactMap::new();
        m.insert(1, 10);
        let result = catch_unwind(AssertUnwindSafe(|| {
            m.get_or_insert_with(2, || panic!("default exploded"));
        }));
        assert!(result.is_err());
        assert_eq!(m.len(), 1, "len must not count the failed insert");
        assert_eq!(m.get(&2), None);
        assert_eq!(m.get(&1), Some(&10));
        m.insert(2, 20);
        assert_eq!(m.get(&2), Some(&20));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn panicking_default_at_max_load_leaves_allocation_unchanged() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        // Fill a fresh map exactly to its load limit so the next miss
        // would grow: a panicking default must fire before the resize.
        let mut m: CompactMap<u64, u32> = CompactMap::new();
        let cap = m.capacity() as u64;
        for i in 0..cap {
            m.insert(i, 0);
        }
        let bytes = m.heap_bytes();
        let result = catch_unwind(AssertUnwindSafe(|| {
            m.get_or_insert_with(cap, || panic!("default exploded"));
        }));
        assert!(result.is_err());
        assert_eq!(m.heap_bytes(), bytes, "table grew for a failed insert");
        assert_eq!(m.len(), cap as usize);
        assert_eq!(m.get(&cap), None);
    }

    #[test]
    fn fingerprints_survive_shard_partitioning() {
        // The fingerprint bits (48–54) must stay uncorrelated with the
        // shard choice: collect the keys shard 0 of 8 owns and require
        // their fingerprint bytes to cover most of the 128-value space
        // (a fingerprint drawn from the route bits would collapse here).
        use crate::fasthash::{hash_one, route};
        let mut fps = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            if route(&i, 8) == 0 {
                fps.insert(0x80u8 | (hash_one(&i) >> 48) as u8);
            }
        }
        assert!(
            fps.len() > 100,
            "only {} of 128 fingerprints inside one shard",
            fps.len()
        );
    }

    #[test]
    fn probe_stats_on_empty_and_home_resident_tables() {
        let m: CompactMap<u64, u64> = CompactMap::new();
        let stats = m.probe_stats();
        assert_eq!(stats.keys, 0);
        assert_eq!(stats.mean_probe_len, 0.0);
        assert_eq!(stats.max_probe_len, 0);
        assert_eq!(stats.mean_words_per_probe, 0.0);
        assert_eq!(stats.max_words_per_probe, 0);
        // One key, necessarily in its home slot: probe length 1, one group.
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        m.insert(42, 0);
        let stats = m.probe_stats();
        assert_eq!(stats.keys, 1);
        assert_eq!(stats.mean_probe_len, 1.0);
        assert_eq!(stats.max_probe_len, 1);
        assert_eq!(stats.mean_words_per_probe, 1.0);
        assert_eq!(stats.max_words_per_probe, 1);
    }

    #[test]
    fn probe_stats_counts_displacement() {
        // Every key maps to a distinct home in a big sparse table, so
        // *forcing* displacement needs a measured comparison instead:
        // filling a table to capacity must raise the mean above 1 and the
        // stats must stay consistent (mean ≤ max, group loads bounded by
        // the probe length at the active group width).
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(512);
        for i in 0..512 {
            m.insert(i, i);
        }
        let stats = m.probe_stats();
        assert_eq!(stats.keys, 512);
        assert!(stats.mean_probe_len >= 1.0);
        assert!(stats.max_probe_len >= stats.mean_probe_len.ceil() as usize);
        assert!(stats.mean_words_per_probe >= 1.0);
        assert!(stats.max_words_per_probe <= stats.max_probe_len.div_ceil(ActiveGroup::WIDTH) + 1);
    }

    #[test]
    fn lemire_routed_shard_tables_keep_short_probes() {
        // The PR 5 routing invariant, now pinned against `probe_stats`:
        // keys a shard owns under `fasthash::route` (high-bit Lemire
        // reduction) must not cluster in that shard's tables. At 4 shards
        // and the stream-summary's exact sizing (4096 keys in a
        // `with_capacity(4096)` table, ~50% load after the power-of-two
        // round-up) the mean probe length stays at the unsharded level —
        // ≤ 2.2 slots — and the group scan loads ~1 control group per
        // probe (the bound holds at both group widths: a 16-lane group
        // never loads more groups than an 8-lane word scan of the same
        // probe). A `hash % shards` router would push the mean far beyond
        // this (the low index bits would be fixed per shard).
        use crate::fasthash::route;
        for shards in [1usize, 4] {
            let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(4096);
            let mut key = 0u64;
            while m.len() < 4096 {
                if route(&key, shards) == 0 {
                    m.insert(key, key);
                }
                key += 1;
            }
            let stats = m.probe_stats();
            assert_eq!(stats.keys, 4096);
            assert!(
                stats.mean_probe_len <= 2.2,
                "shard 0 of {shards}: mean probe length {} exceeds 2.2",
                stats.mean_probe_len
            );
            assert!(
                stats.mean_words_per_probe <= 1.25,
                "shard 0 of {shards}: {} control-group loads per probe",
                stats.mean_words_per_probe
            );
        }
    }

    #[test]
    fn journal_records_writes_removals_and_invalidations() {
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(64);
        assert!(m.drain_journal().is_none(), "journal off by default");
        m.insert(1, 10);
        m.enable_journal();
        // The first drain after enabling always reports a full rebuild.
        assert!(m.drain_journal().unwrap().all_dirty);
        m.insert(2, 20);
        m.insert(1, 11);
        *m.get_or_insert_with(3, || 0) += 5;
        let d = m.drain_journal().unwrap();
        assert!(!d.all_dirty);
        let keys: std::collections::HashSet<u64> = d
            .dirty_slots
            .iter()
            .map(|&s| *m.slot_entry(s).unwrap().0)
            .collect();
        assert!(keys.contains(&1) && keys.contains(&2) && keys.contains(&3));
        assert!(d.removed.is_empty());
        m.remove(&2);
        let d = m.drain_journal().unwrap();
        assert_eq!(d.removed, vec![2]);
        m.clear();
        assert!(m.drain_journal().unwrap().all_dirty, "clear invalidates");
        let d = m.drain_journal().unwrap();
        assert!(!d.all_dirty && d.dirty_slots.is_empty() && d.removed.is_empty());
    }

    #[test]
    fn journal_flags_resize_as_all_dirty() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        m.enable_journal();
        m.drain_journal();
        for i in 0..100 {
            m.insert(i, i); // forces several grows past MIN_SLOTS
        }
        assert!(m.drain_journal().unwrap().all_dirty);
    }

    #[test]
    fn journal_marks_backward_shifted_slots() {
        // Every key whose slot changes during removal churn must have its
        // *new* slot journaled, or an incremental snapshot would keep the
        // stale rank.
        let mut m: CompactMap<u64, u64> = CompactMap::with_capacity(64);
        for i in 0..56 {
            m.insert(i, i);
        }
        m.enable_journal();
        m.drain_journal();
        let before: Vec<(u64, usize)> = (0..56u64)
            .filter(|i| i % 3 != 0)
            .map(|i| (i, m.slot_of(&i).unwrap()))
            .collect();
        for i in (0..56u64).step_by(3) {
            m.remove(&i);
        }
        let d = m.drain_journal().unwrap();
        assert!(!d.all_dirty);
        assert_eq!(d.removed.len(), 19);
        let dirty: std::collections::HashSet<usize> = d.dirty_slots.into_iter().collect();
        for (k, old_slot) in before {
            let new_slot = m.slot_of(&k).unwrap();
            if new_slot != old_slot {
                assert!(
                    dirty.contains(&new_slot),
                    "key {k} moved {old_slot}→{new_slot} without a journal mark"
                );
            }
        }
    }

    #[test]
    fn iter_yields_every_entry_once() {
        let mut m: CompactMap<u64, u64> = CompactMap::new();
        for i in 0..37 {
            m.insert(i, i + 100);
        }
        let mut seen: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        seen.sort_unstable();
        assert_eq!(seen.len(), 37);
        for (i, (k, v)) in seen.into_iter().enumerate() {
            assert_eq!((k, v), (i as u64, i as u64 + 100));
        }
    }
}
