//! A dependency-free fast hash for the per-packet hot path.
//!
//! Every Full update of the Memento/WCSS lineage is "one O(1) probe into a
//! cache-resident table" in the literature (Ben-Basat et al., Infocom 2016;
//! Koutsiamanis & Efraimidis, 2011) — an assumption std's maps break: the
//! default `RandomState` is SipHash-1-3, a keyed cryptographic-strength
//! hash costing tens of cycles per probe. Flow keys here are short
//! (`u64` identifiers, IP pairs, prefixes) and the tables are not exposed
//! to adversarial key insertion at the map layer (Space Saving *bounds*
//! the number of monitored keys by construction), so a multiply–rotate
//! hash in the fxhash family is the right trade: ~2 cycles per 8 bytes,
//! one multiply per `write_u64`.
//!
//! [`FastHasher`] combines words fxhash-style (rotate, xor, multiply by a
//! golden-ratio-derived odd constant) and finishes with a SplitMix64-style
//! avalanche so that *every* region of the output is usable — three
//! disjoint consumers share one hash: the low bits index
//! [`crate::CompactMap`]'s power-of-two table, bits 48–54 form its
//! one-byte fingerprints, and the topmost bits pick the shard in
//! [`route`]. fxhash without the finalizer would leave the low bits of
//! small integer keys barely mixed.

use std::hash::{BuildHasher, Hash, Hasher};

/// The fxhash multiplier: `2^64 / φ`, forced odd.
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fast, non-cryptographic streaming hasher (fxhash-style combine,
/// SplitMix64 finish). Not keyed and not collision-resistant against an
/// adversary — use only where the key universe or the table population is
/// bounded by construction (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    /// Creates a hasher with the zero initial state.
    #[inline]
    pub fn new() -> Self {
        FastHasher { state: 0 }
    }

    /// Folds one 64-bit word into the state (the fxhash step).
    #[inline]
    fn combine(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

/// The SplitMix64 output function: full-avalanche mixing of one word, so
/// every output bit depends on every input bit.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix64(self.state)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.combine(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.combine(u64::from_le_bytes(word));
            // Combine the tail length as its own word: a short write and a
            // full-width write whose bytes spell the same padded word then
            // differ in combine count, so they cannot collide by mere
            // padding. (No non-keyed hash is collision-free against
            // adversarially chosen byte strings — see the module docs for
            // where that is and is not acceptable.)
            self.combine(rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.combine(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.combine(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.combine(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.combine(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.combine(n as u64);
        self.combine((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.combine(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.combine(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.combine(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.combine(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.combine(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.combine(n as u64);
    }
}

/// [`BuildHasher`] for [`FastHasher`]: stateless (every table hashes the
/// same key to the same value, across runs and processes — the shard
/// partition and the fingerprints are deterministic by design).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher::new()
    }
}

/// Hashes `key` once with the workspace's fast hash.
#[inline]
pub fn hash_one<K: Hash + ?Sized>(key: &K) -> u64 {
    let mut hasher = FastHasher::new();
    key.hash(&mut hasher);
    hasher.finish()
}

/// How many keys ahead the batched update pipelines issue their
/// [`prefetch`]es: far enough for a memory access to complete before the
/// probe arrives (a miss is hundreds of cycles, a pipelined update tens),
/// near enough that the prefetched lines are still resident when used.
pub const PREFETCH_LOOKAHEAD: usize = 8;

/// Hints the CPU to pull the cache line holding `data` into all cache
/// levels, without reading it.
///
/// This is the software-prefetch shim behind the workspace's batched
/// update pipelines (hash a lookahead window of keys, prefetch their home
/// lines, then probe — overlapping what would otherwise be serialized
/// dependent misses). It is a *hint* with no observable effect: results,
/// estimates and RNG draws are bit-identical with and without it.
///
/// # Platform and cfg fallback
/// On `x86_64` this compiles to one `prefetcht0` instruction via
/// [`core::arch::x86_64::_mm_prefetch`] (SSE is baseline on `x86_64`, so
/// no feature detection is needed; the instruction never faults, even on
/// dangling or unmapped addresses). Everywhere else — other architectures,
/// MIRI (`cfg(miri)`), or when built with
/// `RUSTFLAGS="--cfg memento_no_prefetch"` (the CI leg that keeps the
/// fallback compiled and tested) — it is a no-op, so the tier-1 test
/// suite and the interpreter-based tools see pure safe code with the
/// same semantics.
#[inline(always)]
pub fn prefetch<T>(data: &T) {
    #[cfg(all(target_arch = "x86_64", not(miri), not(memento_no_prefetch)))]
    {
        // SAFETY: `_mm_prefetch` is a pure hint — it performs no memory
        // access observable by the program and never faults, for any
        // pointer value; SSE is part of the x86_64 baseline.
        #[allow(unsafe_code)]
        unsafe {
            use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch::<_MM_HINT_T0>(data as *const T as *const i8);
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri), not(memento_no_prefetch))))]
    {
        let _ = data;
    }
}

/// The shared shard-routing helper: the shard in `0..shards` owning `key`.
/// Hashes the key exactly once; deterministic across runs and processes
/// (both sharded engines route through this, so a key's owner never
/// depends on which engine asked).
///
/// The shard is derived from the **high 32 bits** of the hash (Lemire's
/// fixed-point range reduction) — deliberately disjoint from the low bits
/// [`crate::CompactMap`] indexes with. `hash % shards` would make a shard's
/// key population share their low bits (for power-of-two shard counts,
/// exactly the bits the per-shard maps index with), clustering every
/// per-shard table's home slots into 1/N of its buckets and inflating
/// probe lengths as shard counts grow.
///
/// # Panics
/// Panics when `shards` is zero.
#[inline]
pub fn route<K: Hash + ?Sized>(key: &K, shards: usize) -> usize {
    assert!(shards > 0, "shard count must be positive");
    (((hash_one(key) >> 32) * shards as u64) >> 32) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one("flow"), hash_one("flow"));
        let a = FastBuildHasher.hash_one(7u32);
        let b = FastBuildHasher.hash_one(7u32);
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        use std::collections::HashSet;
        let hashes: HashSet<u64> = (0..100_000u64).map(|i| hash_one(&i)).collect();
        assert_eq!(
            hashes.len(),
            100_000,
            "sequential u64 keys must not collide"
        );
    }

    #[test]
    fn low_bits_are_mixed_for_small_keys() {
        // The CompactMap indexes with `hash & (2^b - 1)`: sequential keys
        // must spread over a small table instead of marching in lockstep.
        let mask = 255u64;
        let mut buckets = [0u32; 256];
        for i in 0..25_600u64 {
            buckets[(hash_one(&i) & mask) as usize] += 1;
        }
        let (min, max) = buckets
            .iter()
            .fold((u32::MAX, 0), |(lo, hi), &c| (lo.min(c), hi.max(c)));
        // Perfectly uniform would be 100 per bucket; allow generous slack.
        assert!(
            min >= 50 && max <= 200,
            "skewed low bits: min {min} max {max}"
        );
    }

    #[test]
    fn high_bits_are_mixed_for_small_keys() {
        // route() reduces the top 32 bits; the top byte standing in for
        // them must avalanche.
        use std::collections::HashSet;
        let tops: HashSet<u8> = (0..4_096u64).map(|i| (hash_one(&i) >> 56) as u8).collect();
        assert!(
            tops.len() > 200,
            "top byte barely varies: {} values",
            tops.len()
        );
    }

    #[test]
    fn fingerprint_bits_are_mixed_for_small_keys() {
        // The CompactMap fingerprints with bits 48-54.
        use std::collections::HashSet;
        let fps: HashSet<u8> = (0..4_096u64)
            .map(|i| 0x80 | (hash_one(&i) >> 48) as u8)
            .collect();
        assert!(
            fps.len() > 100,
            "fingerprint bits barely vary: {} values",
            fps.len()
        );
    }

    #[test]
    fn byte_stream_framing_is_unambiguous() {
        // Same total bytes, different split points, different results for
        // different contents (the trailing-chunk length fold).
        let h = |parts: &[&[u8]]| {
            let mut hasher = FastHasher::new();
            for p in parts {
                hasher.write(p);
            }
            hasher.finish()
        };
        assert_ne!(h(&[b"abc"]), h(&[b"ab"]));
        assert_ne!(h(&[b"abcdefgh", b"i"]), h(&[b"abcdefgh", b"j"]));
        // A short tail must not collide with the full-width word that
        // spells its zero padding (or the old length-fold byte): the tail
        // length is combined as its own word.
        assert_ne!(h(&[b"abc"]), h(&[b"abc\0\0\0\0\0"]));
        assert_ne!(h(&[b"abc"]), h(&[b"abc\0\0\0\0\x03"]));
        // A no-op write keeps the state (chunked writes of whole words
        // compose).
        assert_eq!(h(&[b"abcdefgh", b""]), h(&[b"abcdefgh"]));
    }

    #[test]
    fn route_spreads_keys_and_is_stable() {
        let shards = 4;
        let mut per_shard = [0u32; 4];
        for i in 0..10_000u64 {
            let s = route(&i, shards);
            assert_eq!(s, route(&i, shards), "routing must be deterministic");
            per_shard[s] += 1;
        }
        for (s, &count) in per_shard.iter().enumerate() {
            assert!(
                count > 2_000 && count < 3_000,
                "shard {s} owns {count} of 10000 keys"
            );
        }
        assert_eq!(route(&123u64, 1), 0);
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn route_rejects_zero_shards() {
        let _ = route(&1u64, 0);
    }

    #[test]
    fn routing_leaves_low_index_bits_uncorrelated() {
        // The keys one shard owns feed that shard's CompactMaps, which
        // index with the low hash bits: the shard partition (high bits)
        // must not skew them. Bucket the low byte of every key routed to
        // shard 0 of 4 and require rough uniformity — under `hash % 4`
        // routing, 3/4 of these buckets would be empty.
        let mask = 255u64;
        let mut buckets = [0u32; 256];
        let mut routed = 0u32;
        for i in 0..100_000u64 {
            if route(&i, 4) == 0 {
                buckets[(hash_one(&i) & mask) as usize] += 1;
                routed += 1;
            }
        }
        let occupied = buckets.iter().filter(|&&c| c > 0).count();
        assert!(
            occupied > 240,
            "only {occupied}/256 low-bit buckets used by shard 0's {routed} keys"
        );
    }
}
