//! Space Saving (Metwally, Agrawal, El Abbadi — ICDT 2005).
//!
//! The algorithm keeps `k` counters. A packet of a monitored flow increments
//! that flow's counter; a packet of an unmonitored flow either takes a free
//! counter (count 1) or takes over the *minimum* counter, inheriting its count
//! (charged as `error`) and incrementing it. Queries return the counter value
//! when the flow is monitored and the minimum counter value otherwise, so the
//! estimate never undershoots the true count and overshoots by at most `N/k`
//! after `N` insertions.
//!
//! In this reproduction Space Saving is used:
//! * per frame inside [Memento / WCSS](https://arxiv.org/abs/1810.02899)
//!   (`y` in Algorithm 1, flushed at frame boundaries),
//! * per prefix level in the MST and RHHH baselines,
//! * as the mergeable summary behind the network-wide Aggregation baseline.

use std::hash::Hash;

use crate::fasthash::PREFETCH_LOOKAHEAD;
use crate::stream_summary::StreamSummary;

/// A snapshot of one Space Saving counter, used for merging, reporting and
/// heavy-hitter extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot<K> {
    /// Monitored key.
    pub key: K,
    /// Estimated count (upper bound on the true count).
    pub count: u64,
    /// Error term: the count inherited when the key took over the slot.
    /// `count - error` is a lower bound on the true count.
    pub error: u64,
}

/// The Space Saving frequency-estimation algorithm with `k` counters.
#[derive(Debug, Clone)]
pub struct SpaceSaving<K: Eq + Hash + Clone> {
    summary: StreamSummary<K>,
    processed: u64,
}

impl<K: Eq + Hash + Clone> SpaceSaving<K> {
    /// Creates an instance with `counters` counters.
    ///
    /// # Panics
    /// Panics if `counters == 0`.
    pub fn new(counters: usize) -> Self {
        SpaceSaving {
            summary: StreamSummary::new(counters),
            processed: 0,
        }
    }

    /// Creates an instance sized for an additive error of `epsilon * N`
    /// (i.e. `ceil(1/epsilon)` counters).
    ///
    /// # Panics
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        Self::new((1.0 / epsilon).ceil() as usize)
    }

    /// Number of counters.
    pub fn counters(&self) -> usize {
        self.summary.capacity()
    }

    /// Number of items processed since creation or the last [`Self::flush`].
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of currently monitored keys.
    pub fn monitored(&self) -> usize {
        self.summary.len()
    }

    /// Processes one occurrence of `key` and returns its new estimate.
    /// One index probe on the monitored-key path (the common case for the
    /// heavy flows this structure exists to count): `increment`'s `None`
    /// doubles as the absence check, so no separate `contains` probe.
    pub fn add(&mut self, key: K) -> u64 {
        self.add_hashed(key, None)
    }

    /// [`Self::add`] with an optionally precomputed
    /// [`crate::fasthash::hash_one`] value for `key`: the batched
    /// pipelines hash each key once when issuing its prefetch and hand
    /// the value down here, so the monitored-key increment (the common
    /// case) does not hash again. The insertion paths re-hash — they do
    /// structural slot surgery anyway.
    #[inline]
    pub fn add_hashed(&mut self, key: K, hash: Option<u64>) -> u64 {
        self.processed += 1;
        let incremented = match hash {
            Some(h) => self.summary.increment_hashed(&key, h),
            None => self.summary.increment(&key),
        };
        if let Some(count) = incremented {
            count
        } else if !self.summary.is_full() {
            self.summary.insert_new(key).expect("summary not full")
        } else {
            self.summary.replace_min(key).0
        }
    }

    /// Processes a batch of occurrences with the prefetch pipeline: each
    /// key is hashed once, [`PREFETCH_LOOKAHEAD`] keys before its turn,
    /// the hash issues the index prefetch and then rides a small ring
    /// buffer to the key's own [`Self::add_hashed`] probe — so the probe
    /// misses of a batch overlap *and* no key is hashed twice. Exactly
    /// equivalent to calling `add` on each key in order (prefetches are
    /// hints — see [`crate::fasthash::prefetch`]).
    pub fn add_batch(&mut self, keys: &[K]) {
        let mut hashes = [0u64; PREFETCH_LOOKAHEAD];
        for (j, key) in keys.iter().take(PREFETCH_LOOKAHEAD).enumerate() {
            hashes[j] = crate::fasthash::hash_one(key);
        }
        for (i, key) in keys.iter().enumerate() {
            let slot = i % PREFETCH_LOOKAHEAD;
            let hash = hashes[slot];
            if let Some(ahead) = keys.get(i + PREFETCH_LOOKAHEAD) {
                let h = crate::fasthash::hash_one(ahead);
                self.summary.prefetch_hashed(h);
                hashes[slot] = h;
            }
            self.add_hashed(key.clone(), Some(hash));
        }
    }

    /// Hints the CPU to pull the summary-index lines `key`'s next
    /// [`Self::add`] or [`Self::query`] will touch
    /// ([`StreamSummary::prefetch`]). No observable effect.
    #[inline]
    pub fn prefetch(&self, key: &K) {
        self.summary.prefetch(key);
    }

    /// [`Self::prefetch`] with the caller supplying the key's
    /// [`crate::fasthash::hash_one`] value (see
    /// [`StreamSummary::prefetch_hashed`]).
    #[inline]
    pub fn prefetch_hashed(&self, hash: u64) {
        self.summary.prefetch_hashed(hash);
    }

    /// Estimated count of `key` (the counter value when monitored, otherwise
    /// the minimum counter value). Never underestimates the true count.
    ///
    /// When the summary still has free counters an absent key has necessarily
    /// never been seen, so the estimate is 0 rather than the minimum counter.
    pub fn query(&self, key: &K) -> u64 {
        self.summary.get(key).unwrap_or_else(|| {
            if self.summary.is_full() {
                self.summary.min_count()
            } else {
                0
            }
        })
    }

    /// A guaranteed lower bound on the count of `key` (`count - error` when
    /// monitored, 0 otherwise).
    pub fn query_lower(&self, key: &K) -> u64 {
        self.summary
            .get_with_error(key)
            .map(|(c, e)| c - e)
            .unwrap_or(0)
    }

    /// True when `key` currently holds a counter.
    pub fn is_monitored(&self, key: &K) -> bool {
        self.summary.contains(key)
    }

    /// The answer [`Self::query`] gives for any key *not* currently holding
    /// a counter: the minimum counter value once the summary is full, 0
    /// while it still has free counters. Snapshot code captures this at
    /// freeze time because it depends on the fill state.
    pub fn absent_query(&self) -> u64 {
        if self.summary.is_full() {
            self.summary.min_count()
        } else {
            0
        }
    }

    /// Current minimum counter value (0 when empty).
    pub fn min_count(&self) -> u64 {
        self.summary.min_count()
    }

    /// Starts recording per-slot changes for incremental snapshots
    /// ([`StreamSummary::enable_journal`]). Idempotent.
    pub fn enable_journal(&mut self) {
        self.summary.enable_journal();
    }

    /// True once [`Self::enable_journal`] has been called.
    pub fn journal_enabled(&self) -> bool {
        self.summary.journal_enabled()
    }

    /// Takes everything recorded since the previous drain
    /// ([`StreamSummary::drain_journal`]).
    pub fn drain_journal(&mut self) -> Option<crate::stream_summary::SummaryJournalDrain<K>> {
        self.summary.drain_journal()
    }

    /// SoA slot holding `key`, if monitored ([`StreamSummary::slot_of`]) —
    /// the tie-breaking rank of the incremental snapshot path.
    pub fn slot_of(&self, key: &K) -> Option<usize> {
        self.summary.slot_of(key)
    }

    /// The `(key, count, error)` stored in `slot`, if occupied
    /// ([`StreamSummary::slot_entry`]).
    pub fn slot_entry(&self, slot: usize) -> Option<(&K, u64, u64)> {
        self.summary.slot_entry(slot)
    }

    /// Clears all counters (Memento calls this at every frame boundary).
    pub fn flush(&mut self) {
        self.summary.clear();
        self.processed = 0;
    }

    /// Returns all keys whose *estimated* count is at least `threshold`
    /// (a superset of the true heavy hitters since estimates never
    /// underestimate).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<CounterSnapshot<K>> {
        let mut out: Vec<_> = self
            .summary
            .iter()
            .filter(|&(_, count, _)| count >= threshold)
            .map(|(k, count, error)| CounterSnapshot {
                key: k.clone(),
                count,
                error,
            })
            .collect();
        out.sort_by_key(|c| std::cmp::Reverse(c.count));
        out
    }

    /// Approximate heap footprint in bytes: one slot per counter (key,
    /// count, error, bucket link) plus the index. Used by the workspace's
    /// `space_bytes` accounting to compare algorithm memory at equal error.
    pub fn space_bytes(&self) -> usize {
        self.summary.capacity() * (std::mem::size_of::<K>() + 4 * std::mem::size_of::<u64>())
            + std::mem::size_of::<Self>()
    }

    /// Snapshot of every counter (used for merging and for the Aggregation
    /// communication method).
    pub fn snapshot(&self) -> Vec<CounterSnapshot<K>> {
        self.summary
            .iter()
            .map(|(k, count, error)| CounterSnapshot {
                key: k.clone(),
                count,
                error,
            })
            .collect()
    }

    /// Merges another instance's snapshot into a *combined* summary of the
    /// given capacity (standard mergeability of counter-based summaries,
    /// [Agarwal et al.]): counts of common keys add up; the result is then
    /// truncated to the `capacity` largest counters, folding the dropped mass
    /// into the error terms is not required for upper-bound queries.
    pub fn merge_snapshots(
        snapshots: &[Vec<CounterSnapshot<K>>],
        capacity: usize,
    ) -> SpaceSaving<K> {
        use std::collections::HashMap;
        let mut combined: HashMap<K, (u64, u64)> = HashMap::new();
        for snap in snapshots {
            for c in snap {
                let entry = combined.entry(c.key.clone()).or_insert((0, 0));
                entry.0 += c.count;
                entry.1 += c.error;
            }
        }
        let mut all: Vec<_> = combined.into_iter().collect();
        all.sort_by_key(|&(_, (count, _))| std::cmp::Reverse(count));
        all.truncate(capacity);
        // Rebuild a SpaceSaving holding the merged counts. We bypass `add` by
        // re-inserting each key `count` times worth of structure: since the
        // stream summary only supports +1 increments we instead rebuild with
        // direct increments (costly only at merge time, which is rare).
        let mut out = SpaceSaving::new(capacity);
        for (key, (count, _error)) in all {
            // First touch allocates the slot, remaining increments raise it.
            out.summary_insert_with_count(key, count);
        }
        out
    }

    /// Internal helper for merge: inserts `key` with an explicit count.
    fn summary_insert_with_count(&mut self, key: K, count: u64) {
        if count == 0 {
            return;
        }
        if !self.summary.contains(&key) {
            if self.summary.is_full() {
                self.summary.replace_min(key.clone());
            } else {
                self.summary.insert_new(key.clone());
            }
        }
        let current = self.summary.get(&key).unwrap_or(0);
        for _ in current..count {
            self.summary.increment(&key);
        }
        self.processed += count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_enough_counters() {
        let mut ss = SpaceSaving::new(8);
        let stream = [1u32, 2, 1, 3, 1, 2, 1];
        for &x in &stream {
            ss.add(x);
        }
        assert_eq!(ss.query(&1), 4);
        assert_eq!(ss.query(&2), 2);
        assert_eq!(ss.query(&3), 1);
        assert_eq!(ss.query(&4), 0, "absent key while counters are free");
    }

    #[test]
    fn absent_key_returns_min_counter() {
        let mut ss = SpaceSaving::new(2);
        for &x in &[1u32, 1, 2, 2, 2] {
            ss.add(x);
        }
        // counters: 1 -> 2, 2 -> 3 ; min = 2
        assert_eq!(ss.query(&99), 2);
    }

    #[test]
    fn eviction_follows_space_saving_rule() {
        let mut ss = SpaceSaving::new(2);
        ss.add("x");
        ss.add("x");
        ss.add("x");
        ss.add("x"); // x=4
        ss.add("y"); // y=1
                     // paper's own example: new flow y with min counter 4 -> value 5
        let mut ss2 = SpaceSaving::new(1);
        for _ in 0..4 {
            ss2.add("x");
        }
        assert_eq!(ss2.add("y"), 5);
        assert!(!ss2.is_monitored(&"x"));
        assert_eq!(ss.query(&"y"), 1);
    }

    #[test]
    fn overestimation_bounded_by_n_over_k() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        use std::collections::HashMap;
        let mut rng = StdRng::seed_from_u64(3);
        let k = 32;
        let mut ss = SpaceSaving::new(k);
        let mut truth: HashMap<u32, u64> = HashMap::new();
        let n = 20_000u64;
        for _ in 0..n {
            // Zipf-ish skew via squaring.
            let r: f64 = rng.gen();
            let key = (r * r * 500.0) as u32;
            ss.add(key);
            *truth.entry(key).or_insert(0) += 1;
        }
        for key in truth.keys() {
            let est = ss.query(key);
            let real = truth[key];
            assert!(est >= real, "Space Saving must never underestimate");
            assert!(
                est - real <= n / k as u64,
                "overestimation {} exceeds N/k={}",
                est - real,
                n / k as u64
            );
            assert!(ss.query_lower(key) <= real, "lower bound must hold");
        }
    }

    #[test]
    fn flush_clears_state() {
        let mut ss = SpaceSaving::new(4);
        ss.add(1);
        ss.add(1);
        ss.flush();
        assert_eq!(ss.processed(), 0);
        assert_eq!(ss.query(&1), 0);
        assert_eq!(ss.monitored(), 0);
    }

    #[test]
    fn heavy_hitters_sorted_and_filtered() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..10 {
            ss.add("big");
        }
        for _ in 0..3 {
            ss.add("mid");
        }
        ss.add("small");
        let hh = ss.heavy_hitters(3);
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0].key, "big");
        assert_eq!(hh[1].key, "mid");
    }

    #[test]
    fn with_epsilon_sizes_counters() {
        let ss = SpaceSaving::<u32>::with_epsilon(0.01);
        assert_eq!(ss.counters(), 100);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn with_bad_epsilon_panics() {
        let _ = SpaceSaving::<u32>::with_epsilon(0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = SpaceSaving::new(4);
        let mut b = SpaceSaving::new(4);
        for _ in 0..5 {
            a.add("x");
        }
        for _ in 0..7 {
            b.add("x");
        }
        for _ in 0..2 {
            b.add("y");
        }
        let merged = SpaceSaving::merge_snapshots(&[a.snapshot(), b.snapshot()], 4);
        assert_eq!(merged.query(&"x"), 12);
        assert_eq!(merged.query(&"y"), 2);
    }
}
