//! The *stream-summary* data structure behind [Space Saving](crate::SpaceSaving).
//!
//! The structure maintains at most `capacity` monitored keys, each with an
//! estimated count and an *error* term (the count the slot held when the key
//! took it over). Counters with equal counts are grouped into *buckets* that
//! form a doubly-linked list ordered by count, so the minimum counter, an
//! increment by one, and an eviction are all O(1).
//!
//! The implementation is index-based (no `unsafe`, no pointer juggling):
//! bucket nodes live in a `Vec` with a free list and links are `usize`
//! indices with `NIL` as the null sentinel. Counter slots are stored
//! **structure-of-arrays** for the per-packet hot path: the fields an
//! increment touches (count, bucket, neighbour links — `SlotHot`) live in
//! one dense `Vec`, while the key and its error term (`SlotCold`) — read
//! only on insertion, eviction and queries — live in a parallel `Vec`, so
//! bucket-list surgery never drags key bytes through the cache. The key →
//! slot index is a [`CompactMap`] probed with the workspace's fast hash
//! ([`crate::fasthash`]) rather than a SipHash `HashMap`: one cache-resident
//! fingerprint probe per operation.

use std::hash::Hash;

use crate::compact_map::CompactMap;

/// Null sentinel for the intrusive index-based linked lists.
const NIL: usize = usize::MAX;

/// The per-slot fields an increment touches (the hot array of the SoA
/// split): current count, owning bucket, and the neighbour links of the
/// bucket's child list.
#[derive(Debug, Clone)]
struct SlotHot {
    count: u64,
    bucket: usize,
    prev: usize,
    next: usize,
}

/// The per-slot fields only insertion/eviction/queries touch (the cold
/// array): the monitored key and the classical Space Saving `error` term
/// (the slot's value when the key took it over; `count - error` is a lower
/// bound on the key's true frequency).
#[derive(Debug, Clone)]
struct SlotCold<K> {
    key: Option<K>,
    error: u64,
}

#[derive(Debug, Clone)]
struct Bucket {
    count: u64,
    /// Head of the doubly-linked list of counter slots in this bucket.
    child: usize,
    prev: usize,
    next: usize,
    in_use: bool,
}

/// Change journal accumulated between two [`StreamSummary::drain_journal`]
/// calls (see [`StreamSummary::enable_journal`]). Boxed behind an `Option`
/// so summaries that never snapshot pay one null check per count change.
#[derive(Debug, Clone)]
struct SummaryJournal<K> {
    /// One bit per SoA slot: its count, key or error changed since the last
    /// drain.
    dirty: Vec<u64>,
    /// Keys evicted by [`StreamSummary::replace_min`] since the last drain.
    /// An evicted key may have been re-inserted afterwards; consumers must
    /// check the live summary.
    evicted: Vec<K>,
    /// Set when [`StreamSummary::clear`] wiped every slot: per-slot tracking
    /// is suspended and the next drain reports a full rebuild.
    cleared: bool,
}

/// The drained contents of a [`StreamSummary`] change journal, as returned
/// by [`StreamSummary::drain_journal`]. When `cleared` is set the per-slot
/// and per-key lists are empty and meaningless — the consumer must re-read
/// the whole summary.
#[derive(Debug)]
pub struct SummaryJournalDrain<K> {
    /// The summary was wholesale cleared since the last drain; rebuild
    /// instead of patching.
    pub cleared: bool,
    /// SoA slots whose count/key/error changed since the last drain,
    /// ascending. Read the live summary via [`StreamSummary::slot_entry`].
    pub dirty_slots: Vec<usize>,
    /// Keys evicted by `replace_min` since the last drain (possibly
    /// re-inserted later; check the live summary before treating one as
    /// gone).
    pub evicted: Vec<K>,
}

/// An O(1) stream-summary: the union of counter slots, count-ordered buckets
/// and a key index.
///
/// This is deliberately a low-level structure; [`crate::SpaceSaving`] wraps it
/// with the algorithmic policy (what to do when a new key arrives and all
/// slots are taken).
#[derive(Debug, Clone)]
pub struct StreamSummary<K: Eq + Hash + Clone> {
    /// Hot slot fields (count/bucket/links), parallel to `cold`.
    hot: Vec<SlotHot>,
    /// Cold slot fields (key/error), parallel to `hot`.
    cold: Vec<SlotCold<K>>,
    buckets: Vec<Bucket>,
    free_buckets: Vec<usize>,
    /// Bucket with the smallest count (head of the bucket list), or NIL.
    min_bucket: usize,
    index: CompactMap<K, usize>,
    capacity: usize,
    /// Change journal for incremental snapshot publication; `None` until
    /// [`Self::enable_journal`].
    journal: Option<Box<SummaryJournal<K>>>,
}

impl<K: Eq + Hash + Clone> StreamSummary<K> {
    /// Creates a summary able to monitor up to `capacity` keys.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stream summary capacity must be positive");
        StreamSummary {
            hot: Vec::with_capacity(capacity),
            cold: Vec::with_capacity(capacity),
            // At most capacity+1 distinct counts can coexist transiently.
            buckets: Vec::with_capacity(capacity + 1),
            free_buckets: Vec::new(),
            min_bucket: NIL,
            // The index can never hold more than `capacity` keys — one per
            // slot — so size it exactly (a seed-era version reserved 2×).
            index: CompactMap::with_capacity(capacity),
            capacity,
            journal: None,
        }
    }

    /// Starts recording per-slot changes for incremental snapshots
    /// ([`Self::drain_journal`]). The journal opens in the `cleared` state
    /// so the first drain after enabling always reports a full rebuild.
    /// Idempotent. The dirty bitset is sized once — the slot population is
    /// bounded by `capacity` — so a mark is a single word OR.
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Box::new(SummaryJournal {
                dirty: vec![0; self.capacity.div_ceil(64)],
                evicted: Vec::new(),
                cleared: true,
            }));
        }
    }

    /// True once [`Self::enable_journal`] has been called.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Takes everything recorded since the previous drain and resets the
    /// journal to clean. Returns `None` when the journal was never enabled.
    pub fn drain_journal(&mut self) -> Option<SummaryJournalDrain<K>> {
        let j = self.journal.as_deref_mut()?;
        let mut dirty_slots = Vec::new();
        if !j.cleared {
            for (w, &word) in j.dirty.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    dirty_slots.push(w * 64 + bits.trailing_zeros() as usize);
                    bits &= bits - 1;
                }
            }
        }
        let drained = SummaryJournalDrain {
            cleared: j.cleared,
            dirty_slots,
            evicted: std::mem::take(&mut j.evicted),
        };
        j.dirty.fill(0);
        j.cleared = false;
        Some(drained)
    }

    /// Records `slot` as changed. No-op without a journal or after a
    /// wholesale clear (the pending rebuild supersedes per-slot marks).
    #[inline]
    fn journal_mark(&mut self, slot: usize) {
        if let Some(j) = self.journal.as_deref_mut() {
            if !j.cleared {
                j.dirty[slot / 64] |= 1 << (slot % 64);
            }
        }
    }

    /// SoA slot holding `key`, if monitored — the stable per-summary
    /// identity the incremental snapshot path uses as a tie-breaking rank
    /// (slots never move: keys change slots only through eviction, which is
    /// journaled).
    #[inline]
    pub fn slot_of(&self, key: &K) -> Option<usize> {
        self.index.get(key).copied()
    }

    /// The `(key, count, error)` stored in `slot`, if occupied. The journal
    /// consumer reads dirty slots through this.
    #[inline]
    pub fn slot_entry(&self, slot: usize) -> Option<(&K, u64, u64)> {
        let cold = self.cold.get(slot)?;
        let key = cold.key.as_ref()?;
        Some((key, self.hot[slot].count, cold.error))
    }

    /// Number of monitored keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no key is monitored.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Maximum number of monitored keys.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when all slots are occupied.
    pub fn is_full(&self) -> bool {
        self.index.len() >= self.capacity
    }

    /// Count of the smallest monitored counter, or 0 when empty.
    pub fn min_count(&self) -> u64 {
        if self.min_bucket == NIL {
            0
        } else {
            self.buckets[self.min_bucket].count
        }
    }

    /// Estimated count for `key` if it is monitored.
    pub fn get(&self, key: &K) -> Option<u64> {
        self.index.get(key).map(|&slot| self.hot[slot].count)
    }

    /// Estimated count and error term for `key` if it is monitored.
    pub fn get_with_error(&self, key: &K) -> Option<(u64, u64)> {
        self.index
            .get(key)
            .map(|&slot| (self.hot[slot].count, self.cold[slot].error))
    }

    /// True when `key` currently holds a counter slot.
    pub fn contains(&self, key: &K) -> bool {
        self.index.contains_key(key)
    }

    /// Hints the CPU to pull the key-index lines a probe of `key` will
    /// touch ([`CompactMap::prefetch`]): the batched update pipelines call
    /// this a small lookahead before [`Self::increment`]/insertion so the
    /// index misses of a batch overlap. No observable effect.
    #[inline]
    pub fn prefetch(&self, key: &K) {
        self.index.prefetch(key);
    }

    /// [`Self::prefetch`] with the caller supplying the key's
    /// [`crate::fasthash::hash_one`] value, so one hash serves both the
    /// prefetch and the later [`Self::increment_hashed`] probe.
    #[inline]
    pub fn prefetch_hashed(&self, hash: u64) {
        self.index.prefetch_hashed(hash);
    }

    /// Increments the counter of a monitored `key` by one and returns the new
    /// count, or `None` when the key is not monitored. (One index probe: on
    /// the hot path callers use the `None` to branch to insertion instead of
    /// probing `contains` first.)
    pub fn increment(&mut self, key: &K) -> Option<u64> {
        let slot = *self.index.get(key)?;
        Some(self.increment_slot(slot))
    }

    /// [`Self::increment`] with the caller supplying `hash_one(key)` (see
    /// [`CompactMap::get_hashed`]).
    pub fn increment_hashed(&mut self, key: &K, hash: u64) -> Option<u64> {
        let slot = *self.index.get_hashed(hash, key)?;
        Some(self.increment_slot(slot))
    }

    /// Inserts a key that is *not currently monitored* into a free slot with
    /// initial count 1 and error 0. Returns `None` when the summary is full
    /// (use [`Self::replace_min`] in that case) or when the key is already
    /// present.
    pub fn insert_new(&mut self, key: K) -> Option<u64> {
        if self.is_full() || self.index.contains_key(&key) {
            return None;
        }
        let slot = self.hot.len();
        self.hot.push(SlotHot {
            count: 0,
            bucket: NIL,
            prev: NIL,
            next: NIL,
        });
        self.cold.push(SlotCold {
            key: Some(key.clone()),
            error: 0,
        });
        self.index.insert(key, slot);
        Some(self.increment_slot(slot))
    }

    /// Replaces the key of the minimum counter with `key`, charging the old
    /// count as the new key's error term, then increments it. Returns the new
    /// count together with the evicted key.
    ///
    /// # Panics
    /// Panics when the summary is empty or when `key` is already monitored
    /// (callers must check [`Self::contains`] first).
    pub fn replace_min(&mut self, key: K) -> (u64, K) {
        assert!(self.min_bucket != NIL, "replace_min on an empty summary");
        let slot = self.buckets[self.min_bucket].child;
        debug_assert_ne!(slot, NIL);
        let old_key = self.cold[slot]
            .key
            .clone()
            .expect("occupied slot must hold a key");
        assert!(
            !self.index.contains_key(&key),
            "replace_min with an already-monitored key"
        );
        self.index.remove(&old_key);
        self.cold[slot].error = self.hot[slot].count;
        self.cold[slot].key = Some(key.clone());
        self.index.insert(key, slot);
        if let Some(j) = self.journal.as_deref_mut() {
            if !j.cleared {
                j.evicted.push(old_key.clone());
            }
        }
        (self.increment_slot(slot), old_key)
    }

    /// Removes every monitored key, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.hot.clear();
        self.cold.clear();
        self.buckets.clear();
        self.free_buckets.clear();
        self.min_bucket = NIL;
        self.index.clear();
        if let Some(j) = self.journal.as_deref_mut() {
            j.cleared = true;
            j.evicted.clear();
            j.dirty.fill(0);
        }
    }

    /// Iterates over `(key, count, error)` for every monitored key, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64, u64)> {
        self.cold
            .iter()
            .zip(&self.hot)
            .filter_map(|(cold, hot)| cold.key.as_ref().map(|k| (k, hot.count, cold.error)))
    }

    // ---- internal plumbing --------------------------------------------------

    fn alloc_bucket(&mut self, count: u64) -> usize {
        if let Some(idx) = self.free_buckets.pop() {
            let b = &mut self.buckets[idx];
            b.count = count;
            b.child = NIL;
            b.prev = NIL;
            b.next = NIL;
            b.in_use = true;
            idx
        } else {
            self.buckets.push(Bucket {
                count,
                child: NIL,
                prev: NIL,
                next: NIL,
                in_use: true,
            });
            self.buckets.len() - 1
        }
    }

    fn free_bucket(&mut self, bucket: usize) {
        debug_assert_eq!(self.buckets[bucket].child, NIL);
        let (prev, next) = (self.buckets[bucket].prev, self.buckets[bucket].next);
        if prev != NIL {
            self.buckets[prev].next = next;
        } else if self.min_bucket == bucket {
            self.min_bucket = next;
        }
        if next != NIL {
            self.buckets[next].prev = prev;
        }
        self.buckets[bucket].in_use = false;
        self.buckets[bucket].prev = NIL;
        self.buckets[bucket].next = NIL;
        self.free_buckets.push(bucket);
    }

    /// Detaches `slot` from its bucket's child list (does not free the bucket).
    fn detach_slot(&mut self, slot: usize) {
        let bucket = self.hot[slot].bucket;
        let (prev, next) = (self.hot[slot].prev, self.hot[slot].next);
        if prev != NIL {
            self.hot[prev].next = next;
        } else if bucket != NIL {
            self.buckets[bucket].child = next;
        }
        if next != NIL {
            self.hot[next].prev = prev;
        }
        self.hot[slot].prev = NIL;
        self.hot[slot].next = NIL;
        self.hot[slot].bucket = NIL;
    }

    /// Attaches `slot` at the head of `bucket`'s child list.
    fn attach_slot(&mut self, slot: usize, bucket: usize) {
        let head = self.buckets[bucket].child;
        self.hot[slot].bucket = bucket;
        self.hot[slot].prev = NIL;
        self.hot[slot].next = head;
        if head != NIL {
            self.hot[head].prev = slot;
        }
        self.buckets[bucket].child = slot;
    }

    /// Moves `slot` from its current bucket to the bucket for `count + 1`,
    /// creating the destination bucket if needed. O(1) because counts only
    /// ever grow by one. Touches only the hot array and the bucket nodes —
    /// never the keys.
    fn increment_slot(&mut self, slot: usize) -> u64 {
        let old_bucket = self.hot[slot].bucket;
        let new_count = self.hot[slot].count + 1;
        self.hot[slot].count = new_count;

        // Locate the destination bucket: it is either the bucket right after
        // the current one (if its count matches) or a freshly created bucket
        // inserted right after the current one.
        let dest = if old_bucket == NIL {
            // Fresh slot (count was 0): destination is the min bucket if it
            // already holds `new_count`, otherwise a new bucket at the front.
            if self.min_bucket != NIL && self.buckets[self.min_bucket].count == new_count {
                self.min_bucket
            } else {
                let b = self.alloc_bucket(new_count);
                let old_min = self.min_bucket;
                self.buckets[b].next = old_min;
                if old_min != NIL {
                    self.buckets[old_min].prev = b;
                }
                self.min_bucket = b;
                b
            }
        } else {
            let next = self.buckets[old_bucket].next;
            if next != NIL && self.buckets[next].count == new_count {
                next
            } else {
                debug_assert!(next == NIL || self.buckets[next].count > new_count);
                let b = self.alloc_bucket(new_count);
                self.buckets[b].prev = old_bucket;
                self.buckets[b].next = next;
                self.buckets[old_bucket].next = b;
                if next != NIL {
                    self.buckets[next].prev = b;
                }
                b
            }
        };

        self.detach_slot(slot);
        self.attach_slot(slot, dest);
        if old_bucket != NIL && self.buckets[old_bucket].child == NIL {
            self.free_bucket(old_bucket);
        }
        // Every observable slot mutation funnels through here (insert_new
        // and replace_min both end in an increment), so one mark covers
        // count, key and error changes alike.
        self.journal_mark(slot);
        new_count
    }

    /// Debug helper: checks every structural invariant. Used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        // The arrays of the SoA split stay parallel.
        assert_eq!(self.hot.len(), self.cold.len());
        // Index consistency.
        for (key, &slot) in self.index.iter() {
            assert!(self.cold[slot].key.as_ref() == Some(key));
        }
        assert_eq!(
            self.index.len(),
            self.cold.iter().filter(|s| s.key.is_some()).count()
        );
        // Bucket list is strictly increasing and every child belongs to it.
        let mut seen_slots = 0usize;
        let mut b = self.min_bucket;
        let mut last = 0u64;
        let mut first = true;
        while b != NIL {
            let bucket = &self.buckets[b];
            assert!(bucket.in_use);
            assert!(first || bucket.count > last, "bucket counts must increase");
            first = false;
            last = bucket.count;
            assert_ne!(bucket.child, NIL, "bucket must not be empty");
            let mut s = bucket.child;
            let mut prev = NIL;
            while s != NIL {
                let slot = &self.hot[s];
                assert_eq!(slot.bucket, b);
                assert_eq!(slot.prev, prev);
                assert_eq!(slot.count, bucket.count);
                seen_slots += 1;
                prev = s;
                s = slot.next;
            }
            b = bucket.next;
        }
        assert_eq!(seen_slots, self.index.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_increment() {
        let mut s = StreamSummary::new(4);
        assert_eq!(s.insert_new("a"), Some(1));
        assert_eq!(s.insert_new("b"), Some(1));
        assert_eq!(s.increment(&"a"), Some(2));
        assert_eq!(s.get(&"a"), Some(2));
        assert_eq!(s.get(&"b"), Some(1));
        assert_eq!(s.get(&"c"), None);
        assert_eq!(s.min_count(), 1);
        s.check_invariants();
    }

    #[test]
    fn insert_new_rejects_duplicates_and_full() {
        let mut s = StreamSummary::new(2);
        assert!(s.insert_new(1).is_some());
        assert!(s.insert_new(1).is_none(), "duplicate must be rejected");
        assert!(s.insert_new(2).is_some());
        assert!(s.insert_new(3).is_none(), "full summary must reject");
        assert!(s.is_full());
    }

    #[test]
    fn replace_min_evicts_smallest() {
        let mut s = StreamSummary::new(2);
        s.insert_new("a");
        s.increment(&"a");
        s.increment(&"a"); // a -> 3
        s.insert_new("b"); // b -> 1
        let (count, evicted) = s.replace_min("c");
        assert_eq!(evicted, "b");
        assert_eq!(count, 2); // inherits 1 and increments
        assert_eq!(s.get_with_error(&"c"), Some((2, 1)));
        assert!(!s.contains(&"b"));
        s.check_invariants();
    }

    #[test]
    fn min_count_tracks_smallest_bucket() {
        let mut s = StreamSummary::new(3);
        assert_eq!(s.min_count(), 0);
        s.insert_new(10);
        s.insert_new(20);
        s.insert_new(30);
        assert_eq!(s.min_count(), 1);
        s.increment(&10);
        s.increment(&20);
        s.increment(&30);
        assert_eq!(s.min_count(), 2);
        s.check_invariants();
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = StreamSummary::new(3);
        s.insert_new(1);
        s.insert_new(2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.min_count(), 0);
        assert_eq!(s.get(&1), None);
        assert!(s.insert_new(1).is_some());
        s.check_invariants();
    }

    #[test]
    fn iter_reports_all_entries() {
        let mut s = StreamSummary::new(4);
        for k in 0..4 {
            s.insert_new(k);
        }
        s.increment(&2);
        let mut entries: Vec<_> = s.iter().map(|(k, c, e)| (*k, c, e)).collect();
        entries.sort();
        assert_eq!(entries, vec![(0, 1, 0), (1, 1, 0), (2, 2, 0), (3, 1, 0)]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = StreamSummary::<u32>::new(0);
    }

    #[test]
    fn journal_tracks_increments_evictions_and_clears() {
        let mut s = StreamSummary::new(2);
        assert!(s.drain_journal().is_none(), "journal off by default");
        s.enable_journal();
        assert!(s.drain_journal().unwrap().cleared, "first drain rebuilds");
        s.insert_new("a");
        s.insert_new("b");
        let d = s.drain_journal().unwrap();
        assert!(!d.cleared);
        assert_eq!(d.dirty_slots, vec![0, 1]);
        assert!(d.evicted.is_empty());
        // Increment only "a": only its slot is dirty.
        s.increment(&"a");
        let d = s.drain_journal().unwrap();
        assert_eq!(d.dirty_slots, vec![s.slot_of(&"a").unwrap()]);
        // replace_min evicts "b" and re-marks the reused slot.
        let (_, evicted) = s.replace_min("c");
        assert_eq!(evicted, "b");
        let d = s.drain_journal().unwrap();
        assert_eq!(d.evicted, vec!["b"]);
        assert_eq!(d.dirty_slots, vec![s.slot_of(&"c").unwrap()]);
        assert_eq!(s.slot_entry(s.slot_of(&"c").unwrap()).unwrap().0, &"c");
        // clear() suspends per-slot tracking until the rebuild drain.
        s.clear();
        s.insert_new("d");
        let d = s.drain_journal().unwrap();
        assert!(d.cleared && d.dirty_slots.is_empty() && d.evicted.is_empty());
    }

    #[test]
    fn long_random_sequence_keeps_invariants() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut s = StreamSummary::new(16);
        for _ in 0..5_000 {
            let key = rng.gen_range(0u32..64);
            if s.contains(&key) {
                s.increment(&key);
            } else if !s.is_full() {
                s.insert_new(key);
            } else {
                s.replace_min(key);
            }
        }
        s.check_invariants();
        assert_eq!(s.len(), 16);
    }
}
