//! Samplers.
//!
//! The paper attributes part of H-Memento's speed edge over RHHH to how
//! sampling is implemented (§6.2): Memento uses a pre-filled *random number
//! table*, whereas RHHH draws *geometric* skip counts. Both are provided here
//! so the comparison of Figure 7 is faithful.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// Common interface for per-packet Bernoulli samplers.
pub trait Sampler {
    /// Returns `true` when the current packet should receive the expensive
    /// (Full) update.
    fn sample(&mut self) -> bool;
    /// The sampling probability this sampler approximates.
    fn probability(&self) -> f64;
}

/// Bernoulli sampler backed by a pre-filled table of uniform numbers.
///
/// Each call consumes one table entry and compares it with a fixed threshold;
/// the table wraps around. This is the "random number table" implementation
/// the paper credits for Memento's fast sampling path.
#[derive(Debug, Clone)]
pub struct TableSampler {
    table: Vec<u32>,
    threshold: u32,
    tau: f64,
    pos: usize,
}

impl TableSampler {
    /// Default number of entries in the random table.
    pub const DEFAULT_TABLE_SIZE: usize = 1 << 16;

    /// Creates a sampler with probability `tau` using the default table size
    /// and a seed derived from the OS RNG.
    ///
    /// # Panics
    /// Panics if `tau` is not in `[0, 1]`.
    pub fn new(tau: f64) -> Self {
        Self::with_seed(tau, rand::thread_rng().next_u64())
    }

    /// Creates a deterministic sampler (used by tests and benches).
    pub fn with_seed(tau: f64, seed: u64) -> Self {
        Self::with_table_size(tau, Self::DEFAULT_TABLE_SIZE, seed)
    }

    /// Creates a sampler with an explicit table size.
    pub fn with_table_size(tau: f64, table_size: usize, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&tau),
            "tau must be in [0,1], got {tau}"
        );
        assert!(table_size > 0, "table size must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let table = (0..table_size).map(|_| rng.gen::<u32>()).collect();
        let threshold = threshold_for(tau);
        TableSampler {
            table,
            threshold,
            tau,
            pos: 0,
        }
    }

    /// Returns the next raw uniform `u32` from the table (also advances it).
    /// Exposed so callers needing both a coin flip and a uniform choice (e.g.
    /// H-Memento's random prefix pick) pay for a single table read.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let v = self.table[self.pos];
        self.pos += 1;
        if self.pos == self.table.len() {
            self.pos = 0;
        }
        v
    }
}

#[inline]
fn threshold_for(tau: f64) -> u32 {
    if tau >= 1.0 {
        u32::MAX
    } else {
        (tau * u32::MAX as f64) as u32
    }
}

impl Sampler for TableSampler {
    #[inline]
    fn sample(&mut self) -> bool {
        if self.tau >= 1.0 {
            // Still advance the table so speed comparisons at tau=1 include
            // the same bookkeeping.
            let _ = self.next_u32();
            return true;
        }
        self.next_u32() <= self.threshold
    }

    fn probability(&self) -> f64 {
        self.tau
    }
}

/// Combined sampler for hierarchical algorithms: on each packet it either
/// selects one of `h` prefix levels (with probability `tau / h` each, i.e.
/// overall probability `tau`) or nothing.
///
/// Conceptually this is the RHHH-style draw of a uniform integer in
/// `[0, V)` with `V = h / tau`, implemented over the random table.
#[derive(Debug, Clone)]
pub struct PrefixSampler {
    inner: TableSampler,
    h: usize,
    /// `V = h / tau`, the per-prefix inverse sampling rate.
    v: f64,
}

impl PrefixSampler {
    /// Creates a sampler over `h` prefix levels with overall Full-update
    /// probability `tau`.
    ///
    /// # Panics
    /// Panics if `h == 0` or `tau` is not in `(0, 1]`.
    pub fn new(h: usize, tau: f64, seed: u64) -> Self {
        assert!(h > 0, "hierarchy size must be positive");
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0,1], got {tau}");
        PrefixSampler {
            inner: TableSampler::with_seed(tau, seed),
            h,
            v: h as f64 / tau,
        }
    }

    /// The per-prefix inverse sampling rate `V = H / tau`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// The overall Full-update probability `tau`.
    pub fn tau(&self) -> f64 {
        self.inner.probability()
    }

    /// The hierarchy size `H`.
    pub fn h(&self) -> usize {
        self.h
    }

    /// Draws the per-packet decision: `Some(level)` (uniform over `0..h`)
    /// with probability `tau`, `None` otherwise.
    #[inline]
    pub fn sample_level(&mut self) -> Option<usize> {
        // One uniform draw: u in [0, 1). u * V < h  <=>  sample; the integer
        // part then selects the level uniformly.
        let u = self.inner.next_u32() as f64 / (u32::MAX as f64 + 1.0);
        let x = u * self.v;
        if x < self.h as f64 {
            Some(x as usize)
        } else {
            None
        }
    }
}

/// Geometric-skip Bernoulli sampler: instead of flipping a coin per packet it
/// draws how many packets to skip until the next positive sample (the
/// implementation strategy of RHHH). Cheap per packet when `tau` is small,
/// more expensive when `tau` is large — exactly the trade-off Figure 7
/// explores.
#[derive(Debug, Clone)]
pub struct GeometricSampler {
    rng: StdRng,
    tau: f64,
    /// Packets remaining until the next positive sample.
    remaining: u64,
}

impl GeometricSampler {
    /// Creates a sampler with probability `tau`.
    ///
    /// # Panics
    /// Panics if `tau` is not in `(0, 1]`.
    pub fn new(tau: f64, seed: u64) -> Self {
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0,1], got {tau}");
        let mut s = GeometricSampler {
            rng: StdRng::seed_from_u64(seed),
            tau,
            remaining: 0,
        };
        s.remaining = s.draw_skip();
        s
    }

    /// Draws a geometric skip count (number of failures before a success).
    fn draw_skip(&mut self) -> u64 {
        if self.tau >= 1.0 {
            return 0;
        }
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.ln() / (1.0 - self.tau).ln()).floor() as u64
    }
}

impl Sampler for GeometricSampler {
    #[inline]
    fn sample(&mut self) -> bool {
        if self.remaining == 0 {
            self.remaining = self.draw_skip();
            true
        } else {
            self.remaining -= 1;
            false
        }
    }

    fn probability(&self) -> f64 {
        self.tau
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empirical_rate(s: &mut dyn Sampler, n: usize) -> f64 {
        let mut hits = 0usize;
        for _ in 0..n {
            if s.sample() {
                hits += 1;
            }
        }
        hits as f64 / n as f64
    }

    #[test]
    fn table_sampler_matches_probability() {
        for &tau in &[0.5, 0.1, 0.01] {
            let mut s = TableSampler::with_seed(tau, 42);
            let rate = empirical_rate(&mut s, 200_000);
            assert!(
                (rate - tau).abs() < tau * 0.15 + 0.002,
                "tau={tau} rate={rate}"
            );
        }
    }

    #[test]
    fn table_sampler_tau_one_always_samples() {
        let mut s = TableSampler::with_seed(1.0, 1);
        assert!((0..1000).all(|_| s.sample()));
    }

    #[test]
    fn geometric_sampler_matches_probability() {
        for &tau in &[0.5, 0.05] {
            let mut s = GeometricSampler::new(tau, 9);
            let rate = empirical_rate(&mut s, 200_000);
            assert!(
                (rate - tau).abs() < tau * 0.15 + 0.002,
                "tau={tau} rate={rate}"
            );
        }
    }

    #[test]
    fn geometric_sampler_tau_one_always_samples() {
        let mut s = GeometricSampler::new(1.0, 1);
        assert!((0..1000).all(|_| s.sample()));
    }

    #[test]
    fn prefix_sampler_level_distribution_is_uniform() {
        let h = 5;
        let tau = 0.5;
        let mut s = PrefixSampler::new(h, tau, 77);
        let mut counts = vec![0u64; h];
        let n = 400_000;
        let mut total = 0u64;
        for _ in 0..n {
            if let Some(level) = s.sample_level() {
                assert!(level < h);
                counts[level] += 1;
                total += 1;
            }
        }
        let overall = total as f64 / n as f64;
        assert!((overall - tau).abs() < 0.01, "overall rate {overall}");
        let expected = total as f64 / h as f64;
        for (level, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.1,
                "level {level} count {c} expected {expected}"
            );
        }
    }

    #[test]
    fn prefix_sampler_exposes_v() {
        let s = PrefixSampler::new(25, 0.05, 3);
        assert!((s.v() - 500.0).abs() < 1e-9);
        assert_eq!(s.h(), 25);
        assert!((s.tau() - 0.05).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn table_sampler_rejects_bad_tau() {
        let _ = TableSampler::with_seed(1.5, 0);
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn geometric_sampler_rejects_zero_tau() {
        let _ = GeometricSampler::new(0.0, 0);
    }

    #[test]
    fn samplers_are_deterministic_with_seed() {
        let mut a = TableSampler::with_seed(0.3, 5);
        let mut b = TableSampler::with_seed(0.3, 5);
        for _ in 0..1000 {
            assert_eq!(a.sample(), b.sample());
        }
    }
}
