//! Exact reference counters.
//!
//! These are the ground-truth oracles behind every error metric in the
//! paper's evaluation (the on-arrival RMSE of §6, the flood-detection OPT
//! line of Figure 10, and all property tests).

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

use crate::compact_map::{CompactMap, MapJournalDrain};

/// Exact interval counter: counts every occurrence since creation or the last
/// [`ExactInterval::reset`]. This models the paper's "Interval" measurement
/// discipline at its most accurate.
#[derive(Debug, Clone, Default)]
pub struct ExactInterval<K: Eq + Hash + Clone> {
    counts: HashMap<K, u64>,
    processed: u64,
}

impl<K: Eq + Hash + Clone> ExactInterval<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        ExactInterval {
            counts: HashMap::new(),
            processed: 0,
        }
    }

    /// Records one occurrence of `key`.
    pub fn add(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.processed += 1;
    }

    /// Exact count of `key` in the current interval.
    pub fn query(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of items in the current interval.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Starts a fresh interval.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.processed = 0;
    }

    /// All keys whose count is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Iterates over all `(key, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

/// Exact sliding-window counter over the last `window` *stream positions*.
///
/// Keeps a ring buffer of the position-stamped keys still inside the window
/// plus a [`CompactMap`] of their counts (the same journaled open-addressing
/// table as the approximate structures, so incremental snapshots get slot
/// ranks and dirty tracking for free), so both update and query are O(1)
/// (amortized) and memory is O(window) — exactly the cost the paper's
/// approximate algorithms avoid.
///
/// The window is defined over global stream positions, not over recorded
/// items: [`ExactWindow::skip`] advances the position over packets observed
/// elsewhere (another shard of a partitioned deployment, another
/// measurement point) without recording them, evicting whatever the
/// advance pushes out of the last `window` positions. When every position
/// is recorded through [`ExactWindow::add`] — the single-instance case —
/// the two views coincide and the counter behaves exactly like the classic
/// "last `W` items" oracle.
#[derive(Debug, Clone)]
pub struct ExactWindow<K: Eq + Hash + Clone> {
    window: usize,
    /// Recorded items still inside the window, oldest first, each stamped
    /// with the (1-based) global stream position at which it was recorded.
    ring: VecDeque<(u64, K)>,
    counts: CompactMap<K, u64>,
    /// Global stream position: recorded items plus skipped packets.
    processed: u64,
}

impl<K: Eq + Hash + Clone> ExactWindow<K> {
    /// Creates a counter over the last `window` items.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        ExactWindow {
            window,
            ring: VecDeque::with_capacity(window),
            counts: CompactMap::new(),
            processed: 0,
        }
    }

    /// Starts recording per-slot count changes for incremental snapshots
    /// ([`CompactMap::enable_journal`]). Idempotent.
    pub fn enable_journal(&mut self) {
        self.counts.enable_journal();
    }

    /// True once [`Self::enable_journal`] has been called.
    pub fn journal_enabled(&self) -> bool {
        self.counts.journal_enabled()
    }

    /// Takes everything recorded since the previous drain
    /// ([`CompactMap::drain_journal`]).
    pub fn drain_journal(&mut self) -> Option<MapJournalDrain<K>> {
        self.counts.drain_journal()
    }

    /// Count-table slot holding `key`, if present ([`CompactMap::slot_of`])
    /// — the tie-breaking rank of the incremental snapshot path.
    pub fn slot_of(&self, key: &K) -> Option<usize> {
        self.counts.slot_of(key)
    }

    /// The `(key, count)` stored in `slot`, if occupied
    /// ([`CompactMap::slot_entry`]).
    pub fn slot_entry(&self, slot: usize) -> Option<(&K, u64)> {
        self.counts.slot_entry(slot).map(|(k, &c)| (k, c))
    }

    /// The window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total stream positions ever covered (recorded items plus skipped
    /// packets).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of recorded items currently inside the window
    /// (`min(processed, W)` when nothing was ever skipped).
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// Records one occurrence of `key` at the next stream position,
    /// expiring whatever leaves the last `W` positions.
    pub fn add(&mut self, key: K) {
        self.processed += 1;
        self.ring.push_back((self.processed, key.clone()));
        *self.counts.get_or_insert_with(key, || 0) += 1;
        self.evict_expired();
    }

    /// Advances the stream position over `n` packets observed elsewhere
    /// without recording them, expiring whatever the advance pushes out of
    /// the last `W` positions — for a full window, exactly equivalent to
    /// `n` evictions without an insert.
    ///
    /// The eviction is a **range eviction**, not a per-slot pop walk: the
    /// ring is position-sorted, so the expiry boundary is found by binary
    /// search and the expired prefix is drained in one pass; when the
    /// advance outruns every recorded position (`n ≥ W` on a full ring) the
    /// ring and the count table are cleared wholesale — `O(distinct keys)`
    /// instead of `W` per-slot pops with a hash-table decrement each, and
    /// `O(1)` once the ring is empty.
    pub fn skip(&mut self, n: u64) {
        self.processed += n;
        let horizon = self.processed.saturating_sub(self.window as u64);
        match self.ring.back() {
            None => {}
            Some((newest, _)) if *newest <= horizon => {
                // Every recorded item expired: retire the whole ring without
                // touching individual counts.
                self.ring.clear();
                self.counts.clear();
            }
            _ => {
                // Positions are strictly increasing along the ring: binary-
                // search the expiry boundary, then retire the prefix.
                let cut = self.ring.partition_point(|(pos, _)| *pos <= horizon);
                for (_, old) in self.ring.drain(..cut) {
                    if let Some(c) = self.counts.get_mut(&old) {
                        *c -= 1;
                        if *c == 0 {
                            self.counts.remove(&old);
                        }
                    }
                }
            }
        }
    }

    /// Bit-for-bit reference for [`Self::skip`]: the per-slot eviction loop
    /// this crate shipped before the range eviction (`O(evicted)` front
    /// pops, each with a hash-table decrement). Kept for the differential
    /// tests and as the baseline of the `sublinear_skip` bench; not part of
    /// the supported API.
    #[doc(hidden)]
    pub fn skip_reference(&mut self, n: u64) {
        self.processed += n;
        self.evict_expired();
    }

    /// Drops recorded items whose position fell out of the last `W`
    /// positions (the per-slot path: [`Self::add`] evicts at most one item
    /// per call, so a pop walk is already optimal there).
    fn evict_expired(&mut self) {
        let horizon = self.processed.saturating_sub(self.window as u64);
        while let Some((pos, _)) = self.ring.front() {
            if *pos > horizon {
                break;
            }
            let (_, old) = self.ring.pop_front().expect("front checked above");
            if let Some(c) = self.counts.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&old);
                }
            }
        }
    }

    /// Exact count of `key` among the last `W` stream positions.
    pub fn query(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// All keys whose window count is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Iterates over all `(key, window count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Number of distinct keys in the window.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Approximate heap footprint in bytes: the ring of position-stamped
    /// keys plus the count table — the linear-in-`W` cost the paper's
    /// approximate algorithms avoid.
    pub fn space_bytes(&self) -> usize {
        self.window * std::mem::size_of::<(u64, K)>()
            + self.counts.len() * (std::mem::size_of::<K>() + 2 * std::mem::size_of::<u64>())
            + std::mem::size_of::<Self>()
    }
}

/// Exact **time-based** sliding-window counter: counts every occurrence
/// whose timestamp lies in `(now − window_ticks, now]`.
///
/// This is the ground-truth oracle of the time plane (PR 9): where
/// [`ExactWindow`] defines its window over *stream positions* (and the
/// grain-mapped `TimedWindow` layer quantizes time onto that position
/// schedule), this counter evicts by the *recorded timestamps themselves* —
/// no grains, no quantization. The gate's `bursty-replay` row measures the
/// approximate time plane's on-arrival error against it, which therefore
/// includes the grain-quantization error by construction.
///
/// Timestamps are `u64` ticks of any unit. The clock policy matches the
/// time plane's: non-monotone timestamps clamp to the newest one observed
/// (never panic), duplicates are fine. Memory is O(items in window) — the
/// linear cost the approximate structures avoid.
#[derive(Debug, Clone)]
pub struct ExactTimedWindow<K: Eq + Hash + Clone> {
    window_ticks: u64,
    /// Recorded items still inside the window, oldest first, stamped with
    /// their (post-clamp) arrival tick.
    ring: VecDeque<(u64, K)>,
    counts: CompactMap<K, u64>,
    /// Newest (post-clamp) timestamp observed.
    now: u64,
    /// Items ever recorded.
    recorded: u64,
    /// Non-monotone timestamps clamped (diagnostics).
    clamped: u64,
}

impl<K: Eq + Hash + Clone> ExactTimedWindow<K> {
    /// Creates a counter over the trailing `window_ticks` clock ticks.
    ///
    /// # Panics
    /// Panics if `window_ticks == 0`.
    pub fn new(window_ticks: u64) -> Self {
        assert!(window_ticks > 0, "window must be positive");
        ExactTimedWindow {
            window_ticks,
            ring: VecDeque::new(),
            counts: CompactMap::new(),
            now: 0,
            recorded: 0,
            clamped: 0,
        }
    }

    /// The window length in clock ticks.
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// The newest (post-clamp) timestamp observed.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Items ever recorded.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Non-monotone timestamps clamped to the newest observation so far.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Number of recorded items currently inside the window.
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// Number of distinct keys in the window.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Clamps `t` to the newest observation and advances the clock.
    fn clamp(&mut self, t: u64) -> u64 {
        if t < self.now {
            self.clamped += 1;
            return self.now;
        }
        self.now = t;
        t
    }

    /// Records one occurrence of `key` at tick `t` (clamped monotone),
    /// evicting everything older than `t − window_ticks`.
    pub fn add_at(&mut self, key: K, t: u64) {
        let t = self.clamp(t);
        self.recorded += 1;
        self.ring.push_back((t, key.clone()));
        *self.counts.get_or_insert_with(key, || 0) += 1;
        self.evict();
    }

    /// Advances the clock to `t` without recording anything, evicting
    /// expired items. Same range-eviction shape as [`ExactWindow::skip`]:
    /// a binary-searched prefix drain, or a wholesale clear when the
    /// advance outruns every recorded timestamp.
    pub fn advance_to(&mut self, t: u64) {
        let _ = self.clamp(t);
        let Some(horizon) = self.now.checked_sub(self.window_ticks) else {
            return; // the window still reaches back past tick 0
        };
        match self.ring.back() {
            None => {}
            Some((newest, _)) if *newest <= horizon => {
                self.ring.clear();
                self.counts.clear();
            }
            _ => self.evict(),
        }
    }

    /// Drops items stamped at or before `now − window_ticks` (ticks are
    /// non-decreasing along the ring, so a front walk terminates at the
    /// first survivor).
    fn evict(&mut self) {
        let Some(horizon) = self.now.checked_sub(self.window_ticks) else {
            return;
        };
        while let Some((tick, _)) = self.ring.front() {
            if *tick > horizon {
                break;
            }
            let (_, old) = self.ring.pop_front().expect("front checked above");
            if let Some(c) = self.counts.get_mut(&old) {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&old);
                }
            }
        }
    }

    /// Exact count of `key` among the items of the last `window_ticks`
    /// ticks (as of the newest observation — call
    /// [`advance_to`](Self::advance_to) first to evict up to a later time).
    pub fn query(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// All keys whose window count is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_counts_exactly() {
        let mut c = ExactInterval::new();
        for x in [1, 2, 1, 1, 3] {
            c.add(x);
        }
        assert_eq!(c.query(&1), 3);
        assert_eq!(c.query(&2), 1);
        assert_eq!(c.query(&4), 0);
        assert_eq!(c.processed(), 5);
        c.reset();
        assert_eq!(c.query(&1), 0);
        assert_eq!(c.processed(), 0);
    }

    #[test]
    fn interval_heavy_hitters() {
        let mut c = ExactInterval::new();
        for _ in 0..5 {
            c.add("a");
        }
        for _ in 0..2 {
            c.add("b");
        }
        assert_eq!(c.heavy_hitters(3), vec![("a", 5)]);
        assert_eq!(c.heavy_hitters(1).len(), 2);
    }

    #[test]
    fn window_expires_old_items() {
        let mut w = ExactWindow::new(3);
        w.add(1);
        w.add(1);
        w.add(2);
        assert_eq!(w.query(&1), 2);
        w.add(3); // expels the first 1
        assert_eq!(w.query(&1), 1);
        w.add(3); // expels the second 1
        assert_eq!(w.query(&1), 0);
        assert_eq!(w.query(&3), 2);
        assert_eq!(w.occupancy(), 3);
        assert_eq!(w.distinct(), 2);
    }

    #[test]
    fn window_matches_naive_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let window = 50;
        let mut w = ExactWindow::new(window);
        let mut stream = Vec::new();
        for i in 0..2_000 {
            let key = rng.gen_range(0u32..20);
            stream.push(key);
            w.add(key);
            if i % 97 == 0 {
                let start = stream.len().saturating_sub(window);
                let probe = rng.gen_range(0u32..20);
                let naive = stream[start..].iter().filter(|&&k| k == probe).count() as u64;
                assert_eq!(w.query(&probe), naive);
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = ExactWindow::<u32>::new(0);
    }

    /// On a full window, `skip(n)` is exactly `n` evictions without an
    /// insert: the oldest `n` recorded items leave the window.
    #[test]
    fn skip_evicts_by_global_position() {
        let mut w = ExactWindow::new(4);
        for key in [1, 1, 2, 3] {
            w.add(key);
        }
        w.skip(2); // positions 1 and 2 (both 1s) fall out
        assert_eq!(w.query(&1), 0);
        assert_eq!(w.query(&2), 1);
        assert_eq!(w.query(&3), 1);
        assert_eq!(w.processed(), 6);
        assert_eq!(w.occupancy(), 2);
        // A later add lands at position 7; the window (4..=7] keeps 2 out.
        w.add(5);
        assert_eq!(w.query(&2), 0);
        assert_eq!(w.query(&3), 1);
        assert_eq!(w.query(&5), 1);
        // Skipping a whole window clears everything.
        w.skip(4);
        assert_eq!(w.occupancy(), 0);
        assert_eq!(w.distinct(), 0);
    }

    /// Interleaved add/skip matches a naive model that materializes the
    /// skipped positions as never-matching filler keys.
    #[test]
    fn skip_matches_materialized_filler_model() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let window = 60;
        let mut fast: ExactWindow<u64> = ExactWindow::new(window);
        let mut model: ExactWindow<u64> = ExactWindow::new(window);
        for i in 0..3_000u64 {
            if rng.gen_bool(0.3) {
                let n = rng.gen_range(1..25u64);
                fast.skip(n);
                for j in 0..n {
                    model.add(u64::MAX - (i * 32 + j)); // unique filler
                }
            } else {
                let key = rng.gen_range(0u64..12);
                fast.add(key);
                model.add(key);
            }
            if i % 61 == 0 {
                for key in 0u64..12 {
                    assert_eq!(fast.query(&key), model.query(&key), "key {key} at step {i}");
                }
                assert_eq!(fast.processed(), model.processed());
            }
        }
    }

    /// The range-evicting `skip` must match the per-slot reference walk on
    /// arbitrary add/skip interleavings, including whole-ring clears.
    #[test]
    fn range_eviction_skip_equals_per_slot_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let window = 90;
        let mut fast: ExactWindow<u64> = ExactWindow::new(window);
        let mut reference: ExactWindow<u64> = ExactWindow::new(window);
        for step in 0..2_500u64 {
            if rng.gen_bool(0.25) {
                // Mix small advances, exact-window advances and overshoots.
                let choices = [1, 7, window as u64 - 1, window as u64, 3 * window as u64];
                let n = choices[rng.gen_range(0..choices.len())];
                fast.skip(n);
                reference.skip_reference(n);
            } else {
                let key = rng.gen_range(0u64..15);
                fast.add(key);
                reference.add(key);
            }
            if step % 37 == 0 {
                assert_eq!(fast.processed(), reference.processed());
                assert_eq!(fast.occupancy(), reference.occupancy());
                assert_eq!(fast.distinct(), reference.distinct());
                for key in 0u64..15 {
                    assert_eq!(fast.query(&key), reference.query(&key), "key {key}");
                }
            }
        }
    }

    #[test]
    fn timed_window_evicts_by_timestamp() {
        let mut w = ExactTimedWindow::new(10);
        w.add_at(1, 0);
        w.add_at(1, 3);
        w.add_at(2, 9);
        assert_eq!(w.query(&1), 2);
        // t = 11: the window (1, 11] drops the item at t = 0 only.
        w.advance_to(11);
        assert_eq!(w.query(&1), 1);
        assert_eq!(w.query(&2), 1);
        // An idle gap past the whole window clears everything wholesale.
        w.advance_to(1_000);
        assert_eq!(w.occupancy(), 0);
        assert_eq!(w.distinct(), 0);
        assert_eq!(w.recorded(), 3);
    }

    #[test]
    fn timed_window_clamps_backward_clocks() {
        let mut w = ExactTimedWindow::new(5);
        w.add_at("a", 100);
        w.add_at("b", 7); // clamped to t = 100
        assert_eq!(w.clamped(), 1);
        assert_eq!(w.now(), 100);
        assert_eq!(w.query(&"b"), 1);
        w.advance_to(3); // also clamps; evicts nothing
        assert_eq!(w.clamped(), 2);
        assert_eq!(w.query(&"a"), 1);
    }

    #[test]
    fn timed_window_matches_naive_time_filter() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        let window = 40u64;
        let mut w: ExactTimedWindow<u32> = ExactTimedWindow::new(window);
        let mut log: Vec<(u64, u32)> = Vec::new();
        let mut t = 0u64;
        for i in 0..3_000u64 {
            t += rng.gen_range(0u64..4);
            let key = rng.gen_range(0u32..15);
            w.add_at(key, t);
            log.push((t, key));
            if i % 83 == 0 {
                let probe = rng.gen_range(0u32..15);
                let naive = log
                    .iter()
                    .filter(|&&(tick, k)| k == probe && tick + window > t)
                    .count() as u64;
                assert_eq!(w.query(&probe), naive, "probe {probe} at t {t}");
            }
        }
    }

    #[test]
    fn window_heavy_hitters_sorted() {
        let mut w = ExactWindow::new(10);
        for _ in 0..6 {
            w.add("hh");
        }
        for _ in 0..4 {
            w.add("small");
        }
        let hh = w.heavy_hitters(5);
        assert_eq!(hh, vec![("hh", 6)]);
    }
}
