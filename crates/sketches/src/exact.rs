//! Exact reference counters.
//!
//! These are the ground-truth oracles behind every error metric in the
//! paper's evaluation (the on-arrival RMSE of §6, the flood-detection OPT
//! line of Figure 10, and all property tests).

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Exact interval counter: counts every occurrence since creation or the last
/// [`ExactInterval::reset`]. This models the paper's "Interval" measurement
/// discipline at its most accurate.
#[derive(Debug, Clone, Default)]
pub struct ExactInterval<K: Eq + Hash + Clone> {
    counts: HashMap<K, u64>,
    processed: u64,
}

impl<K: Eq + Hash + Clone> ExactInterval<K> {
    /// Creates an empty counter.
    pub fn new() -> Self {
        ExactInterval {
            counts: HashMap::new(),
            processed: 0,
        }
    }

    /// Records one occurrence of `key`.
    pub fn add(&mut self, key: K) {
        *self.counts.entry(key).or_insert(0) += 1;
        self.processed += 1;
    }

    /// Exact count of `key` in the current interval.
    pub fn query(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Number of items in the current interval.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Starts a fresh interval.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.processed = 0;
    }

    /// All keys whose count is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Iterates over all `(key, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }
}

/// Exact sliding-window counter over the last `window` items.
///
/// Keeps a ring buffer of the last `window` keys plus a hash map of their
/// counts, so both update and query are O(1) (amortized) and memory is
/// O(window) — exactly the cost the paper's approximate algorithms avoid.
#[derive(Debug, Clone)]
pub struct ExactWindow<K: Eq + Hash + Clone> {
    window: usize,
    ring: VecDeque<K>,
    counts: HashMap<K, u64>,
    processed: u64,
}

impl<K: Eq + Hash + Clone> ExactWindow<K> {
    /// Creates a counter over the last `window` items.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        ExactWindow {
            window,
            ring: VecDeque::with_capacity(window),
            counts: HashMap::new(),
            processed: 0,
        }
    }

    /// The window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total number of items ever processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of items currently inside the window (`min(processed, W)`).
    pub fn occupancy(&self) -> usize {
        self.ring.len()
    }

    /// Records one occurrence of `key`, expiring the oldest item if the
    /// window is full.
    pub fn add(&mut self, key: K) {
        if self.ring.len() == self.window {
            if let Some(old) = self.ring.pop_front() {
                if let Some(c) = self.counts.get_mut(&old) {
                    *c -= 1;
                    if *c == 0 {
                        self.counts.remove(&old);
                    }
                }
            }
        }
        self.ring.push_back(key.clone());
        *self.counts.entry(key).or_insert(0) += 1;
        self.processed += 1;
    }

    /// Exact count of `key` among the last `W` items.
    pub fn query(&self, key: &K) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// All keys whose window count is at least `threshold`.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|&(_, &c)| c >= threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Iterates over all `(key, window count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// Number of distinct keys in the window.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Approximate heap footprint in bytes: the ring of the last `W` keys
    /// plus the count table — the linear-in-`W` cost the paper's approximate
    /// algorithms avoid.
    pub fn space_bytes(&self) -> usize {
        self.window * std::mem::size_of::<K>()
            + self.counts.len() * (std::mem::size_of::<K>() + 2 * std::mem::size_of::<u64>())
            + std::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_counts_exactly() {
        let mut c = ExactInterval::new();
        for x in [1, 2, 1, 1, 3] {
            c.add(x);
        }
        assert_eq!(c.query(&1), 3);
        assert_eq!(c.query(&2), 1);
        assert_eq!(c.query(&4), 0);
        assert_eq!(c.processed(), 5);
        c.reset();
        assert_eq!(c.query(&1), 0);
        assert_eq!(c.processed(), 0);
    }

    #[test]
    fn interval_heavy_hitters() {
        let mut c = ExactInterval::new();
        for _ in 0..5 {
            c.add("a");
        }
        for _ in 0..2 {
            c.add("b");
        }
        assert_eq!(c.heavy_hitters(3), vec![("a", 5)]);
        assert_eq!(c.heavy_hitters(1).len(), 2);
    }

    #[test]
    fn window_expires_old_items() {
        let mut w = ExactWindow::new(3);
        w.add(1);
        w.add(1);
        w.add(2);
        assert_eq!(w.query(&1), 2);
        w.add(3); // expels the first 1
        assert_eq!(w.query(&1), 1);
        w.add(3); // expels the second 1
        assert_eq!(w.query(&1), 0);
        assert_eq!(w.query(&3), 2);
        assert_eq!(w.occupancy(), 3);
        assert_eq!(w.distinct(), 2);
    }

    #[test]
    fn window_matches_naive_reference() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let window = 50;
        let mut w = ExactWindow::new(window);
        let mut stream = Vec::new();
        for i in 0..2_000 {
            let key = rng.gen_range(0u32..20);
            stream.push(key);
            w.add(key);
            if i % 97 == 0 {
                let start = stream.len().saturating_sub(window);
                let probe = rng.gen_range(0u32..20);
                let naive = stream[start..].iter().filter(|&&k| k == probe).count() as u64;
                assert_eq!(w.query(&probe), naive);
            }
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = ExactWindow::<u32>::new(0);
    }

    #[test]
    fn window_heavy_hitters_sorted() {
        let mut w = ExactWindow::new(10);
        for _ in 0..6 {
            w.add("hh");
        }
        for _ in 0..4 {
            w.add("small");
        }
        let hh = w.heavy_hitters(5);
        assert_eq!(hh, vec![("hh", 6)]);
    }
}
