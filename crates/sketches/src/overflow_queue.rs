//! The queue-of-queues `b` from Algorithm 1 of the Memento paper.
//!
//! Memento divides the window of `W` packets into `k` blocks. For every block
//! that still overlaps the sliding window it keeps a FIFO queue of the flow
//! identifiers that *overflowed* (crossed a multiple of the block size) during
//! that block — `k + 1` queues in total: the block currently being filled plus
//! the `k` previous ones.
//!
//! Three operations matter:
//! * when a block ends, the oldest queue is dropped and a fresh empty queue is
//!   appended ([`OverflowQueue::rotate`]);
//! * on *every* packet at most one identifier is popped from the oldest queue
//!   ([`OverflowQueue::pop_oldest`]) so that the per-flow overflow table `B`
//!   is updated incrementally — this is the de-amortization that gives
//!   Memento its constant worst-case update time (paper, §4.1);
//! * when the window advances over many packets at once (`skip(n)` on the
//!   enclosing algorithm), whole blocks rotate out in one call
//!   ([`OverflowQueue::rotate_drain`]), each dropped block's queue drained
//!   wholesale — the primitive behind the closed-form sublinear bulk
//!   advance.

use std::collections::VecDeque;

/// Queue of per-block overflow queues.
#[derive(Debug, Clone)]
pub struct OverflowQueue<K> {
    /// `queues[0]` is the oldest block still tracked, `queues.back()` is the
    /// block currently being filled.
    queues: VecDeque<VecDeque<K>>,
    blocks: usize,
    /// Total identifiers across all queues, maintained incrementally so the
    /// bulk-rotation paths can recognize the all-empty state in O(1).
    pending: usize,
}

impl<K> OverflowQueue<K> {
    /// Creates a structure tracking `blocks + 1` block queues (the paper's
    /// `k + 1`: `k` past blocks plus the current one).
    ///
    /// # Panics
    /// Panics if `blocks == 0`.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks > 0, "at least one block is required");
        let mut queues = VecDeque::with_capacity(blocks + 1);
        for _ in 0..=blocks {
            queues.push_back(VecDeque::new());
        }
        OverflowQueue {
            queues,
            blocks,
            pending: 0,
        }
    }

    /// Number of past blocks tracked (the `k` of Algorithm 1).
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Number of block queues held (`blocks + 1`: the past blocks plus the
    /// current one). A bulk advance that rotates at least this many times
    /// leaves every queue empty, which is what lets the enclosing
    /// algorithm's `skip(n)` collapse an arbitrarily large `n` into a
    /// wholesale clear.
    pub fn queue_count(&self) -> usize {
        self.queues.len()
    }

    /// Records that `key` overflowed during the current block.
    pub fn push_current(&mut self, key: K) {
        self.pending += 1;
        self.queues
            .back_mut()
            .expect("queue list is never empty")
            .push_back(key);
    }

    /// Pops one identifier from the oldest block's queue, if any.
    /// Called once per packet to de-amortize expiry of overflow counts.
    pub fn pop_oldest(&mut self) -> Option<K> {
        // The oldest non-empty queue among the expired ones would normally be
        // `queues[0]`; popping strictly from the front matches Algorithm 1
        // (`b.tail.POP()`).
        let popped = self
            .queues
            .front_mut()
            .expect("queue list is never empty")
            .pop_front();
        if popped.is_some() {
            self.pending -= 1;
        }
        popped
    }

    /// Block-boundary rotation: drops the oldest queue and appends a fresh
    /// empty queue for the new block. Returns the identifiers that were still
    /// pending in the dropped queue (normally empty thanks to the
    /// de-amortized draining; callers must still retire them to keep the
    /// overflow table exact).
    pub fn rotate(&mut self) -> VecDeque<K> {
        let dropped = self.queues.pop_front().expect("queue list is never empty");
        self.queues.push_back(VecDeque::new());
        self.pending -= dropped.len();
        dropped
    }

    /// Bulk block-boundary rotation: exactly equivalent to `rotations` ×
    /// ([`Self::rotate`] + retiring every returned identifier through
    /// `retire`), but sublinear in `rotations`:
    ///
    /// * with nothing pending anywhere the call returns immediately —
    ///   rotating empty queues only renames indistinguishable empty blocks,
    ///   so the shortcut is exact, not approximate;
    /// * `rotations ≥ queue_count()` drains *every* queue (each block,
    ///   including the current one, rotates out of the window) without
    ///   spinning through the excess rotations;
    /// * otherwise each dropped block's queue is drained wholesale and its
    ///   emptied allocation is reused as the fresh queue of a new block
    ///   (no per-rotation allocation, unlike [`Self::rotate`]), stopping
    ///   early once nothing is pending.
    ///
    /// This is the drain-whole-block primitive behind the closed-form
    /// `skip(n)` of the Memento/WCSS window algorithms.
    pub fn rotate_drain<F: FnMut(K)>(&mut self, rotations: usize, mut retire: F) {
        if self.pending == 0 {
            return;
        }
        if rotations >= self.queues.len() {
            for queue in &mut self.queues {
                for key in queue.drain(..) {
                    retire(key);
                }
            }
            self.pending = 0;
            return;
        }
        for _ in 0..rotations {
            let mut dropped = self.queues.pop_front().expect("queue list is never empty");
            self.pending -= dropped.len();
            for key in dropped.drain(..) {
                retire(key);
            }
            // Reuse the emptied allocation as the new current block.
            self.queues.push_back(dropped);
            if self.pending == 0 {
                // The remaining rotations would only rename empty blocks.
                return;
            }
        }
    }

    /// Total number of queued identifiers across all blocks.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Number of identifiers queued in the current (newest) block.
    pub fn current_len(&self) -> usize {
        self.queues.back().map(VecDeque::len).unwrap_or(0)
    }

    /// Number of identifiers queued in the oldest tracked block.
    pub fn oldest_len(&self) -> usize {
        self.queues.front().map(VecDeque::len).unwrap_or(0)
    }

    /// Approximate heap footprint in bytes: queued identifiers plus the
    /// per-block queue headers.
    pub fn space_bytes(&self) -> usize {
        self.pending() * std::mem::size_of::<K>()
            + self.queues.len() * std::mem::size_of::<VecDeque<K>>()
            + std::mem::size_of::<Self>()
    }

    /// Clears every queue (used when the enclosing algorithm is reset and by
    /// the closed-form `skip(n)` once an advance rotates every block out of
    /// the window). O(1) when nothing is pending.
    pub fn clear(&mut self) {
        if self.pending == 0 {
            return;
        }
        for q in &mut self.queues {
            q.clear();
        }
        self.pending = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_blocks_plus_one_queues() {
        let q = OverflowQueue::<u32>::new(4);
        assert_eq!(q.blocks(), 4);
        assert_eq!(q.queues.len(), 5);
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn push_goes_to_newest_pop_comes_from_oldest() {
        let mut q = OverflowQueue::new(2);
        q.push_current(1);
        q.push_current(2);
        // Nothing in the oldest block yet.
        assert_eq!(q.pop_oldest(), None);
        // After two rotations the block holding 1,2 becomes the oldest.
        q.rotate();
        q.rotate();
        assert_eq!(q.pop_oldest(), Some(1));
        assert_eq!(q.pop_oldest(), Some(2));
        assert_eq!(q.pop_oldest(), None);
    }

    #[test]
    fn rotate_returns_undrained_items() {
        let mut q = OverflowQueue::new(1);
        q.push_current(7);
        q.rotate(); // 7's block is now oldest
        let dropped = q.rotate(); // 7 was never drained
        assert_eq!(dropped, VecDeque::from(vec![7]));
    }

    #[test]
    fn draining_keeps_up_with_blocks() {
        // If we pop once per "packet" and a block holds at most as many
        // overflows as packets, the oldest queue is empty by rotation time.
        let mut q = OverflowQueue::new(3);
        let block_size = 10;
        for _block in 0..20 {
            for pkt in 0..block_size {
                if pkt % 3 == 0 {
                    q.push_current(pkt);
                }
                let _ = q.pop_oldest();
            }
            let dropped = q.rotate();
            assert!(dropped.is_empty(), "de-amortized drain must keep up");
        }
    }

    #[test]
    fn clear_empties_all_queues() {
        let mut q = OverflowQueue::new(2);
        q.push_current(1);
        q.rotate();
        q.push_current(2);
        q.clear();
        assert_eq!(q.pending(), 0);
        assert_eq!(q.current_len(), 0);
        assert_eq!(q.oldest_len(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_panics() {
        let _ = OverflowQueue::<u32>::new(0);
    }

    /// `rotate_drain(r, retire)` retires exactly what `r` × (`rotate` +
    /// retire-the-dropped) would, for every `r` relative to the queue count,
    /// and leaves the same observable queue contents behind.
    #[test]
    fn rotate_drain_matches_repeated_rotate() {
        for rotations in [0usize, 1, 2, 3, 4, 5, 9] {
            let mut bulk = OverflowQueue::new(3); // 4 queues
            let mut reference = OverflowQueue::new(3);
            // Spread keys over several blocks by interleaving pushes and
            // rotations, leaving some queues empty.
            let fill = |q: &mut OverflowQueue<u32>| {
                q.push_current(1);
                q.push_current(2);
                q.rotate();
                q.push_current(3);
                q.rotate();
                q.rotate();
                q.push_current(4);
                q.push_current(5);
            };
            fill(&mut bulk);
            fill(&mut reference);
            let mut bulk_retired = Vec::new();
            bulk.rotate_drain(rotations, |k| bulk_retired.push(k));
            let mut ref_retired = Vec::new();
            for _ in 0..rotations {
                ref_retired.extend(reference.rotate());
            }
            bulk_retired.sort_unstable();
            ref_retired.sort_unstable();
            assert_eq!(bulk_retired, ref_retired, "rotations = {rotations}");
            assert_eq!(
                bulk.pending(),
                reference.pending(),
                "rotations = {rotations}"
            );
            assert_eq!(
                bulk.oldest_len(),
                reference.oldest_len(),
                "rotations = {rotations}"
            );
            assert_eq!(
                bulk.current_len(),
                reference.current_len(),
                "rotations = {rotations}"
            );
        }
    }

    #[test]
    fn rotate_drain_past_every_queue_drains_everything() {
        let mut q = OverflowQueue::new(2);
        q.push_current(1);
        q.rotate();
        q.push_current(2);
        let mut retired = Vec::new();
        q.rotate_drain(100, |k| retired.push(k));
        retired.sort_unstable();
        assert_eq!(retired, vec![1, 2]);
        assert_eq!(q.pending(), 0);
        assert_eq!(q.queue_count(), 3);
    }

    #[test]
    fn pending_is_maintained_incrementally() {
        let mut q = OverflowQueue::new(2);
        assert_eq!(q.pending(), 0);
        q.push_current(1);
        q.push_current(2);
        assert_eq!(q.pending(), 2);
        q.rotate();
        q.rotate();
        assert_eq!(q.pending(), 2);
        assert_eq!(q.pop_oldest(), Some(1));
        assert_eq!(q.pending(), 1);
        let dropped = q.rotate(); // drops the queue still holding 2
        assert_eq!(dropped.len(), 1);
        assert_eq!(q.pending(), 0);
        // All-empty: rotate_drain must be a no-op without touching queues.
        q.rotate_drain(50, |_| panic!("nothing to retire"));
        q.clear();
        assert_eq!(q.pending(), 0);
    }
}
