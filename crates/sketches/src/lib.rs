//! # memento-sketches
//!
//! Counting substrates used throughout the [Memento (CoNEXT 2018)][paper]
//! reproduction:
//!
//! * [`SpaceSaving`] — the Space Saving algorithm of Metwally et al. backed by
//!   an O(1) *stream-summary* bucket structure ([`stream_summary`]). Memento
//!   uses one instance per frame; MST/RHHH use one per prefix level; the
//!   network-wide Aggregation baseline relies on its mergeability.
//! * [`ExactInterval`] and [`ExactWindow`] — exact reference counters used as
//!   ground truth for every error metric in the evaluation.
//! * [`OverflowQueue`] — the queue-of-queues `b` from Algorithm 1 of the
//!   paper: one FIFO of flow identifiers per block overlapping the sliding
//!   window, with de-amortized draining of the oldest block.
//! * [`TableSampler`] and [`GeometricSampler`] — the two sampling
//!   implementations the paper compares in §6.2 (random-number table for
//!   Memento/H-Memento, geometric skips for RHHH).
//! * [`FastHasher`]/[`FastBuildHasher`] and [`CompactMap`] — the
//!   cache-resident hot-path layer ([`fasthash`], [`compact_map`]): a
//!   dependency-free fxhash/SplitMix-style hash and a flat open-addressing
//!   map with one-byte fingerprints, backing every per-packet lookup
//!   (the stream-summary key index, Memento's overflow table, the shard
//!   routers via [`fasthash::route`]).
//!
//! [paper]: https://arxiv.org/abs/1810.02899

// `deny` rather than `forbid`: the two targeted `#[allow(unsafe_code)]`
// sites in the crate wrap x86_64 intrinsics — the software-prefetch hint
// ([`fasthash::prefetch`]), a no-access CPU hint that cannot fault, and
// `compact_map`'s 16-byte unaligned SSE2 control-group load, whose bounds
// a slice index checks on the line above it. Everything else that reads
// or writes memory remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod compact_map;
pub mod exact;
pub mod fasthash;
pub mod overflow_queue;
pub mod sampling;
pub mod space_saving;
pub mod stream_summary;

pub use compact_map::{CompactMap, MapJournalDrain, ProbeStats};
pub use exact::{ExactInterval, ExactTimedWindow, ExactWindow};
pub use fasthash::{FastBuildHasher, FastHasher};
pub use overflow_queue::OverflowQueue;
pub use sampling::{GeometricSampler, PrefixSampler, Sampler, TableSampler};
pub use space_saving::{CounterSnapshot, SpaceSaving};
pub use stream_summary::{StreamSummary, SummaryJournalDrain};
