//! Streaming exact sliding-window HHH oracle.
//!
//! Keeps exact per-prefix counts over the last `W` packets by feeding every
//! packet's `H` generalizations into an exact window of `W·H` entries.
//! Memory and time are linear in the window — exactly the cost the paper's
//! approximate algorithms avoid — but it provides the ground truth for the
//! RMSE metrics (Figures 5, 8, 9) and the OPT line of Figure 10.

use std::hash::Hash;

use memento_core::traits::{HhhAlgorithm, HhhQuery};
use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};
use memento_sketches::ExactWindow;

/// Exact sliding-window hierarchical frequency oracle.
#[derive(Debug, Clone)]
pub struct ExactWindowHhh<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    window: usize,
    counts: ExactWindow<Hi::Prefix>,
    processed: u64,
}

impl<Hi: Hierarchy> ExactWindowHhh<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates an oracle over the last `window` packets.
    pub fn new(hier: Hi, window: usize) -> Self {
        let h = hier.h();
        ExactWindowHhh {
            hier,
            window,
            counts: ExactWindow::new(window * h),
            processed: 0,
        }
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &Hi {
        &self.hier
    }

    /// Window size `W` in packets.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Packets processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Processes one packet (adds each of its `H` generalizations).
    pub fn update(&mut self, item: Hi::Item) {
        for i in 0..self.hier.h() {
            self.counts.add(self.hier.prefix_at(item, i));
        }
        self.processed += 1;
    }

    /// Advances the window over `n` packets observed elsewhere without
    /// recording them: global-position eviction on the inner exact window.
    /// Each packet occupies `H` entry positions (one per generalization),
    /// so the inner window of `W·H` entries advances by `n·H`.
    pub fn skip(&mut self, n: u64) {
        self.counts.skip(n * self.hier.h() as u64);
        self.processed += n;
    }

    /// Exact window frequency of a prefix.
    pub fn frequency(&self, prefix: &Hi::Prefix) -> u64 {
        self.counts.query(prefix)
    }

    /// Approximate heap footprint in bytes (linear in `W·H` — the cost the
    /// approximate algorithms avoid).
    pub fn space_bytes(&self) -> usize {
        self.counts.space_bytes()
    }

    /// All prefixes with non-zero window frequency.
    pub fn tracked_prefixes(&self) -> Vec<Hi::Prefix> {
        self.counts.iter().map(|(p, _)| *p).collect()
    }

    /// The exact window HHH set for threshold `θ`.
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let candidates = self.tracked_prefixes();
        let effective_window = (self.processed as usize).min(self.window);
        compute_hhh(
            &self.hier,
            self,
            &candidates,
            HhhParams::exact(theta * effective_window as f64),
        )
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for ExactWindowHhh<Hi>
where
    Hi::Prefix: Hash,
{
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.frequency(p) as f64
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.frequency(p) as f64
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for ExactWindowHhh<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "exact-window-hhh"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.frequency(prefix) as f64
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        ExactWindowHhh::output(self, theta)
    }

    fn processed(&self) -> u64 {
        ExactWindowHhh::processed(self)
    }
}

impl<Hi: Hierarchy> HhhAlgorithm<Hi> for ExactWindowHhh<Hi>
where
    Hi::Prefix: Hash,
{
    #[inline]
    fn update(&mut self, item: Hi::Item) {
        ExactWindowHhh::update(self, item);
    }

    /// Global-position eviction on the inner exact window
    /// ([`ExactWindowHhh::skip`]).
    fn skip(&mut self, n: u64) {
        ExactWindowHhh::skip(self, n);
    }

    fn space_bytes(&self) -> usize {
        ExactWindowHhh::space_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{exact_hhh, Prefix1D, SrcHierarchy};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn frequencies_are_exact_over_the_window() {
        let hier = SrcHierarchy;
        let w = 500;
        let mut oracle = ExactWindowHhh::new(hier, w);
        let mut rng = StdRng::seed_from_u64(1);
        let mut items = Vec::new();
        for _ in 0..2_000 {
            let it = addr(
                rng.gen_range(0..5),
                rng.gen_range(0..3),
                0,
                rng.gen_range(0..10),
            );
            oracle.update(it);
            items.push(it);
        }
        let suffix = &items[items.len() - w..];
        let truth = memento_hierarchy::prefix_frequencies(&hier, suffix.iter().copied());
        for (p, &f) in &truth {
            assert_eq!(oracle.frequency(p), f, "mismatch at {p}");
        }
    }

    #[test]
    fn output_matches_batch_exact_hhh() {
        let hier = SrcHierarchy;
        let w = 1_000;
        let mut oracle = ExactWindowHhh::new(hier, w);
        let mut rng = StdRng::seed_from_u64(7);
        let mut items = Vec::new();
        for _ in 0..3 * w {
            let it = if rng.gen::<f64>() < 0.4 {
                addr(10, 1, rng.gen_range(0..2), rng.gen_range(0..4))
            } else {
                addr(rng.gen_range(30..200), rng.gen(), rng.gen(), rng.gen())
            };
            oracle.update(it);
            items.push(it);
        }
        let theta = 0.2;
        let streaming = oracle.output(theta);
        let batch = exact_hhh(&hier, &items[items.len() - w..], theta * w as f64);
        assert_eq!(streaming, batch);
        assert!(streaming
            .iter()
            .any(|p| *p == Prefix1D::new(addr(10, 1, 0, 0), 16)
                || p.generalizes(&Prefix1D::new(addr(10, 1, 0, 0), 16))
                || Prefix1D::new(addr(10, 1, 0, 0), 16).generalizes(p)));
    }

    #[test]
    fn partial_window_uses_processed_count() {
        let hier = SrcHierarchy;
        let mut oracle = ExactWindowHhh::new(hier, 10_000);
        for _ in 0..100 {
            oracle.update(addr(5, 5, 5, 5));
        }
        // Only 100 packets seen: the threshold is relative to those 100.
        let hhh = oracle.output(0.5);
        assert!(hhh.contains(&Prefix1D::new(addr(5, 5, 5, 5), 32)));
    }
}
