//! The three measurement disciplines of §3 (Figure 1).
//!
//! All three detectors are *exact* (the paper's §3 argues with accurate
//! measurements; the conclusions carry over to approximate ones). They track
//! a single target flow and report, after each processed packet, whether the
//! flow is currently identified as a heavy hitter:
//!
//! * [`WindowDetector`] — the sliding-window discipline: the flow is reported
//!   as soon as its frequency within the last `W` packets reaches `θ·W`.
//!   By definition this is the optimal detection point.
//! * [`ImprovedIntervalDetector`] — the *improved Interval* discipline: the
//!   stream is cut into back-to-back intervals of `W` packets, frequencies
//!   are estimated on every packet but only count packets since the interval
//!   started.
//! * [`IntervalDetector`] — the plain *Interval* discipline: measurement data
//!   only becomes available at the end of each interval (the usage pattern of
//!   sampling-based systems that need time to converge).

use std::hash::Hash;

use memento_core::traits::SlidingWindowEstimator;
use memento_sketches::{ExactInterval, ExactWindow};

/// A detection discipline tracking one target flow.
pub trait Detector<K> {
    /// Processes one packet and returns whether the target flow is currently
    /// reported as a heavy hitter.
    fn process(&mut self, key: K) -> bool;

    /// The name of the discipline (used in bench output).
    fn name(&self) -> &'static str;
}

/// Sliding-window detection (optimal detection time by definition).
#[derive(Debug, Clone)]
pub struct WindowDetector<K: Eq + Hash + Clone> {
    window: ExactWindow<K>,
    target: K,
    threshold: u64,
}

impl<K: Eq + Hash + Clone> WindowDetector<K> {
    /// Creates a detector for `target` with window `W` and threshold `θ·W`
    /// packets.
    pub fn new(window: usize, target: K, threshold: u64) -> Self {
        WindowDetector {
            window: ExactWindow::new(window),
            target,
            threshold,
        }
    }
}

impl<K: Eq + Hash + Clone> Detector<K> for WindowDetector<K> {
    fn process(&mut self, key: K) -> bool {
        self.window.add(key);
        self.window.query(&self.target) >= self.threshold
    }

    fn name(&self) -> &'static str {
        "window"
    }
}

/// Improved-Interval detection: per-packet estimates, interval-scoped counts.
#[derive(Debug, Clone)]
pub struct ImprovedIntervalDetector<K: Eq + Hash + Clone> {
    counts: ExactInterval<K>,
    interval: usize,
    position: usize,
    target: K,
    threshold: u64,
}

impl<K: Eq + Hash + Clone> ImprovedIntervalDetector<K> {
    /// Creates a detector with interval length `interval` (the paper uses the
    /// window size `W`) and threshold in packets.
    pub fn new(interval: usize, target: K, threshold: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        ImprovedIntervalDetector {
            counts: ExactInterval::new(),
            interval,
            position: 0,
            target,
            threshold,
        }
    }
}

impl<K: Eq + Hash + Clone> Detector<K> for ImprovedIntervalDetector<K> {
    fn process(&mut self, key: K) -> bool {
        self.counts.add(key);
        self.position += 1;
        let detected = self.counts.query(&self.target) >= self.threshold;
        if self.position == self.interval {
            self.counts.reset();
            self.position = 0;
        }
        detected
    }

    fn name(&self) -> &'static str {
        "improved-interval"
    }
}

/// Plain Interval detection: results only materialize at interval boundaries
/// and stay in force until the next boundary.
#[derive(Debug, Clone)]
pub struct IntervalDetector<K: Eq + Hash + Clone> {
    counts: ExactInterval<K>,
    interval: usize,
    position: usize,
    target: K,
    threshold: u64,
    reported: bool,
}

impl<K: Eq + Hash + Clone> IntervalDetector<K> {
    /// Creates a detector with interval length `interval` and threshold in
    /// packets.
    pub fn new(interval: usize, target: K, threshold: u64) -> Self {
        assert!(interval > 0, "interval must be positive");
        IntervalDetector {
            counts: ExactInterval::new(),
            interval,
            position: 0,
            target,
            threshold,
            reported: false,
        }
    }
}

impl<K: Eq + Hash + Clone> Detector<K> for IntervalDetector<K> {
    fn process(&mut self, key: K) -> bool {
        self.counts.add(key);
        self.position += 1;
        if self.position == self.interval {
            // The measurement becomes available now and remains the reported
            // state for the whole next interval.
            self.reported = self.counts.query(&self.target) >= self.threshold;
            self.counts.reset();
            self.position = 0;
        }
        self.reported
    }

    fn name(&self) -> &'static str {
        "interval"
    }
}

/// Adapter running any [`SlidingWindowEstimator`] as a sliding-window
/// detection discipline: the flow is reported once its *estimated* window
/// frequency reaches the threshold.
///
/// This is the glue between the workspace's estimator trait layer and the
/// §3 detection framing — the same generic [`detection_index`] driver
/// measures the exact disciplines above and any approximate estimator
/// (Memento at any τ, WCSS, …) without per-algorithm driver code.
#[derive(Debug, Clone)]
pub struct EstimatorDetector<K, E> {
    estimator: E,
    target: K,
    threshold: f64,
}

impl<K: Clone, E: SlidingWindowEstimator<K>> EstimatorDetector<K, E> {
    /// Wraps `estimator` to detect `target` at `threshold` packets.
    pub fn new(estimator: E, target: K, threshold: f64) -> Self {
        EstimatorDetector {
            estimator,
            target,
            threshold,
        }
    }

    /// The wrapped estimator.
    pub fn estimator(&self) -> &E {
        &self.estimator
    }
}

impl<K: Clone, E: SlidingWindowEstimator<K>> Detector<K> for EstimatorDetector<K, E> {
    fn process(&mut self, key: K) -> bool {
        self.estimator.update(key);
        self.estimator.estimate(&self.target) >= self.threshold
    }

    fn name(&self) -> &'static str {
        self.estimator.name()
    }
}

/// Runs a detector over a packet stream and returns the index (0-based, in
/// packets) of the first packet at which the target is reported, or `None`.
/// This is the *only* detection driver in the workspace: every discipline
/// and every estimator-backed detector goes through it.
pub fn detection_index<K, D, I>(detector: &mut D, stream: I) -> Option<usize>
where
    D: Detector<K> + ?Sized,
    I: IntoIterator<Item = K>,
{
    for (i, key) in stream.into_iter().enumerate() {
        if detector.process(key) {
            return Some(i);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic stream: `start` background packets, then the new flow
    /// takes exactly every `1/fraction`-th slot.
    fn stream(total: usize, start: usize, period: usize) -> Vec<u64> {
        (0..total)
            .map(|i| {
                if i >= start && (i - start).is_multiple_of(period) {
                    1 // the emerging heavy hitter
                } else {
                    1_000_000 + i as u64 // all-distinct background
                }
            })
            .collect()
    }

    #[test]
    fn window_detects_at_the_optimal_point() {
        let w = 1_000;
        let threshold = 100; // theta = 0.1
                             // New flow takes every 5th packet (20% > 10%) starting at 2_500.
        let s = stream(10_000, 2_500, 5);
        let mut det = WindowDetector::new(w, 1u64, threshold);
        let idx = detection_index(&mut det, s).expect("must detect");
        // Optimal: needs 100 occurrences at 1 per 5 packets -> ~500 packets
        // after appearance.
        assert!(
            (2_995..=3_010).contains(&idx),
            "window detection at {idx}, expected ~2999"
        );
    }

    #[test]
    fn improved_interval_is_no_earlier_than_window() {
        let w = 1_000;
        let threshold = 100;
        let s = stream(10_000, 2_500, 5);
        let mut win = WindowDetector::new(w, 1u64, threshold);
        let mut imp = ImprovedIntervalDetector::new(w, 1u64, threshold);
        let widx = detection_index(&mut win, s.clone()).unwrap();
        let iidx = detection_index(&mut imp, s).unwrap();
        assert!(
            iidx >= widx,
            "improved interval ({iidx}) beat the window ({widx})"
        );
    }

    #[test]
    fn interval_is_the_slowest_and_detects_only_at_boundaries() {
        let w = 1_000;
        let threshold = 100;
        let s = stream(10_000, 2_500, 5);
        let mut imp = ImprovedIntervalDetector::new(w, 1u64, threshold);
        let mut plain = IntervalDetector::new(w, 1u64, threshold);
        let iidx = detection_index(&mut imp, s.clone()).unwrap();
        let pidx = detection_index(&mut plain, s).unwrap();
        assert!(
            pidx >= iidx,
            "plain interval ({pidx}) beat improved ({iidx})"
        );
        // Plain interval reports exactly at an interval boundary.
        assert_eq!(
            (pidx + 1) % w,
            0,
            "plain interval detected mid-interval at {pidx}"
        );
    }

    #[test]
    fn no_detection_when_flow_stays_below_threshold() {
        let w = 1_000;
        let threshold = 300; // 30%, but the flow only has 20%
        let s = stream(8_000, 0, 5);
        let mut det = WindowDetector::new(w, 1u64, threshold);
        assert_eq!(detection_index(&mut det, s), None);
    }

    #[test]
    fn estimator_detector_tracks_the_window_discipline() {
        use memento_core::Memento;
        let w = 1_000;
        let threshold = 100;
        let s = stream(10_000, 2_500, 5);
        let mut exact = WindowDetector::new(w, 1u64, threshold);
        // WCSS-mode Memento (tau = 1) with enough counters to be near-exact;
        // its estimate is an upper bound, so it can only detect earlier.
        let approx = Memento::new(256, w, 1.0, 7);
        let mut est = EstimatorDetector::new(approx, 1u64, threshold as f64);
        let exact_idx = detection_index(&mut exact, s.clone()).expect("exact must detect");
        let est_idx = detection_index(&mut est, s).expect("estimator must detect");
        assert!(
            est_idx <= exact_idx,
            "upper-bound estimator detected later ({est_idx}) than exact ({exact_idx})"
        );
        // And not absurdly early: within one block-quantization of the onset.
        assert!(est_idx >= 2_500, "detected before the flow appeared");
        assert_eq!(est.name(), "memento");
    }

    #[test]
    fn detection_driver_accepts_trait_objects() {
        let w = 500;
        let s = stream(5_000, 1_000, 4);
        let mut det = WindowDetector::new(w, 1u64, 50);
        let dyn_det: &mut dyn Detector<u64> = &mut det;
        assert!(detection_index(dyn_det, s).is_some());
    }

    #[test]
    fn detector_names_are_distinct() {
        let w: WindowDetector<u64> = WindowDetector::new(10, 1, 1);
        let i: IntervalDetector<u64> = IntervalDetector::new(10, 1, 1);
        let imp: ImprovedIntervalDetector<u64> = ImprovedIntervalDetector::new(10, 1, 1);
        let names = [w.name(), i.name(), imp.name()];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }
}
