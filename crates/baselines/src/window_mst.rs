//! The paper's **Baseline** window HHH algorithm: MST with its per-pattern
//! Space-Saving summaries replaced by WCSS sliding-window summaries.
//!
//! This is the best previously known sliding-window HHH construction (MST
//! proposed it with Lee & Ting's algorithm; the paper substitutes WCSS, the
//! state of the art, to compare against the strongest variant). Every packet
//! performs `H` *Full* window updates — exactly the cost H-Memento avoids —
//! so this is the comparison target of Figure 6.

use std::hash::Hash;

use memento_core::traits::{HhhAlgorithm, HhhQuery};
use memento_core::Wcss;
use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};

/// Window-MST ("Baseline"): one WCSS instance per prefix pattern.
#[derive(Debug, Clone)]
pub struct WindowMst<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    instances: Vec<Wcss<Hi::Prefix>>,
    window: usize,
}

impl<Hi: Hierarchy> WindowMst<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates a Baseline instance with `counters_per_instance` counters per
    /// pattern and a sliding window of `window` packets.
    pub fn new(hier: Hi, counters_per_instance: usize, window: usize) -> Self {
        let instances = (0..hier.h())
            .map(|_| Wcss::new(counters_per_instance, window))
            .collect();
        WindowMst {
            hier,
            instances,
            window,
        }
    }

    /// Creates a Baseline sized for a per-pattern error of `ε_a · W`.
    pub fn with_epsilon(hier: Hi, epsilon: f64, window: usize) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        let counters = (4.0 / epsilon).ceil() as usize;
        Self::new(hier, counters, window)
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &Hi {
        &self.hier
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total counters across all instances.
    pub fn counters(&self) -> usize {
        self.instances.iter().map(|i| i.counters()).sum()
    }

    /// Processes one packet: `H` Full window updates (the `O(H)` cost the
    /// paper's Figure 6 measures).
    pub fn update(&mut self, item: Hi::Item) {
        for i in 0..self.hier.h() {
            let prefix = self.hier.prefix_at(item, i);
            self.instances[i].update(prefix);
        }
    }

    /// Advances the window over `n` packets observed elsewhere: fans out to
    /// every per-pattern WCSS instance (each tracks the same stream, keyed
    /// by a different generalization), `H` closed-form bulk advances, each
    /// sublinear in `n`.
    pub fn skip(&mut self, n: u64) {
        for instance in &mut self.instances {
            instance.skip(n);
        }
    }

    /// Estimated window frequency of a prefix (upper bound).
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        let idx = self.hier.pattern_index(prefix);
        self.instances[idx].estimate(prefix)
    }

    /// Lower bound on the window frequency of a prefix.
    pub fn lower(&self, prefix: &Hi::Prefix) -> f64 {
        let idx = self.hier.pattern_index(prefix);
        self.instances[idx].lower_bound(prefix)
    }

    /// Approximate heap footprint in bytes: the `H` per-pattern WCSS
    /// summaries.
    pub fn space_bytes(&self) -> usize {
        self.instances
            .iter()
            .map(|inst| inst.as_memento().space_bytes())
            .sum()
    }

    /// Total packets processed so far.
    pub fn processed(&self) -> u64 {
        self.instances.first().map_or(0, Wcss::processed)
    }

    /// All prefixes currently tracked by any per-pattern instance.
    pub fn tracked_prefixes(&self) -> Vec<Hi::Prefix> {
        self.instances
            .iter()
            .flat_map(|inst| inst.as_memento().tracked_keys())
            .collect()
    }

    /// The approximate window HHH set for threshold `θ` (threshold `θ · W`).
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let candidates = self.tracked_prefixes();
        compute_hhh(
            &self.hier,
            self,
            &candidates,
            HhhParams::exact(theta * self.window as f64),
        )
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for WindowMst<Hi>
where
    Hi::Prefix: Hash,
{
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.estimate(p)
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.lower(p)
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for WindowMst<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "window-mst"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        WindowMst::estimate(self, prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        WindowMst::output(self, theta)
    }

    fn processed(&self) -> u64 {
        WindowMst::processed(self)
    }
}

impl<Hi: Hierarchy> HhhAlgorithm<Hi> for WindowMst<Hi>
where
    Hi::Prefix: Hash,
{
    #[inline]
    fn update(&mut self, item: Hi::Item) {
        WindowMst::update(self, item);
    }

    /// Bulk window advance fanned out over the `H` per-pattern WCSS
    /// instances ([`WindowMst::skip`]).
    fn skip(&mut self, n: u64) {
        WindowMst::skip(self, n);
    }

    fn space_bytes(&self) -> usize {
        WindowMst::space_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcHierarchy};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn window_semantics_forget_old_subnets() {
        let window = 2_000;
        let mut baseline = WindowMst::new(SrcHierarchy, 100, window);
        // Heavy subnet in the first window.
        for i in 0..window {
            baseline.update(addr(50, 1, 1, (i % 200) as u8));
        }
        let subnet = Prefix1D::new(addr(50, 0, 0, 0), 8);
        assert!(baseline.estimate(&subnet) > 0.8 * window as f64);
        // Two windows of unrelated traffic.
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2 * window {
            baseline.update(addr(
                rng.gen_range(100..250),
                rng.gen(),
                rng.gen(),
                rng.gen(),
            ));
        }
        let leftover = baseline.estimate(&subnet);
        assert!(
            leftover < 0.2 * window as f64,
            "stale subnet retained: {leftover}"
        );
    }

    #[test]
    fn output_reports_heavy_subnet() {
        let window = 5_000;
        let mut baseline = WindowMst::new(SrcHierarchy, 128, window);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..window {
            let it = if rng.gen::<f64>() < 0.45 {
                addr(77, rng.gen(), rng.gen(), rng.gen())
            } else {
                addr(rng.gen_range(1..60), rng.gen(), rng.gen(), rng.gen())
            };
            baseline.update(it);
        }
        let hhh = baseline.output(0.3);
        assert!(
            hhh.contains(&Prefix1D::new(addr(77, 0, 0, 0), 8)),
            "{hhh:?}"
        );
    }

    #[test]
    fn estimates_match_wcss_per_pattern() {
        // With a single repeated item, the /32 estimate must be ~count.
        let mut baseline = WindowMst::new(SrcHierarchy, 32, 1_000);
        for _ in 0..500 {
            baseline.update(addr(9, 9, 9, 9));
        }
        let host = Prefix1D::new(addr(9, 9, 9, 9), 32);
        let est = baseline.estimate(&host);
        assert!((est - 500.0).abs() <= 2.0 * (1_000 / 32) as f64 + 1.0);
        assert!(baseline.lower(&host) <= 500.0);
        assert_eq!(baseline.counters(), 5 * 32);
        assert_eq!(baseline.window(), 1_000);
    }

    #[test]
    fn with_epsilon_sizes_counters() {
        let b = WindowMst::with_epsilon(SrcHierarchy, 0.1, 1_000);
        assert_eq!(b.counters(), 5 * 40);
    }
}
