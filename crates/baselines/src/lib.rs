//! # memento-baselines
//!
//! The algorithms the [Memento paper][paper] compares against, plus the
//! exact oracles used as ground truth:
//!
//! * [`Mst`] — the interval HHH algorithm of Mitzenmacher, Steinke and Thaler
//!   (ALENEX 2012): one Space-Saving instance per prefix pattern, `O(H)`
//!   updates per packet. The "Interval" line of Figure 8.
//! * [`WindowMst`] — the paper's **Baseline**: MST with its per-pattern
//!   summaries replaced by WCSS window summaries, i.e. the best previously
//!   known sliding-window HHH algorithm. The comparison target of Figure 6.
//! * [`Rhhh`] — Randomized HHH (SIGCOMM 2017): constant-time interval HHH by
//!   updating at most one random per-pattern instance per packet. The
//!   comparison target of Figure 7.
//! * [`detectors`] — the Interval / Improved-Interval / Window detection
//!   disciplines of §3, used to regenerate Figure 1b.
//! * [`ExactWindowHhh`] — a streaming exact sliding-window HHH oracle
//!   (the OPT line of Figure 10 and the reference for all RMSE metrics).
//!
//! [paper]: https://arxiv.org/abs/1810.02899

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detectors;
pub mod exact_hhh;
pub mod mst;
pub mod rhhh;
pub mod window_mst;

pub use detectors::{
    Detector, EstimatorDetector, ImprovedIntervalDetector, IntervalDetector, WindowDetector,
};
pub use exact_hhh::ExactWindowHhh;
pub use mst::Mst;
pub use rhhh::Rhhh;
pub use window_mst::WindowMst;
