//! RHHH — Randomized Hierarchical Heavy Hitters (Ben Basat et al., SIGCOMM
//! 2017), the fastest known *interval* HHH algorithm and the speed
//! comparison target of Figure 7.
//!
//! RHHH keeps the MST lattice of per-pattern Space-Saving instances but, for
//! each packet, draws a uniform integer in `[1, V]` (`V ≥ H`): if it lands in
//! `[1, H]` the corresponding pattern instance is updated with that single
//! prefix, otherwise the packet is ignored. Updates are therefore constant
//! time; estimates are scaled by `V`. As the paper notes, RHHH implements the
//! sampling with a *geometric* skip counter, which is cheap at small sampling
//! probabilities and comparatively expensive at large ones — the opposite
//! trade-off of H-Memento's random-number table.
//!
//! RHHH measures intervals: there is no sliding window and the estimates
//! refer to everything since construction or the last [`Rhhh::reset`].

use std::hash::Hash;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use memento_core::analysis::z_value;
use memento_core::traits::{HhhAlgorithm, HhhQuery};
use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};
use memento_sketches::{GeometricSampler, Sampler, SpaceSaving};

/// The RHHH interval HHH algorithm.
#[derive(Debug, Clone)]
pub struct Rhhh<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    instances: Vec<SpaceSaving<Hi::Prefix>>,
    /// Geometric skip sampler firing with probability `τ = H / V`.
    sampler: GeometricSampler,
    level_rng: StdRng,
    /// Per-prefix inverse sampling rate `V`.
    v: f64,
    /// Confidence for the sampling compensation used by `output`.
    delta: f64,
    processed: u64,
    updates: u64,
}

impl<Hi: Hierarchy> Rhhh<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates an RHHH instance.
    ///
    /// * `counters_per_instance` — Space-Saving counters per pattern;
    /// * `tau` — overall update probability (`H/V`), in `(0, 1]`;
    /// * `delta` — confidence for the sampling compensation;
    /// * `seed` — RNG seed.
    pub fn new(hier: Hi, counters_per_instance: usize, tau: f64, delta: f64, seed: u64) -> Self {
        assert!(tau > 0.0 && tau <= 1.0, "tau must be in (0,1], got {tau}");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        let h = hier.h();
        let instances = (0..h)
            .map(|_| SpaceSaving::new(counters_per_instance))
            .collect();
        Rhhh {
            hier,
            instances,
            sampler: GeometricSampler::new(tau, seed),
            level_rng: StdRng::seed_from_u64(seed ^ 0xABCD_EF01),
            v: h as f64 / tau,
            delta,
            processed: 0,
            updates: 0,
        }
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &Hi {
        &self.hier
    }

    /// The per-prefix inverse sampling rate `V = H/τ`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Packets processed since the last reset (the interval length `N`).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of packets that actually updated an instance.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Total counters across all instances.
    pub fn counters(&self) -> usize {
        self.instances.iter().map(|i| i.counters()).sum()
    }

    /// Processes one packet: with probability `τ = H/V` updates one uniformly
    /// chosen pattern instance, otherwise only advances the packet counter.
    #[inline]
    pub fn update(&mut self, item: Hi::Item) {
        self.processed += 1;
        if self.sampler.sample() {
            let level = self.level_rng.gen_range(0..self.hier.h());
            let prefix = self.hier.prefix_at(item, level);
            self.instances[level].add(prefix);
            self.updates += 1;
        }
    }

    /// Estimated interval frequency of a prefix (`V ·` instance estimate).
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        let idx = self.hier.pattern_index(prefix);
        self.instances[idx].query(prefix) as f64 * self.v
    }

    /// Lower bound on the interval frequency of a prefix.
    pub fn lower(&self, prefix: &Hi::Prefix) -> f64 {
        let idx = self.hier.pattern_index(prefix);
        self.instances[idx].query_lower(prefix) as f64 * self.v
    }

    /// Starts a fresh measurement interval.
    pub fn reset(&mut self) {
        for inst in &mut self.instances {
            inst.flush();
        }
        self.processed = 0;
        self.updates = 0;
    }

    /// Approximate heap footprint in bytes: the `H` per-pattern summaries.
    pub fn space_bytes(&self) -> usize {
        self.instances.iter().map(SpaceSaving::space_bytes).sum()
    }

    /// All prefixes currently monitored by any instance.
    pub fn tracked_prefixes(&self) -> Vec<Hi::Prefix> {
        self.instances
            .iter()
            .flat_map(|inst| inst.snapshot().into_iter().map(|c| c.key))
            .collect()
    }

    /// The additive sampling compensation `2·Z₁₋δ·√(V·N)` used by
    /// [`Self::output`] so that, with high probability, no true HHH is
    /// missed despite the sampling.
    pub fn sampling_slack(&self) -> f64 {
        2.0 * z_value(1.0 - self.delta) * (self.v * self.processed as f64).sqrt()
    }

    /// The approximate HHH set for threshold `θ` over the current interval.
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let candidates = self.tracked_prefixes();
        compute_hhh(
            &self.hier,
            self,
            &candidates,
            HhhParams {
                threshold: theta * self.processed as f64,
                sampling_slack: self.sampling_slack(),
            },
        )
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for Rhhh<Hi>
where
    Hi::Prefix: Hash,
{
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.estimate(p)
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.lower(p)
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for Rhhh<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "rhhh"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        Rhhh::estimate(self, prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        Rhhh::output(self, theta)
    }

    fn processed(&self) -> u64 {
        Rhhh::processed(self)
    }
}

impl<Hi: Hierarchy> HhhAlgorithm<Hi> for Rhhh<Hi>
where
    Hi::Prefix: Hash,
{
    #[inline]
    fn update(&mut self, item: Hi::Item) {
        Rhhh::update(self, item);
    }

    /// No-op: RHHH is an interval algorithm — it counts everything since
    /// its last reset and has no sliding window to advance, so packets
    /// observed elsewhere are simply outside its interval.
    fn skip(&mut self, _n: u64) {}

    fn space_bytes(&self) -> usize {
        Rhhh::space_bytes(self)
    }

    fn is_interval(&self) -> bool {
        true
    }

    fn reset_interval(&mut self) {
        self.reset();
    }

    /// Interval semantics opt out: `skip` is a no-op here, so an RHHH
    /// instance cannot anchor a partition's window at the global stream
    /// position and the sharded-window engines refuse it at construction.
    fn mergeable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcDstHierarchy, SrcHierarchy};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn estimates_converge_for_large_flows() {
        let mut rhhh = Rhhh::new(SrcHierarchy, 256, 0.5, 0.01, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        for _ in 0..n {
            let it = if rng.gen::<f64>() < 0.3 {
                addr(44, rng.gen(), rng.gen(), rng.gen())
            } else {
                addr(rng.gen_range(1..40), rng.gen(), rng.gen(), rng.gen())
            };
            rhhh.update(it);
        }
        let subnet = Prefix1D::new(addr(44, 0, 0, 0), 8);
        let est = rhhh.estimate(&subnet);
        let expected = 0.3 * n as f64;
        assert!(
            (est - expected).abs() < 0.25 * expected,
            "est {est}, expected {expected}"
        );
    }

    #[test]
    fn update_rate_matches_tau() {
        let mut rhhh = Rhhh::new(SrcDstHierarchy, 64, 0.1, 0.01, 5);
        for i in 0..50_000u32 {
            rhhh.update((i, i.wrapping_mul(7)));
        }
        let rate = rhhh.updates() as f64 / rhhh.processed() as f64;
        assert!((rate - 0.1).abs() < 0.02, "update rate {rate}");
        assert!((rhhh.v() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn output_detects_heavy_subnet_with_no_false_negative() {
        let mut rhhh = Rhhh::new(SrcHierarchy, 512, 0.8, 0.05, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 80_000;
        for _ in 0..n {
            let it = if rng.gen::<f64>() < 0.5 {
                addr(99, rng.gen(), rng.gen(), rng.gen())
            } else {
                addr(rng.gen_range(1..90), rng.gen(), rng.gen(), rng.gen())
            };
            rhhh.update(it);
        }
        let hhh = rhhh.output(0.25);
        assert!(
            hhh.contains(&Prefix1D::new(addr(99, 0, 0, 0), 8)),
            "heavy /8 missing from {hhh:?}"
        );
    }

    #[test]
    fn reset_clears_interval() {
        let mut rhhh = Rhhh::new(SrcHierarchy, 32, 1.0, 0.01, 0);
        for _ in 0..1000 {
            rhhh.update(addr(1, 1, 1, 1));
        }
        assert!(rhhh.estimate(&Prefix1D::new(addr(1, 1, 1, 1), 32)) > 0.0);
        rhhh.reset();
        assert_eq!(rhhh.processed(), 0);
        assert_eq!(rhhh.estimate(&Prefix1D::new(addr(1, 1, 1, 1), 32)), 0.0);
    }

    #[test]
    #[should_panic(expected = "tau")]
    fn invalid_tau_panics() {
        let _ = Rhhh::new(SrcHierarchy, 8, 0.0, 0.01, 0);
    }
}
