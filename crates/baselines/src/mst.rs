//! MST — interval hierarchical heavy hitters with one Space-Saving instance
//! per prefix pattern (Mitzenmacher, Steinke, Thaler — ALENEX 2012).
//!
//! Every arriving packet is expanded into its `H` generalizations and each is
//! fed to the Space-Saving instance of its pattern, so updates cost `O(H)`.
//! Queries are answered from the per-pattern instance; the HHH set is
//! computed with the same conditioned-frequency machinery used by the other
//! algorithms. MST measures *intervals*: its state covers everything since
//! construction or the last [`Mst::reset`].

use std::hash::Hash;

use memento_core::traits::{HhhAlgorithm, HhhQuery};
use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};
use memento_sketches::SpaceSaving;

/// The MST interval HHH algorithm.
#[derive(Debug, Clone)]
pub struct Mst<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    /// One Space-Saving instance per prefix pattern.
    instances: Vec<SpaceSaving<Hi::Prefix>>,
    /// Packets processed since the last reset (the interval length `N`).
    processed: u64,
}

impl<Hi: Hierarchy> Mst<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates an MST instance with `counters_per_instance` counters in each
    /// of the `H` per-pattern summaries.
    pub fn new(hier: Hi, counters_per_instance: usize) -> Self {
        let instances = (0..hier.h())
            .map(|_| SpaceSaving::new(counters_per_instance))
            .collect();
        Mst {
            hier,
            instances,
            processed: 0,
        }
    }

    /// Creates an MST instance sized for a per-pattern additive error of
    /// `epsilon * N` (`⌈1/ε⌉` counters per instance, `H/ε` in total).
    pub fn with_epsilon(hier: Hi, epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
        let counters = (1.0 / epsilon).ceil() as usize;
        Self::new(hier, counters)
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &Hi {
        &self.hier
    }

    /// Total counters across all instances.
    pub fn counters(&self) -> usize {
        self.instances.iter().map(|i| i.counters()).sum()
    }

    /// Packets processed in the current interval.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Processes one packet: `H` Space-Saving updates, one per pattern.
    pub fn update(&mut self, item: Hi::Item) {
        for i in 0..self.hier.h() {
            let prefix = self.hier.prefix_at(item, i);
            self.instances[i].add(prefix);
        }
        self.processed += 1;
    }

    /// Estimated interval frequency of a prefix (upper bound).
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        let idx = self.hier.pattern_index(prefix);
        self.instances[idx].query(prefix) as f64
    }

    /// Guaranteed lower bound on the interval frequency of a prefix.
    pub fn lower(&self, prefix: &Hi::Prefix) -> f64 {
        let idx = self.hier.pattern_index(prefix);
        self.instances[idx].query_lower(prefix) as f64
    }

    /// Starts a new measurement interval (the usage pattern of interval-based
    /// mitigation systems the paper describes in §3).
    pub fn reset(&mut self) {
        for inst in &mut self.instances {
            inst.flush();
        }
        self.processed = 0;
    }

    /// Approximate heap footprint in bytes: the `H` per-pattern summaries.
    pub fn space_bytes(&self) -> usize {
        self.instances.iter().map(SpaceSaving::space_bytes).sum()
    }

    /// All prefixes currently monitored by any per-pattern instance.
    pub fn tracked_prefixes(&self) -> Vec<Hi::Prefix> {
        self.instances
            .iter()
            .flat_map(|inst| inst.snapshot().into_iter().map(|c| c.key))
            .collect()
    }

    /// The approximate HHH set for threshold `θ` over the current interval
    /// (threshold is `θ · N` with `N` the interval length so far).
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let candidates = self.tracked_prefixes();
        compute_hhh(
            &self.hier,
            self,
            &candidates,
            HhhParams::exact(theta * self.processed as f64),
        )
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for Mst<Hi>
where
    Hi::Prefix: Hash,
{
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.estimate(p)
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.lower(p)
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for Mst<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "mst"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        Mst::estimate(self, prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        Mst::output(self, theta)
    }

    fn processed(&self) -> u64 {
        Mst::processed(self)
    }
}

impl<Hi: Hierarchy> HhhAlgorithm<Hi> for Mst<Hi>
where
    Hi::Prefix: Hash,
{
    #[inline]
    fn update(&mut self, item: Hi::Item) {
        Mst::update(self, item);
    }

    /// No-op: MST is an interval algorithm — it counts everything since its
    /// last reset and has no sliding window to advance, so packets observed
    /// elsewhere are simply outside its interval.
    fn skip(&mut self, _n: u64) {}

    fn space_bytes(&self) -> usize {
        Mst::space_bytes(self)
    }

    fn is_interval(&self) -> bool {
        true
    }

    fn reset_interval(&mut self) {
        self.reset();
    }

    /// Interval semantics opt out: `skip` is a no-op here, so an MST
    /// instance cannot anchor a partition's window at the global stream
    /// position and the sharded-window engines refuse it at construction.
    fn mergeable(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{
        exact_hhh, prefix_frequencies, Prefix1D, SrcDstHierarchy, SrcHierarchy,
    };
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn estimates_never_undershoot_exact_interval_counts() {
        let hier = SrcHierarchy;
        let mut mst = Mst::new(hier, 64);
        let mut rng = StdRng::seed_from_u64(1);
        let items: Vec<u32> = (0..20_000)
            .map(|_| {
                addr(
                    rng.gen_range(0..20),
                    rng.gen_range(0..4),
                    0,
                    rng.gen_range(0..16),
                )
            })
            .collect();
        for &it in &items {
            mst.update(it);
        }
        let exact = prefix_frequencies(&hier, items.iter().copied());
        for (p, &f) in &exact {
            let est = mst.estimate(p);
            assert!(est + 1e-9 >= f as f64, "undershoot at {p}: {est} < {f}");
            assert!(mst.lower(p) <= f as f64, "lower bound violated at {p}");
            // Space Saving per-pattern error bound: N / counters.
            assert!(
                est - f as f64 <= (items.len() / 64 + 1) as f64,
                "error too large at {p}"
            );
        }
    }

    #[test]
    fn output_covers_exact_hhh() {
        let hier = SrcHierarchy;
        let mut mst = Mst::new(hier, 256);
        let mut rng = StdRng::seed_from_u64(2);
        let items: Vec<u32> = (0..30_000)
            .map(|_| {
                if rng.gen::<f64>() < 0.4 {
                    addr(181, rng.gen(), rng.gen(), rng.gen())
                } else {
                    addr(rng.gen_range(1..100), rng.gen(), rng.gen(), rng.gen())
                }
            })
            .collect();
        for &it in &items {
            mst.update(it);
        }
        let theta = 0.2;
        let approx = mst.output(theta);
        let exact = exact_hhh(&hier, &items, theta * items.len() as f64);
        for p in &exact {
            assert!(approx.contains(p), "missing exact HHH {p}");
        }
        assert!(approx.contains(&Prefix1D::new(addr(181, 0, 0, 0), 8)));
    }

    #[test]
    fn reset_starts_a_fresh_interval() {
        let mut mst = Mst::new(SrcHierarchy, 32);
        for _ in 0..100 {
            mst.update(addr(1, 2, 3, 4));
        }
        assert!(mst.estimate(&Prefix1D::new(addr(1, 2, 3, 4), 32)) >= 100.0);
        mst.reset();
        assert_eq!(mst.processed(), 0);
        assert_eq!(mst.estimate(&Prefix1D::new(addr(1, 2, 3, 4), 32)), 0.0);
    }

    #[test]
    fn update_touches_every_pattern_2d() {
        let hier = SrcDstHierarchy;
        let mut mst = Mst::new(hier, 16);
        mst.update((addr(1, 2, 3, 4), addr(5, 6, 7, 8)));
        assert_eq!(mst.tracked_prefixes().len(), 25);
        assert_eq!(mst.counters(), 25 * 16);
    }

    #[test]
    fn with_epsilon_sizes_instances() {
        let mst = Mst::new(SrcHierarchy, 10);
        assert_eq!(mst.counters(), 50);
        let mst = Mst::with_epsilon(SrcHierarchy, 0.01);
        assert_eq!(mst.counters(), 500);
    }
}
