//! Validated configuration / builder for the Memento algorithms.

use crate::error::ConfigError;

/// Configuration for a [`Memento`](crate::Memento) (or
/// [`Wcss`](crate::Wcss) / [`HMemento`](crate::HMemento)) instance.
///
/// Two equivalent ways to size the summary are supported, mirroring the
/// paper: an explicit number of counters (as in the evaluation, e.g.
/// 64/512/4096), or an algorithm error `ε_a` from which `k = ⌈4/ε_a⌉`
/// counters are allocated (as in Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct MementoConfig {
    /// Sliding-window size `W` in packets.
    pub window: usize,
    /// Number of Space-Saving counters.
    pub counters: usize,
    /// Full-update probability `τ`.
    pub tau: f64,
    /// RNG seed (derived sub-seeds are used internally).
    pub seed: u64,
}

impl MementoConfig {
    /// Starts building a configuration for a window of `window` packets.
    pub fn builder(window: usize) -> MementoConfigBuilder {
        MementoConfigBuilder {
            window,
            counters: None,
            epsilon: None,
            tau: 1.0,
            seed: 0xC0FF_EE00,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == 0 {
            return Err(ConfigError::InvalidWindow("window must be positive".into()));
        }
        if self.counters == 0 {
            return Err(ConfigError::InvalidCounters(
                "at least one counter is required".into(),
            ));
        }
        if !(self.tau > 0.0 && self.tau <= 1.0) {
            return Err(ConfigError::InvalidTau(self.tau));
        }
        Ok(())
    }

    /// The block size `W / k` (at least 1).
    pub fn block_size(&self) -> usize {
        (self.window / self.counters).max(1)
    }
}

/// Builder for [`MementoConfig`].
#[derive(Debug, Clone)]
pub struct MementoConfigBuilder {
    window: usize,
    counters: Option<usize>,
    epsilon: Option<f64>,
    tau: f64,
    seed: u64,
}

impl MementoConfigBuilder {
    /// Sets an explicit number of counters.
    pub fn counters(mut self, counters: usize) -> Self {
        self.counters = Some(counters);
        self
    }

    /// Sizes the summary from an algorithm error `ε_a` (`k = ⌈4/ε_a⌉`).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = Some(epsilon);
        self
    }

    /// Sets the Full-update probability `τ` (default 1, i.e. WCSS).
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = tau;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates and builds the configuration.
    pub fn build(self) -> Result<MementoConfig, ConfigError> {
        let counters = match (self.counters, self.epsilon) {
            (Some(c), _) => c,
            (None, Some(eps)) => {
                if !(eps > 0.0 && eps < 1.0) {
                    return Err(ConfigError::InvalidEpsilon(eps));
                }
                (4.0 / eps).ceil() as usize
            }
            (None, None) => {
                return Err(ConfigError::InvalidCounters(
                    "either counters or epsilon must be provided".into(),
                ))
            }
        };
        let config = MementoConfig {
            window: self.window,
            counters,
            tau: self.tau,
            seed: self.seed,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_sizes_counters_as_4_over_eps() {
        let c = MementoConfig::builder(1_000_000)
            .epsilon(0.001)
            .build()
            .unwrap();
        assert_eq!(c.counters, 4000);
        assert_eq!(c.block_size(), 250);
    }

    #[test]
    fn explicit_counters_take_precedence() {
        let c = MementoConfig::builder(1000)
            .counters(64)
            .epsilon(0.5)
            .tau(0.25)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(c.counters, 64);
        assert_eq!(c.tau, 0.25);
        assert_eq!(c.seed, 7);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(matches!(
            MementoConfig::builder(0).counters(8).build(),
            Err(ConfigError::InvalidWindow(_))
        ));
        assert!(matches!(
            MementoConfig::builder(100).counters(0).build(),
            Err(ConfigError::InvalidCounters(_))
        ));
        assert!(matches!(
            MementoConfig::builder(100).counters(8).tau(0.0).build(),
            Err(ConfigError::InvalidTau(_))
        ));
        assert!(matches!(
            MementoConfig::builder(100).counters(8).tau(1.5).build(),
            Err(ConfigError::InvalidTau(_))
        ));
        assert!(matches!(
            MementoConfig::builder(100).epsilon(0.0).build(),
            Err(ConfigError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            MementoConfig::builder(100).build(),
            Err(ConfigError::InvalidCounters(_))
        ));
    }

    #[test]
    fn block_size_is_at_least_one() {
        let c = MementoConfig::builder(10).counters(100).build().unwrap();
        assert_eq!(c.block_size(), 1);
    }
}
