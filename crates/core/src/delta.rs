//! Incremental snapshot publication (PR 8): the delta types behind
//! [`WindowQuery::freeze_delta`].
//!
//! PR 7's query plane froze every shard's *entire* summary each epoch —
//! O(k) per shard per publication, however little changed. This module
//! makes snapshot maintenance proportional to the **update delta**
//! instead:
//!
//! * [`WindowPatch`] — what one shard reports per epoch: the tracked flows
//!   whose estimate (or tie-breaking rank) changed since the previous
//!   freeze, the flows that stopped being tracked, and the scalar state
//!   (untracked estimate, stream position, error bound). A patch can also
//!   demand a full `rebuild` when slot identity was invalidated wholesale
//!   (frame flush, table resize, first freeze).
//! * [`DeltaWindow`] — a publishable per-shard view: an [`Arc`]-shared
//!   `key → (estimate, rank)` table plus the frozen scalars, answering
//!   [`WindowQuery`] bit-for-bit like the [`FrozenWindow`](crate::FrozenWindow)
//!   it replaces. `clone` is one `Arc` bump; [`DeltaWindow::apply`] patches
//!   the table in place when this view is the only owner and falls back to
//!   a copy-on-write clone when a published snapshot still shares it.
//! * [`DeltaAssembler`] — what makes the in-place fast path the common
//!   case: a small rotation of views (one more than the query plane's
//!   double buffer retains) plus a backlog of the patches each view has
//!   not yet seen. Each publication steps the rotation onto the view the
//!   double buffer released two epochs ago — uniquely owned again, so the
//!   backlog replays as plain in-place hash-table writes — and returns an
//!   O(1) clone for the snapshot. Publication therefore costs
//!   O(dirty · rotation), never O(k).
//!
//! **Why ranks?** Live `heavy_hitters` implementations stable-sort their
//! internal traversal order by descending estimate, so ties resolve by
//! traversal position. A delta consumer never sees the full traversal —
//! only changed entries — so each entry carries its traversal position as
//! an explicit `rank`; sorting by `(estimate desc, rank asc)` then
//! reproduces the live stable order exactly, which is what keeps
//! delta-published snapshots bit-for-bit identical to full freezes.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use memento_sketches::fasthash::FastBuildHasher;

use crate::query::WindowQuery;

/// How many views a [`DeltaAssembler`] rotates through: one more than the
/// two epochs the query plane's double buffer can retain, so the view a
/// publication mutates has (absent slow readers) already been released.
const ROTATION: usize = 3;

/// The changes one shard's estimator accumulated between two
/// [`freeze_delta`](crate::WindowQuery::freeze_delta) calls.
///
/// `updated` and `removed` are disjoint: a key re-inserted after a removal
/// appears only in `updated`. When `rebuild` is set, `updated` holds the
/// *complete* tracked set (ranks included) and `removed` is empty — the
/// consumer replaces its state instead of patching it.
#[derive(Debug, Clone)]
pub struct WindowPatch<K> {
    /// Replace, don't patch: slot identity was invalidated wholesale since
    /// the last freeze (first freeze, frame flush, table resize).
    pub rebuild: bool,
    /// Tracked flows whose `(estimate, rank)` changed — or, under
    /// `rebuild`, every tracked flow. `rank` is the flow's position in the
    /// live instance's canonical enumeration (see the module docs).
    pub updated: Vec<(K, f64, u64)>,
    /// Flows tracked at the previous freeze but not anymore.
    pub removed: Vec<K>,
    /// Estimate reported for flows outside the tracked set, captured at
    /// freeze time.
    pub untracked: f64,
    /// Stream position at freeze time.
    pub processed: u64,
    /// Error bound of the frozen configuration.
    pub error_bound: f64,
}

impl<K> WindowPatch<K> {
    /// A full-rebuild patch from a complete `heavy_hitters(0.0)`
    /// enumeration (already in canonical descending order, so the
    /// enumeration index is a faithful rank).
    pub fn rebuild(
        entries: Vec<(K, f64)>,
        untracked: f64,
        processed: u64,
        error_bound: f64,
    ) -> Self {
        WindowPatch {
            rebuild: true,
            updated: entries
                .into_iter()
                .enumerate()
                .map(|(i, (k, est))| (k, est, i as u64))
                .collect(),
            removed: Vec::new(),
            untracked,
            processed,
            error_bound,
        }
    }

    /// Number of entry changes the patch carries (the "dirty" count a
    /// publication pays for).
    pub fn changes(&self) -> usize {
        self.updated.len() + self.removed.len()
    }
}

/// The entry table behind a [`DeltaWindow`]: keyed by the fast
/// multiply–rotate hash the rest of the workspace uses (SipHash would
/// dominate patch replay).
type EntryMap<K> = HashMap<K, (f64, u64), FastBuildHasher>;

/// A publishable view of one shard: `key → (estimate, rank)` plus the
/// frozen scalars, kept up to date by [`Self::apply`]-ing each epoch's
/// [`WindowPatch`].
///
/// * `clone` is O(1) (one `Arc` bump plus scalar copies), which is what
///   lets every publication stamp a fresh merged snapshot without copying
///   per-entry state;
/// * [`Self::apply`] mutates the table **in place** when this view is the
///   table's only owner (the steady state under a [`DeltaAssembler`]) and
///   degrades to a copy-on-write clone — never wrong, just slower — when a
///   published snapshot still shares it;
/// * answers [`WindowQuery`] bit-for-bit like the
///   [`FrozenWindow`](crate::FrozenWindow) a full freeze would have built
///   (see the module docs for the rank argument);
/// * the descending entry order behind [`heavy_hitters`](WindowQuery::heavy_hitters)
///   is computed lazily on first query and shared by every clone taken
///   before the next `apply` — an untouched shard re-sorts nothing.
#[derive(Debug, Clone)]
pub struct DeltaWindow<K> {
    name: &'static str,
    entries: Arc<EntryMap<K>>,
    untracked: f64,
    processed: u64,
    error_bound: f64,
    /// Lazily-built canonical order: `(estimate desc, rank asc)`. Replaced
    /// (not cleared) on `apply` so published clones keep their own cache.
    sorted: Arc<OnceLock<Vec<(K, f64)>>>,
}

impl<K: Eq + Hash + Clone> DeltaWindow<K> {
    /// An empty window: what a reader sees before anything was published.
    pub fn empty(name: &'static str) -> Self {
        DeltaWindow {
            name,
            entries: Arc::new(EntryMap::default()),
            untracked: 0.0,
            processed: 0,
            error_bound: 0.0,
            sorted: Arc::new(OnceLock::new()),
        }
    }

    /// Applies one epoch's patch. In-place hash-table writes — O(changes) —
    /// when this view solely owns its table; a shared table (a published
    /// clone still alive) is copied first, O(tracked), which the
    /// [`DeltaAssembler`] rotation makes the rare case.
    pub fn apply(&mut self, patch: &WindowPatch<K>) {
        let entries = Arc::make_mut(&mut self.entries);
        if patch.rebuild {
            entries.clear();
        }
        for (key, estimate, rank) in &patch.updated {
            entries.insert(key.clone(), (*estimate, *rank));
        }
        for key in &patch.removed {
            entries.remove(key);
        }
        self.untracked = patch.untracked;
        self.processed = patch.processed;
        self.error_bound = patch.error_bound;
        self.sorted = Arc::new(OnceLock::new());
    }

    /// Number of tracked flows.
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }

    /// The canonical descending enumeration, built on first use.
    fn sorted_entries(&self) -> &[(K, f64)] {
        self.sorted.get_or_init(|| {
            let mut all: Vec<(&K, f64, u64)> = self
                .entries
                .iter()
                .map(|(k, &(est, rank))| (k, est, rank))
                .collect();
            all.sort_by(|a, b| {
                b.1.partial_cmp(&a.1)
                    .expect("estimates are never NaN")
                    .then(a.2.cmp(&b.2))
            });
            all.into_iter()
                .map(|(k, est, _)| (k.clone(), est))
                .collect()
        })
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for DeltaWindow<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, key: &K) -> f64 {
        self.entries
            .get(key)
            .map(|&(est, _)| est)
            .unwrap_or(self.untracked)
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.sorted_entries()
            .iter()
            .filter(|(_, est)| *est >= threshold)
            .cloned()
            .collect()
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn error_bound(&self) -> f64 {
        self.error_bound
    }

    fn untracked_estimate(&self) -> f64 {
        self.untracked
    }
}

/// Folds one shard's stream of [`WindowPatch`]es into publishable
/// [`DeltaWindow`] clones, keeping the per-publication cost at
/// O(dirty · `ROTATION`) hash-table writes.
///
/// The naive single-view design — apply the patch, clone, publish — makes
/// every `apply` hit the copy-on-write slow path: the clone published last
/// epoch still shares the table, so `Arc::make_mut` must copy all O(k)
/// entries. The assembler instead rotates through `ROTATION` views. The
/// view a publication lands on was published `ROTATION` epochs ago; the
/// query plane's double buffer holds only the last two snapshots, so that
/// clone has (slow readers aside) been dropped and the view owns its table
/// again: replaying the few patches it missed — kept in a bounded backlog —
/// is plain in-place writes. A reader that *does* still hold the old
/// snapshot costs one table copy, never correctness.
#[derive(Debug, Clone)]
pub struct DeltaAssembler<K> {
    views: Vec<DeltaWindow<K>>,
    /// `applied[i]`: sequence number of the last patch `views[i]` has seen.
    applied: Vec<u64>,
    /// The last `ROTATION` patches, tagged with their sequence number —
    /// exactly what the stalest view in the rotation is missing.
    backlog: VecDeque<(u64, WindowPatch<K>)>,
    seq: u64,
}

impl<K: Eq + Hash + Clone> DeltaAssembler<K> {
    /// An assembler whose views all start empty.
    pub fn new(name: &'static str) -> Self {
        DeltaAssembler {
            views: (0..ROTATION).map(|_| DeltaWindow::empty(name)).collect(),
            applied: vec![0; ROTATION],
            backlog: VecDeque::with_capacity(ROTATION),
            seq: 0,
        }
    }

    /// Folds `patch` in and returns the up-to-date view for publication
    /// (an O(1) clone retaining the snapshot's immutability: the assembler
    /// will not touch this view again for `ROTATION` publications).
    pub fn publish(&mut self, patch: WindowPatch<K>) -> DeltaWindow<K> {
        self.seq += 1;
        self.backlog.push_back((self.seq, patch));
        if self.backlog.len() > ROTATION {
            self.backlog.pop_front();
        }
        let idx = (self.seq as usize) % ROTATION;
        let applied = std::mem::replace(&mut self.applied[idx], self.seq);
        let view = &mut self.views[idx];
        for (seq, patch) in &self.backlog {
            if *seq > applied {
                view.apply(patch);
            }
        }
        view.clone()
    }

    /// The most recently published view, if any patch was folded yet.
    pub fn latest(&self) -> Option<&DeltaWindow<K>> {
        if self.seq == 0 {
            return None;
        }
        Some(&self.views[(self.seq as usize) % ROTATION])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_window_applies_patches_and_answers_queries() {
        let mut w: DeltaWindow<u64> = DeltaWindow::empty("test");
        assert_eq!(w.processed(), 0);
        assert_eq!(w.estimate(&1), 0.0);
        w.apply(&WindowPatch::rebuild(
            vec![(1, 10.0), (2, 5.0), (3, 5.0)],
            1.5,
            100,
            4.0,
        ));
        assert_eq!(w.estimate(&1), 10.0);
        assert_eq!(w.estimate(&99), 1.5, "untracked estimate");
        assert_eq!(w.heavy_hitters(5.0), vec![(1, 10.0), (2, 5.0), (3, 5.0)]);
        assert_eq!(w.heavy_hitters(6.0), vec![(1, 10.0)]);
        // Patch: 3 overtakes on estimate; 2 leaves the tracked set.
        w.apply(&WindowPatch {
            rebuild: false,
            updated: vec![(3, 12.0, 2)],
            removed: vec![2],
            untracked: 2.0,
            processed: 150,
            error_bound: 4.0,
        });
        assert_eq!(w.heavy_hitters(0.0), vec![(3, 12.0), (1, 10.0)]);
        assert_eq!(w.estimate(&2), 2.0, "removed key falls to untracked");
        assert_eq!(w.processed(), 150);
        assert_eq!(w.tracked(), 2);
    }

    #[test]
    fn delta_window_rank_breaks_estimate_ties_like_a_stable_sort() {
        let mut w: DeltaWindow<u64> = DeltaWindow::empty("test");
        // Ranks deliberately delivered out of order: the sort must order
        // equal estimates by ascending rank, not arrival order.
        w.apply(&WindowPatch {
            rebuild: false,
            updated: vec![(30, 7.0, 30), (10, 7.0, 10), (20, 7.0, 20)],
            removed: vec![],
            untracked: 0.0,
            processed: 3,
            error_bound: 0.0,
        });
        assert_eq!(w.heavy_hitters(0.0), vec![(10, 7.0), (20, 7.0), (30, 7.0)]);
    }

    #[test]
    fn delta_window_clone_is_independent_after_apply() {
        let mut w: DeltaWindow<u64> = DeltaWindow::empty("test");
        w.apply(&WindowPatch::rebuild(vec![(1, 3.0)], 0.0, 10, 0.0));
        let published = w.clone();
        let _ = published.heavy_hitters(0.0); // warm the shared sort cache
        w.apply(&WindowPatch {
            rebuild: false,
            updated: vec![(2, 9.0, 1)],
            removed: vec![],
            untracked: 0.0,
            processed: 20,
            error_bound: 0.0,
        });
        assert_eq!(published.heavy_hitters(0.0), vec![(1, 3.0)]);
        assert_eq!(w.heavy_hitters(0.0), vec![(2, 9.0), (1, 3.0)]);
        assert_eq!(published.processed(), 10);
        assert_eq!(w.processed(), 20);
    }

    /// One reference view applying every patch sequentially; an assembler
    /// rotating through its views. Every published clone must match the
    /// reference exactly — including across a mid-sequence rebuild and with
    /// published clones (the double buffer's retention) still alive.
    #[test]
    fn assembler_rotation_matches_sequential_application() {
        let mut reference: DeltaWindow<u64> = DeltaWindow::empty("test");
        let mut assembler: DeltaAssembler<u64> = DeltaAssembler::new("test");
        assert!(assembler.latest().is_none());
        let mut retained: VecDeque<DeltaWindow<u64>> = VecDeque::new();
        for step in 0..20u64 {
            let patch = if step == 9 {
                // Mid-sequence rebuild: every view must converge on the
                // replacement state even if it never saw patches 0..9.
                WindowPatch::rebuild(vec![(100, 50.0), (101, 25.0)], 0.5, 900, 1.0)
            } else {
                WindowPatch {
                    rebuild: false,
                    updated: vec![(step % 5, step as f64 + 1.0, step % 5)],
                    removed: if step % 4 == 3 {
                        vec![(step + 1) % 5]
                    } else {
                        vec![]
                    },
                    untracked: 0.1 * step as f64,
                    processed: 100 * (step + 1),
                    error_bound: 2.0,
                }
            };
            reference.apply(&patch);
            let published = assembler.publish(patch);
            // Model the query plane's double buffer: the last two published
            // clones stay alive, pinning their tables.
            retained.push_back(published.clone());
            if retained.len() > 2 {
                retained.pop_front();
            }
            assert_eq!(
                published.heavy_hitters(0.0),
                reference.heavy_hitters(0.0),
                "step {step}"
            );
            assert_eq!(published.processed(), reference.processed());
            assert_eq!(
                published.untracked_estimate(),
                reference.untracked_estimate()
            );
            assert_eq!(published.tracked(), reference.tracked());
            assert_eq!(
                assembler.latest().expect("published").processed(),
                reference.processed()
            );
        }
    }
}
