//! # memento-core
//!
//! The Memento family of sliding-window heavy-hitter algorithms from
//! ["Memento: Making Sliding Windows Efficient for Heavy Hitters"][paper]
//! (Ben Basat, Einziger, Keslassy, Orda, Vargaftik, Waisbard — CoNEXT 2018).
//!
//! * [`Memento`] — single-device sliding-window **heavy hitters**
//!   (Algorithm 1): a WCSS-style window summary where only a τ-fraction of
//!   packets pay for the expensive *Full update*; all others perform the
//!   constant-time *Window update* that just slides the window.
//! * [`Wcss`] — the underlying window algorithm (WCSS, Infocom 2016),
//!   obtained as Memento with τ = 1. Used as the accuracy/speed reference
//!   point throughout the paper's evaluation.
//! * [`HMemento`] — single-device sliding-window **hierarchical heavy
//!   hitters** (Algorithm 2): one Memento instance over sampled prefixes,
//!   constant time per packet for any hierarchy size.
//! * [`analysis`] — the paper's accuracy analysis turned into code: minimum
//!   sampling probabilities (Theorems 5.2/5.3), the network-wide error bound
//!   (Theorem 5.5) and the optimal batch size computation of §5.2.
//!
//! The network-wide variants (D-Memento / D-H-Memento) live in the
//! `memento-netwide` crate; baselines (MST, RHHH, …) in `memento-baselines`.
//!
//! ## Quick example
//!
//! ```
//! use memento_core::Memento;
//!
//! // Window of 10_000 packets, 256 counters, Full update probability 1/16.
//! let mut memento = Memento::new(256, 10_000, 1.0 / 16.0, 42);
//! for i in 0..50_000u64 {
//!     // Flow 7 sends ~20% of the traffic.
//!     let flow = if i % 5 == 0 { 7 } else { i % 1000 };
//!     memento.update(flow);
//! }
//! let estimate = memento.estimate(&7);
//! assert!(estimate > 1_000.0 && estimate < 4_000.0);
//! ```
//!
//! [paper]: https://arxiv.org/abs/1810.02899

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod config;
pub mod delta;
pub mod error;
pub mod h_memento;
pub mod memento;
pub mod query;
pub mod time;
pub mod traits;
pub mod wcss;

pub use config::MementoConfig;
pub use delta::{DeltaAssembler, DeltaWindow, WindowPatch};
pub use error::ConfigError;
pub use h_memento::HMemento;
pub use memento::Memento;
pub use query::{FrozenHhh, FrozenWindow, HhhQuery, WindowQuery};
pub use time::{GrainClock, GrainMap, TimedHhh, TimedWindow};
pub use traits::{HhhAlgorithm, SlidingWindowEstimator};
pub use wcss::Wcss;
