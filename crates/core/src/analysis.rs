//! The paper's analysis, as executable code.
//!
//! * Theorems 5.2 / 5.3 — the minimum sampling probability τ that preserves
//!   the `(ε, δ)` window-frequency-estimation guarantee for Memento and the
//!   approximate-HHH guarantee for H-Memento
//!   ([`min_tau_hh`], [`min_tau_hhh`]).
//! * Theorem 5.4 / 5.5 — the network-wide error bound of the Batch and
//!   Sample communication methods under a per-packet bandwidth budget, and
//!   the optimal batch size that minimizes it ([`NetworkBudget`]). This is
//!   what Figure 4 plots and what the worked example of §5.2 computes
//!   (b* = 44 for B = 1 byte/packet, W = 10⁶, H = 5, m = 10, TCP transport).
//!
//! The standard-normal quantile `Z` is computed with Acklam's rational
//! approximation (relative error below 1.15·10⁻⁹), so no external statistics
//! crate is required.

/// Inverse CDF (quantile function) of the standard normal distribution,
/// using Peter Acklam's rational approximation.
///
/// # Panics
/// Panics if `p` is not strictly between 0 and 1.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0,1), got {p}");

    // Coefficients of the rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    const P_HIGH: f64 = 1.0 - P_LOW;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// `Z_α`: the z-value such that `Φ(z) = confidence` (alias of
/// [`inverse_normal_cdf`], named as in the paper's Table 1).
pub fn z_value(confidence: f64) -> f64 {
    inverse_normal_cdf(confidence)
}

/// Theorem 5.2: the minimum Full-update probability τ for which Memento
/// solves `(ε_a + ε_s, δ)`-windowed frequency estimation:
/// `τ ≥ Z_{1−δ/4} · W⁻¹ · ε_s⁻²` (capped at 1).
pub fn min_tau_hh(window: usize, epsilon_s: f64, delta: f64) -> f64 {
    assert!(window > 0, "window must be positive");
    assert!(
        epsilon_s > 0.0 && epsilon_s < 1.0,
        "epsilon_s must be in (0,1)"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let z = z_value(1.0 - delta / 4.0);
    (z / (window as f64 * epsilon_s * epsilon_s)).min(1.0)
}

/// Theorem 5.3: the minimum overall sampling probability τ for which
/// H-Memento solves `(δ, ε, θ)`-approximate windowed HHH:
/// `τ ≥ Z_{1−δ/2} · H · W⁻¹ · ε_s⁻²` (capped at 1).
pub fn min_tau_hhh(window: usize, epsilon_s: f64, delta: f64, h: usize) -> f64 {
    assert!(window > 0, "window must be positive");
    assert!(h > 0, "hierarchy size must be positive");
    assert!(
        epsilon_s > 0.0 && epsilon_s < 1.0,
        "epsilon_s must be in (0,1)"
    );
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let z = z_value(1.0 - delta / 2.0);
    (z * h as f64 / (window as f64 * epsilon_s * epsilon_s)).min(1.0)
}

/// Parameters of the network-wide accuracy model of §5.2 (Theorem 5.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkBudget {
    /// Minimal header size `O` of the transport used for reports, in bytes
    /// (the paper uses 64 for TCP).
    pub header_overhead: f64,
    /// Bytes `E` needed to report one sampled packet (4 for a source IP,
    /// 8 for a source/destination pair).
    pub sample_bytes: f64,
    /// Number of measurement points `m`.
    pub points: usize,
    /// Hierarchy size `H` (1 for plain heavy hitters / D-Memento).
    pub hierarchy: usize,
    /// Window size `W` in packets.
    pub window: usize,
    /// Confidence parameter `δ_s`.
    pub delta: f64,
    /// Per-packet bandwidth budget `B` in bytes.
    pub budget: f64,
}

impl NetworkBudget {
    /// The worked example of §5.2: TCP transport, ten measurement points,
    /// source-IP hierarchy, δ = 0.01 %, W = 10⁶, B = 1 byte/packet.
    pub fn paper_example() -> Self {
        NetworkBudget {
            header_overhead: 64.0,
            sample_bytes: 4.0,
            points: 10,
            hierarchy: 5,
            window: 1_000_000,
            delta: 0.0001,
            budget: 1.0,
        }
    }

    fn validate(&self) {
        assert!(self.header_overhead >= 0.0, "header overhead must be >= 0");
        assert!(self.sample_bytes > 0.0, "sample bytes must be positive");
        assert!(self.points > 0, "at least one measurement point");
        assert!(self.hierarchy > 0, "hierarchy size must be positive");
        assert!(self.window > 0, "window must be positive");
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0,1)"
        );
        assert!(self.budget > 0.0, "budget must be positive");
    }

    /// The sampling probability that exactly exhausts the bandwidth budget
    /// for batch size `b`: `τ = B·b / (O + E·b)`, capped at 1.
    pub fn tau_for_batch(&self, batch: usize) -> f64 {
        self.validate();
        assert!(batch > 0, "batch size must be positive");
        let b = batch as f64;
        (self.budget * b / (self.header_overhead + self.sample_bytes * b)).min(1.0)
    }

    /// The two error components of Theorem 5.5 for batch size `b`:
    /// `(delay error, sampling error)`, both in packets.
    ///
    /// * delay error = `m · b · τ⁻¹ = m (O + E·b) / B` (Theorem 5.4);
    /// * sampling error = `W·ε_s = √(H · W · Z_{1−δ/2} · τ⁻¹)`.
    pub fn error_components(&self, batch: usize) -> (f64, f64) {
        let tau = self.tau_for_batch(batch);
        let delay = self.points as f64 * batch as f64 / tau;
        let z = z_value(1.0 - self.delta / 2.0);
        let sampling = (self.hierarchy as f64 * self.window as f64 * z / tau).sqrt();
        (delay, sampling)
    }

    /// Total error bound `E_b` (Theorem 5.5) for batch size `b`, in packets.
    pub fn error_bound(&self, batch: usize) -> f64 {
        let (delay, sampling) = self.error_components(batch);
        delay + sampling
    }

    /// The error bound of the Sample method (batch size 1).
    pub fn sample_error_bound(&self) -> f64 {
        self.error_bound(1)
    }

    /// Finds the batch size minimizing [`Self::error_bound`] by scanning
    /// `1..=max_batch` (the bound is unimodal in `b`, a scan keeps the code
    /// obvious and is instantaneous at these sizes).
    pub fn optimal_batch(&self, max_batch: usize) -> (usize, f64) {
        assert!(max_batch > 0, "max batch must be positive");
        let mut best = (1usize, self.error_bound(1));
        for b in 2..=max_batch {
            let e = self.error_bound(b);
            if e < best.1 {
                best = (b, e);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_normal_cdf_matches_known_quantiles() {
        let cases = [
            (0.5, 0.0),
            (0.975, 1.959964),
            (0.95, 1.644854),
            (0.99, 2.326348),
            (0.999, 3.090232),
            (0.025, -1.959964),
            (0.0001, -3.719016),
        ];
        for (p, expected) in cases {
            let z = inverse_normal_cdf(p);
            assert!(
                (z - expected).abs() < 1e-4,
                "Z({p}) = {z}, expected {expected}"
            );
        }
    }

    #[test]
    fn z_is_below_4_for_delta_above_1e6th() {
        // The paper notes Z_{1-δ/4} < 4 for any δ > 10⁻⁶.
        let z = z_value(1.0 - 1e-6 / 4.0);
        assert!(z < 5.1, "z = {z}");
        let z = z_value(1.0 - 1e-4);
        assert!(z < 4.0, "z = {z}");
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1)")]
    fn inverse_normal_cdf_rejects_bounds() {
        let _ = inverse_normal_cdf(1.0);
    }

    #[test]
    fn min_tau_decreases_with_window_and_epsilon() {
        let t1 = min_tau_hh(1_000_000, 0.01, 0.01);
        let t2 = min_tau_hh(10_000_000, 0.01, 0.01);
        let t3 = min_tau_hh(1_000_000, 0.02, 0.01);
        assert!(t2 < t1, "larger windows allow more aggressive sampling");
        assert!(t3 < t1, "larger eps allows more aggressive sampling");
        assert!(t1 > 0.0 && t1 <= 1.0);
    }

    #[test]
    fn min_tau_hhh_scales_linearly_with_h() {
        let t1 = min_tau_hhh(1_000_000, 0.01, 0.01, 5);
        let t25 = min_tau_hhh(1_000_000, 0.01, 0.01, 25);
        assert!((t25 / t1 - 5.0).abs() < 1e-9);
    }

    #[test]
    fn min_tau_is_capped_at_one() {
        assert_eq!(min_tau_hh(10, 0.001, 0.001), 1.0);
        assert_eq!(min_tau_hhh(10, 0.001, 0.001, 25), 1.0);
    }

    #[test]
    fn paper_worked_example_batch_44_error_13k() {
        // §5.2: O=64, m=10, E=4, H=5, δ=0.01%, W=10⁶, B=1 byte/packet
        // -> optimal batch ≈ 44, error ≈ 13K packets (1.3%).
        let budget = NetworkBudget::paper_example();
        let (b, err) = budget.optimal_batch(1000);
        assert!((38..=50).contains(&b), "optimal batch {b} not near 44");
        assert!(
            (11_000.0..=15_000.0).contains(&err),
            "error bound {err} not near 13K"
        );
    }

    #[test]
    fn paper_worked_example_budget_5_bytes() {
        // Increasing the budget to B = 5 bytes/packet: b* ≈ 68, error ≈ 5.3K.
        let mut budget = NetworkBudget::paper_example();
        budget.budget = 5.0;
        let (b, err) = budget.optimal_batch(1000);
        assert!((58..=80).contains(&b), "optimal batch {b} not near 68");
        assert!(
            (4_300.0..=6_300.0).contains(&err),
            "error bound {err} not near 5.3K"
        );
    }

    #[test]
    fn paper_worked_example_larger_window() {
        // W = 10⁷: the paper reports b* ≈ 109 and a relative error around
        // 0.15%; evaluating Theorem 5.5's formula exactly gives b* ≈ 71 and
        // ~0.34% (the paper's prose appears to round differently — see
        // EXPERIMENTS.md). The qualitative claims hold: a larger window
        // increases the optimal batch size in absolute-error terms only
        // moderately while the *relative* error drops well below the
        // W = 10⁶ value of 1.3%.
        let base = NetworkBudget::paper_example();
        let (b_small, err_small) = base.optimal_batch(2000);
        let mut budget = base;
        budget.window = 10_000_000;
        let (b, err) = budget.optimal_batch(2000);
        assert!(
            b >= b_small,
            "larger window must not shrink the batch: {b} < {b_small}"
        );
        let rel = err / budget.window as f64;
        let rel_small = err_small / base.window as f64;
        assert!(
            rel < rel_small,
            "relative error must drop: {rel} vs {rel_small}"
        );
        assert!(
            rel < 0.005,
            "relative error {rel} should be well below 0.5%"
        );
    }

    #[test]
    fn two_dimensional_hierarchy_increases_batch_and_error() {
        // §5.2: moving from H=5 to H=25 gives a slightly larger error and a
        // higher optimal batch size.
        let b1 = NetworkBudget::paper_example();
        let mut b2 = b1;
        b2.hierarchy = 25;
        let (opt1, err1) = b1.optimal_batch(2000);
        let (opt2, err2) = b2.optimal_batch(2000);
        assert!(opt2 > opt1);
        assert!(err2 > err1);
    }

    #[test]
    fn sample_method_has_smaller_delay_but_larger_total_error() {
        let budget = NetworkBudget::paper_example();
        let (delay_sample, sampling_sample) = budget.error_components(1);
        let (delay_batch, sampling_batch) = budget.error_components(100);
        assert!(
            delay_sample < delay_batch,
            "Sample has the smallest delay error"
        );
        assert!(
            sampling_sample > sampling_batch,
            "Sample conveys less information, so its sampling error is larger"
        );
        assert!(
            budget.sample_error_bound() > budget.error_bound(44),
            "the optimal batch beats Sample overall"
        );
    }

    #[test]
    fn tau_never_exceeds_one() {
        let mut budget = NetworkBudget::paper_example();
        budget.budget = 1e9;
        assert_eq!(budget.tau_for_batch(100), 1.0);
    }

    #[test]
    fn error_bound_is_unimodal_around_optimum() {
        let budget = NetworkBudget::paper_example();
        let (opt, _) = budget.optimal_batch(1000);
        assert!(budget.error_bound(opt) <= budget.error_bound(opt + 10));
        assert!(budget.error_bound(opt) <= budget.error_bound(opt.saturating_sub(10).max(1)));
    }
}
