//! The Memento sliding-window heavy-hitters algorithm (Algorithm 1 of the
//! paper).
//!
//! # How it works
//!
//! Memento maintains a window of the last `W` packets, conceptually divided
//! into `k` *blocks* (`k` = number of counters). It keeps:
//!
//! * `y` — a [Space Saving](memento_sketches::SpaceSaving) instance counting
//!   the current *frame* (a `W`-aligned segment of the stream), flushed at
//!   every frame boundary;
//! * `B` — a table mapping flows to the number of times they *overflowed*
//!   (crossed a multiple of the block size) inside the window;
//! * `b` — a [queue of per-block queues](memento_sketches::OverflowQueue)
//!   remembering *which* flows overflowed in each block still covered by the
//!   window, so that their `B` entries can be retired when the block slides
//!   out.
//!
//! Each packet triggers one of two operations:
//!
//! * **Window update** (every packet): advance the window position, rotate
//!   the block queues at block boundaries, flush `y` at frame boundaries and
//!   drain at most one expired overflow — all O(1).
//! * **Full update** (with probability τ): a Window update plus an insertion
//!   into `y` and, on overflow, into `b`/`B`.
//!
//! A query combines the overflow count (in block-size units) with the
//! in-frame remainder from `y`, adds two blocks of slack to keep the error
//! one-sided (as the paper does for comparability with MST), and scales by
//! τ⁻¹ to compensate for sampling.

use std::collections::HashSet;
use std::hash::Hash;

use memento_sketches::fasthash::{hash_one, FastBuildHasher, PREFETCH_LOOKAHEAD};
use memento_sketches::{CompactMap, OverflowQueue, Sampler, SpaceSaving, TableSampler};

use crate::config::MementoConfig;
use crate::delta::WindowPatch;

/// Branch-free exact-divisibility test by a fixed divisor
/// (Granlund–Montgomery, *Hacker's Delight* §10-17): for `d = odd · 2^k`,
/// `n % d == 0` iff `(n · odd⁻¹ mod 2⁶⁴) >>rot k ≤ ⌊(2⁶⁴−1)/d⌋`. One
/// multiply and a rotate per test, against the 20–40 cycle hardware
/// divide `is_multiple_of` costs for a runtime divisor — this sits on the
/// per-packet path twice (block boundaries, overflow thresholds).
#[derive(Debug, Clone, Copy)]
struct MultipleCheck {
    /// Multiplicative inverse of the divisor's odd part, mod 2⁶⁴.
    odd_inv: u64,
    /// The divisor's power-of-two part, as a rotate count.
    shift: u32,
    /// `⌊(2⁶⁴ − 1) / d⌋`: the number of multiples of `d` below 2⁶⁴.
    limit: u64,
}

impl MultipleCheck {
    /// Precomputes the test for divisor `d > 0`.
    fn new(d: u64) -> Self {
        assert!(d > 0, "divisor must be positive");
        let shift = d.trailing_zeros();
        let odd = d >> shift;
        // Newton–Raphson inverse mod 2⁶⁴: `x₀ = odd` is correct to 3 bits
        // (odd² ≡ 1 mod 8), each step doubles the valid bits — 5 steps
        // reach 96 ≥ 64.
        let mut odd_inv = odd;
        for _ in 0..5 {
            odd_inv = odd_inv.wrapping_mul(2u64.wrapping_sub(odd.wrapping_mul(odd_inv)));
        }
        MultipleCheck {
            odd_inv,
            shift,
            limit: u64::MAX / d,
        }
    }

    /// True iff `n` is a multiple of the divisor.
    #[inline(always)]
    fn divides(&self, n: u64) -> bool {
        n.wrapping_mul(self.odd_inv).rotate_right(self.shift) <= self.limit
    }
}

/// The Memento sliding-window heavy-hitters algorithm.
///
/// Generic over the flow key `K`; the paper uses 5-tuples or IP pairs, the
/// workspace mostly uses `u64` flow identifiers and prefix types.
#[derive(Debug, Clone)]
pub struct Memento<K: Eq + Hash + Clone> {
    /// Window size `W` in packets.
    window: usize,
    /// Number of Space-Saving counters (the paper's `k`).
    counters: usize,
    /// Block size `W / k` in *window positions* (at least 1): how often the
    /// per-block overflow queues rotate.
    block_size: usize,
    /// Overflow threshold in *sampled* (Full-update) units: the expected
    /// number of Full updates per block, `τ·W/k` (at least 1). The in-frame
    /// Space-Saving counter of a flow crossing a multiple of this value
    /// records an overflow. Keeping the threshold in sampled units keeps the
    /// block-quantization error at `O(W/k)` packets after the τ⁻¹ scaling,
    /// matching Theorem 5.2's `ε = ε_a + ε_s` (it does not degrade with τ).
    overflow_threshold: u64,
    /// Full-update probability τ.
    tau: f64,
    /// Expected rate of Full updates per packet (τ unless sampling happens
    /// upstream or at a different effective rate, as in H-Memento and the
    /// network-wide controllers).
    full_update_rate: f64,
    /// Scale applied to query results (`τ⁻¹` by default; H-Memento overrides
    /// it with `V = H/τ` because it manages sampling itself).
    scale: f64,
    /// In-frame approximate counts.
    y: SpaceSaving<K>,
    /// Per-block overflow queues.
    b: OverflowQueue<K>,
    /// Overflow counts per flow within the window (the paper's `B`): a
    /// flat fingerprint-probed table ([`CompactMap`]) — with the
    /// stream-summary index this is the other map on the per-packet path
    /// (queried on every estimate, inserted/retired around overflows).
    overflow_counts: CompactMap<K, u32>,
    /// Position inside the current frame (the paper's `M`).
    m: usize,
    /// `m % block_size`, maintained incrementally so the per-packet
    /// block-boundary test is a compare instead of a hardware divide
    /// (the bulk advances recompute it once per call).
    m_in_block: usize,
    /// Strength-reduced divisibility test for `overflow_threshold`,
    /// replacing the Full update's per-packet `%` with a multiply.
    overflow_check: MultipleCheck,
    /// τ-sampler (random-number table).
    sampler: TableSampler,
    /// Leftover geometric skip carried between [`Self::update_batch`] calls:
    /// number of packets that must still receive Window updates before the
    /// next Full update. `None` until the batch path first draws a skip.
    batch_skip: Option<u64>,
    /// Reused scratch for the batch pipeline: the in-batch indices of the
    /// τ-sampled keys, computed by the skip-drawing pass so the replay pass
    /// can prefetch ahead. Kept on the struct to amortize the allocation
    /// across batches; always logically empty between calls.
    batch_sampled: Vec<usize>,
    /// Total packets processed (full + window updates).
    processed: u64,
    /// Number of Full updates performed (for diagnostics/tests).
    full_updates: u64,
    /// `y.absent_query()` as of the previous [`Self::freeze_patch`] call.
    /// The estimate of an overflow flow *not* monitored in `y` embeds that
    /// absent answer (`y.query` falls back to it), so when it moves, those
    /// flows must be re-emitted even though none of their slots were
    /// touched — this field is how the patch builder notices.
    last_absent: u64,
}

impl<K: Eq + Hash + Clone> Memento<K> {
    /// Creates a Memento instance.
    ///
    /// * `counters` — number of Space-Saving counters (`k`);
    /// * `window` — window size `W` in packets;
    /// * `tau` — Full-update probability in `(0, 1]`;
    /// * `seed` — RNG seed for the sampling table.
    ///
    /// # Panics
    /// Panics on invalid parameters (zero counters/window, τ ∉ (0,1]).
    pub fn new(counters: usize, window: usize, tau: f64, seed: u64) -> Self {
        let config = MementoConfig {
            window,
            counters,
            tau,
            seed,
        };
        Self::from_config(&config)
    }

    /// Creates a Memento instance sized from an algorithm error `ε_a`
    /// (`k = ⌈4/ε_a⌉` counters), as in Algorithm 1.
    pub fn with_epsilon(epsilon: f64, window: usize, tau: f64, seed: u64) -> Self {
        let config = MementoConfig::builder(window)
            .epsilon(epsilon)
            .tau(tau)
            .seed(seed)
            .build()
            .expect("invalid Memento parameters");
        Self::from_config(&config)
    }

    /// Creates a Memento instance from a validated configuration.
    ///
    /// # Panics
    /// Panics when the configuration does not validate.
    pub fn from_config(config: &MementoConfig) -> Self {
        config.validate().expect("invalid Memento configuration");
        let block_size = config.block_size();
        let blocks = config.window.div_ceil(block_size);
        let overflow_threshold = Self::threshold_for(config.tau, config.window, config.counters);
        Memento {
            window: config.window,
            counters: config.counters,
            block_size,
            overflow_threshold,
            tau: config.tau,
            full_update_rate: config.tau,
            scale: 1.0 / config.tau,
            y: SpaceSaving::new(config.counters),
            b: OverflowQueue::new(blocks),
            overflow_counts: CompactMap::new(),
            m: 0,
            m_in_block: 0,
            overflow_check: MultipleCheck::new(overflow_threshold),
            sampler: TableSampler::with_seed(config.tau, config.seed),
            batch_skip: None,
            batch_sampled: Vec::new(),
            processed: 0,
            full_updates: 0,
            last_absent: 0,
        }
    }

    /// Overflow threshold (in sampled units) for a given effective
    /// Full-update rate: `max(1, round(rate·W/k))`.
    fn threshold_for(rate: f64, window: usize, counters: usize) -> u64 {
        ((rate * window as f64 / counters as f64).round() as u64).max(1)
    }

    /// Reconfigures the instance for *externally driven* sampling: callers
    /// (H-Memento, the network-wide controllers) invoke
    /// [`Self::full_update`] / [`Self::window_update`] directly, with Full
    /// updates arriving at `full_update_rate` per packet, and queries are
    /// multiplied by `scale` (e.g. `V = H/τ`).
    ///
    /// # Panics
    /// Panics if called after packets were processed, if the rate is not in
    /// `(0, 1]`, or if the scale is below 1.
    pub fn configure_external_sampling(&mut self, full_update_rate: f64, scale: f64) {
        assert_eq!(
            self.processed, 0,
            "external sampling must be configured before any update"
        );
        assert!(
            full_update_rate > 0.0 && full_update_rate <= 1.0,
            "full update rate must be in (0,1], got {full_update_rate}"
        );
        assert!(scale >= 1.0, "query scale must be at least 1, got {scale}");
        self.full_update_rate = full_update_rate;
        self.scale = scale;
        self.overflow_threshold = Self::threshold_for(full_update_rate, self.window, self.counters);
        self.overflow_check = MultipleCheck::new(self.overflow_threshold);
    }

    // ---- accessors ----------------------------------------------------------

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of Space-Saving counters.
    pub fn counters(&self) -> usize {
        self.counters
    }

    /// Block size `W / k` in window positions.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Overflow threshold in sampled units (`≈ τ·W/k`).
    pub fn overflow_threshold(&self) -> u64 {
        self.overflow_threshold
    }

    /// Effective Full-update rate per packet.
    pub fn full_update_rate(&self) -> f64 {
        self.full_update_rate
    }

    /// Full-update probability τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Current query scale (τ⁻¹ unless overridden).
    pub fn query_scale(&self) -> f64 {
        self.scale
    }

    /// Overrides the query scale. H-Memento drives its own prefix sampling
    /// and therefore sets the scale to `V = H/τ` while keeping the internal
    /// τ at 1.
    pub fn set_query_scale(&mut self, scale: f64) {
        assert!(scale >= 1.0, "query scale must be at least 1, got {scale}");
        self.scale = scale;
    }

    /// Total number of packets processed (Full + Window updates).
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of Full updates performed so far.
    pub fn full_updates(&self) -> u64 {
        self.full_updates
    }

    /// Number of flows currently holding an overflow entry.
    pub fn tracked_overflows(&self) -> usize {
        self.overflow_counts.len()
    }

    // ---- the three update operations ----------------------------------------

    /// The per-packet update: a Full update with probability τ, otherwise a
    /// Window update (Algorithm 1, `UPDATE`).
    #[inline]
    pub fn update(&mut self, key: K) {
        if self.sampler.sample() {
            self.full_update(key);
        } else {
            self.window_update();
        }
    }

    /// The lightweight *Window update* (Algorithm 1, `WINDOWUPDATE`):
    /// advances the window without recording the packet.
    #[inline]
    pub fn window_update(&mut self) {
        self.processed += 1;
        self.m += 1;
        self.m_in_block += 1;
        if self.m == self.window {
            self.m = 0;
        }
        if self.m == 0 {
            // New frame: the in-frame counts restart. A frame wrap is
            // always a block boundary (position 0), even when `W` is not
            // a multiple of the block size.
            self.m_in_block = 0;
            self.y.flush();
        } else if self.m_in_block == self.block_size {
            self.m_in_block = 0;
        }
        if self.m_in_block == 0 {
            // New block: the oldest block no longer overlaps the window.
            // Thanks to the per-packet draining below the dropped queue is
            // normally empty; retire any stragglers to keep B exact.
            let dropped = self.b.rotate();
            for key in dropped {
                self.retire_overflow(&key);
            }
        }
        // De-amortized retirement of expired overflows: at most one per packet.
        if let Some(old) = self.b.pop_oldest() {
            self.retire_overflow(&old);
        }
    }

    /// The expensive *Full update* (Algorithm 1, `FULLUPDATE`): a Window
    /// update plus the actual insertion of the packet into the summary.
    #[inline]
    pub fn full_update(&mut self, key: K) {
        self.full_update_hashed(key, None);
    }

    /// [`Self::full_update`] with an optionally precomputed
    /// [`memento_sketches::fasthash::hash_one`] value for `key`: the
    /// batched pipelines hash each key once when issuing its prefetch and
    /// pass the value here, so the summary's monitored-key probe (the
    /// common case) does not hash again.
    #[inline]
    fn full_update_hashed(&mut self, key: K, hash: Option<u64>) {
        self.window_update();
        self.full_updates += 1;
        let count = self.y.add_hashed(key.clone(), hash);
        if self.overflow_check.divides(count) {
            // The flow's sampled count crossed a block's worth of Full
            // updates: record an overflow.
            self.b.push_current(key.clone());
            *self.overflow_counts.get_or_insert_with(key, || 0) += 1;
        }
    }

    /// Processes a batch of packets with the τ-sampling hot path of §5:
    /// instead of flipping one coin per packet, it draws *geometric skip
    /// counts* (the number of packets until the next Full update) and
    /// advances the window over the skipped stretch in bulk. The sampled
    /// packets receive exactly the same Full update as [`Self::update`]
    /// would give them, at exactly rate τ (geometric skips are the inverse-
    /// CDF view of per-packet Bernoulli sampling), so estimates keep the
    /// guarantees of Theorem 5.2 — only the per-packet constant work drops.
    ///
    /// With τ = 1 every packet is a Full update and the batch degenerates to
    /// the per-packet loop (bit-for-bit identical behaviour, which the
    /// workspace's property tests assert for WCSS).
    ///
    /// A partially consumed skip is carried across calls, so splitting a
    /// stream into arbitrary batches does not bias the sampling rate.
    ///
    /// The batch is processed in two passes so the probe misses overlap:
    /// the first pass draws the geometric skips (in exactly the order and
    /// count the interleaved reference loop would — the draws depend only
    /// on the sampler state, never on the keys or the summary, so hoisting
    /// them preserves the RNG stream bit-for-bit) and records which batch
    /// indices receive Full updates; the second pass replays the window
    /// advances and Full updates in stream order while software-prefetching
    /// the in-frame summary's index lines for the sampled key a
    /// [`PREFETCH_LOOKAHEAD`] ahead (see [`memento_sketches::fasthash::prefetch`]).
    /// The seed's interleaved loop survives as
    /// `update_batch_reference` for the differential property tests.
    pub fn update_batch(&mut self, keys: &[K]) {
        if self.tau >= 1.0 {
            // Every packet is a Full update: pipeline directly over the
            // input. Each key is hashed once — when its prefetch is
            // issued, PREFETCH_LOOKAHEAD slots early — and the hash rides
            // the ring buffer to the key's own probe.
            let mut hashes = [0u64; PREFETCH_LOOKAHEAD];
            for (j, key) in keys.iter().take(PREFETCH_LOOKAHEAD).enumerate() {
                hashes[j] = hash_one(key);
            }
            for (i, key) in keys.iter().enumerate() {
                let slot = i % PREFETCH_LOOKAHEAD;
                let hash = hashes[slot];
                if let Some(ahead) = keys.get(i + PREFETCH_LOOKAHEAD) {
                    let h = hash_one(ahead);
                    self.y.prefetch_hashed(h);
                    hashes[slot] = h;
                }
                self.full_update_hashed(key.clone(), Some(hash));
            }
            return;
        }
        let mut sampled = std::mem::take(&mut self.batch_sampled);
        sampled.clear();
        let ln_keep = (1.0 - self.tau).ln();
        let mut skip = match self.batch_skip.take() {
            Some(s) => s,
            None => self.draw_skip(ln_keep),
        };
        let mut i = 0usize;
        while i < keys.len() {
            let remaining = (keys.len() - i) as u64;
            if skip >= remaining {
                // No Full update lands in the rest of this batch.
                skip -= remaining;
                break;
            }
            let idx = i + skip as usize;
            sampled.push(idx);
            i = idx + 1;
            skip = self.draw_skip(ln_keep);
        }
        self.batch_skip = Some(skip);
        let mut hashes = [0u64; PREFETCH_LOOKAHEAD];
        for (j, &idx) in sampled.iter().take(PREFETCH_LOOKAHEAD).enumerate() {
            hashes[j] = hash_one(&keys[idx]);
        }
        let mut pos = 0usize;
        for (s, &idx) in sampled.iter().enumerate() {
            let slot = s % PREFETCH_LOOKAHEAD;
            let hash = hashes[slot];
            if let Some(&ahead) = sampled.get(s + PREFETCH_LOOKAHEAD) {
                let h = hash_one(&keys[ahead]);
                self.y.prefetch_hashed(h);
                hashes[slot] = h;
            }
            self.advance_window(idx - pos);
            self.full_update_hashed(keys[idx].clone(), Some(hash));
            pos = idx + 1;
        }
        self.advance_window(keys.len() - pos);
        self.batch_sampled = sampled;
    }

    /// Bit-for-bit reference for [`Self::update_batch`]: the seed's
    /// interleaved draw-skip/advance/Full-update loop, without the
    /// two-pass prefetch pipeline. Kept for the differential property
    /// tests; not part of the supported API.
    #[doc(hidden)]
    pub fn update_batch_reference(&mut self, keys: &[K]) {
        if self.tau >= 1.0 {
            for key in keys {
                self.full_update(key.clone());
            }
            return;
        }
        let ln_keep = (1.0 - self.tau).ln();
        let mut skip = match self.batch_skip.take() {
            Some(s) => s,
            None => self.draw_skip(ln_keep),
        };
        let mut i = 0usize;
        while i < keys.len() {
            let remaining = (keys.len() - i) as u64;
            if skip >= remaining {
                // No Full update lands in the rest of this batch.
                self.advance_window(remaining as usize);
                skip -= remaining;
                break;
            }
            self.advance_window(skip as usize);
            self.full_update(keys[i + skip as usize].clone());
            i += skip as usize + 1;
            skip = self.draw_skip(ln_keep);
        }
        self.batch_skip = Some(skip);
    }

    /// Processes a *gap-stamped* batch: before each `keys[i]` the window
    /// advances over `gaps[i]` packets recorded elsewhere (another shard of
    /// a partitioned deployment). The foreign packets are pure window
    /// advances — they are sampled by their owners, so they never consume
    /// this instance's geometric skip — while the instance's own keys are
    /// τ-sampled exactly as in [`Self::update_batch`]: with all gaps zero
    /// the two paths are bit-for-bit identical. Owed window positions
    /// (gaps plus unsampled own packets) accumulate and are advanced in
    /// bulk right before each Full update, so the per-key constant work
    /// stays at the batch path's level.
    ///
    /// Like [`Self::update_batch`], the work is split into a skip-drawing
    /// pass (identical RNG stream) and a replay pass that prefetches the
    /// sampled keys a [`PREFETCH_LOOKAHEAD`] ahead of their probes; the
    /// seed's interleaved loop survives as
    /// `update_batch_positioned_reference` for the differential tests.
    pub fn update_batch_positioned(&mut self, gaps: &[u64], keys: &[K]) {
        assert_eq!(gaps.len(), keys.len(), "one gap stamp per key");
        if self.tau >= 1.0 {
            let mut hashes = [0u64; PREFETCH_LOOKAHEAD];
            for (j, key) in keys.iter().take(PREFETCH_LOOKAHEAD).enumerate() {
                hashes[j] = hash_one(key);
            }
            for (i, (gap, key)) in gaps.iter().zip(keys).enumerate() {
                let slot = i % PREFETCH_LOOKAHEAD;
                let hash = hashes[slot];
                if let Some(ahead) = keys.get(i + PREFETCH_LOOKAHEAD) {
                    let h = hash_one(ahead);
                    self.y.prefetch_hashed(h);
                    hashes[slot] = h;
                }
                self.skip(*gap);
                self.full_update_hashed(key.clone(), Some(hash));
            }
            return;
        }
        let mut sampled = std::mem::take(&mut self.batch_sampled);
        sampled.clear();
        let ln_keep = (1.0 - self.tau).ln();
        let mut skip = match self.batch_skip.take() {
            Some(s) => s,
            None => self.draw_skip(ln_keep),
        };
        for i in 0..keys.len() {
            if skip == 0 {
                sampled.push(i);
                skip = self.draw_skip(ln_keep);
            } else {
                skip -= 1;
            }
        }
        self.batch_skip = Some(skip);
        // Window positions owed before the next Full update: foreign gaps
        // plus own packets the sampler passed over.
        let mut pending: u64 = 0;
        let mut next = 0usize;
        let mut hashes = [0u64; PREFETCH_LOOKAHEAD];
        for (j, &idx) in sampled.iter().take(PREFETCH_LOOKAHEAD).enumerate() {
            hashes[j] = hash_one(&keys[idx]);
        }
        for (i, (gap, key)) in gaps.iter().zip(keys).enumerate() {
            pending += gap;
            if sampled.get(next) == Some(&i) {
                let slot = next % PREFETCH_LOOKAHEAD;
                let hash = hashes[slot];
                if let Some(&ahead) = sampled.get(next + PREFETCH_LOOKAHEAD) {
                    let h = hash_one(&keys[ahead]);
                    self.y.prefetch_hashed(h);
                    hashes[slot] = h;
                }
                self.skip(pending);
                pending = 0;
                self.full_update_hashed(key.clone(), Some(hash));
                next += 1;
            } else {
                pending += 1;
            }
        }
        self.skip(pending);
        self.batch_sampled = sampled;
    }

    /// Bit-for-bit reference for [`Self::update_batch_positioned`]: the
    /// seed's fused single-pass loop. Kept for the differential property
    /// tests; not part of the supported API.
    #[doc(hidden)]
    pub fn update_batch_positioned_reference(&mut self, gaps: &[u64], keys: &[K]) {
        assert_eq!(gaps.len(), keys.len(), "one gap stamp per key");
        if self.tau >= 1.0 {
            for (gap, key) in gaps.iter().zip(keys) {
                self.skip(*gap);
                self.full_update(key.clone());
            }
            return;
        }
        let ln_keep = (1.0 - self.tau).ln();
        let mut skip = match self.batch_skip.take() {
            Some(s) => s,
            None => self.draw_skip(ln_keep),
        };
        // Window positions owed before the next Full update: foreign gaps
        // plus own packets the sampler passed over.
        let mut pending: u64 = 0;
        for (gap, key) in gaps.iter().zip(keys) {
            pending += gap;
            if skip == 0 {
                self.skip(pending);
                pending = 0;
                self.full_update(key.clone());
                skip = self.draw_skip(ln_keep);
            } else {
                skip -= 1;
                pending += 1;
            }
        }
        self.skip(pending);
        self.batch_skip = Some(skip);
    }

    /// Draws a geometric skip (failures before the next success at rate τ)
    /// from the random-number table via inversion.
    #[inline]
    fn draw_skip(&mut self, ln_keep: f64) -> u64 {
        // Map the table's u32 to the open interval (0, 1).
        let u = (self.sampler.next_u32() as f64 + 0.5) / (u32::MAX as f64 + 1.0);
        (u.ln() / ln_keep) as u64
    }

    /// Advances the window over `n` packets observed *elsewhere* — other
    /// shards of a hash-partitioned deployment, other measurement points of
    /// a network-wide one — without recording them: exactly equivalent to
    /// `n` [`Self::window_update`] calls (bit-for-bit, asserted by the
    /// workspace's property tests), computed in **closed form**. The cost is
    /// independent of `n` — `O(min(rotations, k))` structural work plus one
    /// retirement per actually-expired overflow entry (each entry is retired
    /// once over its lifetime, so the retirements amortize against the Full
    /// updates that queued them), and `O(1)` outright once the structure is
    /// drained. This is the D-Memento-style bulk window update of §6 that
    /// lets a partitioned instance keep its window at the *global* stream
    /// position.
    ///
    /// Does not touch the geometric-skip state of
    /// [`Self::update_batch`]: skipped packets are recorded by their owners
    /// and are not candidates for this instance's τ-sampling.
    pub fn skip(&mut self, mut n: u64) {
        // `advance_window` takes usize; chunk for 32-bit targets (and leave
        // headroom so `m + n` cannot overflow the position arithmetic).
        while n > 0 {
            let step = n.min((usize::MAX - self.window) as u64);
            self.advance_window(step as usize);
            n -= step;
        }
    }

    /// Bit-for-bit reference for [`Self::skip`]: the event-walking bulk
    /// advance this crate shipped before the closed form (one loop iteration
    /// per block/frame boundary crossed, `O(n / block_size)` for a skip of
    /// `n`). Kept for the differential tests and as the baseline of the
    /// `sublinear_skip` bench; not part of the supported API.
    #[doc(hidden)]
    pub fn skip_reference(&mut self, mut n: u64) {
        while n > 0 {
            let step = n.min((usize::MAX - self.window) as u64);
            self.advance_window_walk(step as usize);
            n -= step;
        }
    }

    /// Advances the window by `n` packets at once, in closed form: *exactly*
    /// equivalent to `n` [`Self::window_update`] calls, but sublinear in `n`.
    ///
    /// The equivalence argument, piece by piece:
    ///
    /// * **Frame flushes** — a per-packet walk calls [`SpaceSaving::flush`]
    ///   at every frame boundary it crosses; with no insertions in between,
    ///   repeated flushes equal one, so flushing once iff the advance
    ///   crosses any frame boundary gives the same final `y`.
    /// * **Block rotations** — the number of boundaries crossed is counted
    ///   arithmetically ([`Self::rotations_within`]). Every queue that
    ///   rotates out of the window during the advance ends up *fully*
    ///   retired on the per-packet path too, no matter how the de-amortized
    ///   one-pop-per-packet budget fell: pops retire from the queue at the
    ///   front, and whatever the pops missed is retired by the rotation
    ///   that drops the queue. Draining each dropped block wholesale
    ///   ([`OverflowQueue::rotate_drain`]) therefore lands in the identical
    ///   state. If at least `k + 1` boundaries are crossed, every block —
    ///   including the current one — rotates out and the whole structure
    ///   (queues and the `B` table, whose entries correspond 1:1 to queued
    ///   identifiers) is cleared wholesale, making the cost of an
    ///   arbitrarily large `n` independent of `n`.
    /// * **The trailing drain** — only the pops *after the final rotation*
    ///   are visible in the end state (earlier pops hit queues that rotate
    ///   out anyway). The per-packet walk grants one pop to the packet that
    ///   crossed the last boundary plus one per remaining packet, i.e.
    ///   `m_final % block_size + 1` pops; with no rotation crossed the
    ///   budget is all `n` packets.
    fn advance_window(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.processed += n as u64;
        let rotations = self.rotations_within(n);
        let crossed_frame = n >= self.window - self.m;
        self.m = (((self.m as u128) + (n as u128)) % (self.window as u128)) as usize;
        // One divide per bulk advance restores the invariant the
        // per-packet path maintains incrementally.
        self.m_in_block = self.m % self.block_size;
        if crossed_frame {
            self.y.flush();
        }
        if rotations == 0 {
            self.drain_expired(n);
            return;
        }
        if rotations >= self.b.queue_count() as u64 {
            // Every block rotated out of the window: all queued identifiers
            // expire, and with them every overflow count (the B table's
            // entries correspond 1:1 to queued identifiers).
            self.b.clear();
            self.overflow_counts.clear();
            return;
        }
        let counts = &mut self.overflow_counts;
        self.b.rotate_drain(rotations as usize, |key| {
            if let Some(c) = counts.get_mut(&key) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(&key);
                }
            }
        });
        self.drain_expired(self.m % self.block_size + 1);
    }

    /// Number of block rotations a per-packet walk would perform while
    /// advancing `n` positions from the current `m`: the count of positions
    /// in `(m, m + n]` that land on a multiple of the block size modulo the
    /// frame (the frame wrap at `W → 0` counts — position 0 rotates even
    /// when `W` is not a multiple of the block size).
    fn rotations_within(&self, n: usize) -> u64 {
        let w = self.window as u64;
        let s = self.block_size as u64;
        let m = self.m as u64;
        let n = n as u64;
        // Boundaries per full frame: the multiples of s in [0, W-1].
        let per_frame = w.div_ceil(s);
        let full_frames = n / w;
        let remainder = n % w;
        let end = m + remainder; // < 2W: at most one wrap below.
        let partial = if end < w {
            end / s - m / s
        } else {
            // (m, W): multiples of s strictly above m; the wrap at 0; and
            // the multiples of s in [1, end - W] (end - W < m < W, so no
            // second wrap).
            ((w - 1) / s - m / s) + 1 + (end - w) / s
        };
        full_frames * per_frame + partial
    }

    /// The pre-closed-form bulk advance (the `skip_reference` walk): one
    /// loop iteration per block/frame boundary, the de-amortized drain
    /// budget spent as `step − 1` pops before each rotation and 1 after it.
    fn advance_window_walk(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        self.processed += n as u64;
        let mut left = n;
        while left > 0 {
            let to_block = self.block_size - (self.m % self.block_size);
            let to_frame = self.window - self.m;
            let to_event = to_block.min(to_frame);
            if left < to_event {
                // Ends inside a block: no boundary fires, only the drain.
                self.m += left;
                self.m_in_block = self.m % self.block_size;
                self.drain_expired(left);
                return;
            }
            self.m += to_event;
            left -= to_event;
            self.drain_expired(to_event - 1);
            if self.m == self.window {
                // Frame boundary: in-frame counts restart, and the position
                // is also a block boundary (m = 0).
                self.m = 0;
                self.y.flush();
            }
            let dropped = self.b.rotate();
            for key in dropped {
                self.retire_overflow(&key);
            }
            self.drain_expired(1);
        }
        self.m_in_block = self.m % self.block_size;
    }

    /// De-amortized retirement of expired overflows: up to `budget` pops
    /// (one per window position), stopping early when the oldest block's
    /// queue is empty — it cannot refill before the next rotation, so
    /// batching the pops is exactly equivalent to one pop per packet.
    fn drain_expired(&mut self, budget: usize) {
        for _ in 0..budget {
            match self.b.pop_oldest() {
                Some(old) => self.retire_overflow(&old),
                None => break,
            }
        }
    }

    /// Approximate heap footprint in bytes of the algorithm's state: the
    /// in-frame Space-Saving summary, the per-block overflow queues and the
    /// overflow table `B`. The fixed-size random-number table of the sampler
    /// is excluded — it is shared bookkeeping independent of the configured
    /// accuracy, and the paper compares algorithms by counter space.
    pub fn space_bytes(&self) -> usize {
        self.y.space_bytes() + self.b.space_bytes() + self.overflow_counts.heap_bytes()
    }

    fn retire_overflow(&mut self, key: &K) {
        if let Some(c) = self.overflow_counts.get_mut(key) {
            *c -= 1;
            if *c == 0 {
                self.overflow_counts.remove(key);
            }
        }
    }

    // ---- queries -------------------------------------------------------------

    /// Raw (unscaled) upper-bound estimate in *sampled* packets, following
    /// Algorithm 1's `QUERY` before the τ⁻¹ factor.
    fn raw_estimate(&self, key: &K) -> u64 {
        let block = self.overflow_threshold;
        match self.overflow_counts.get(key) {
            Some(&overflows) => block * (overflows as u64 + 2) + (self.y.query(key) % block),
            None => 2 * block + self.y.query(key),
        }
    }

    /// Estimated window frequency of `key` (Algorithm 1, `QUERY`): an upper
    /// bound with one-sided error, scaled by τ⁻¹.
    pub fn estimate(&self, key: &K) -> f64 {
        self.raw_estimate(key) as f64 * self.scale
    }

    /// Point estimate of the window frequency *without* the +2-block
    /// one-sided correction: overflow count in block units plus the in-frame
    /// remainder, scaled. Unlike [`Self::estimate`] it is not an upper bound,
    /// but it is (approximately) unbiased, which is what threshold-based
    /// applications such as the flood-mitigation controller of §6.3 want —
    /// otherwise a coarser (more biased) estimator would cross thresholds
    /// earlier than a finer one.
    pub fn point_estimate(&self, key: &K) -> f64 {
        let block = self.overflow_threshold;
        let raw = match self.overflow_counts.get(key) {
            Some(&overflows) => block * overflows as u64 + (self.y.query(key) % block),
            None => self.y.query(key),
        };
        raw as f64 * self.scale
    }

    /// The estimate [`Self::estimate`] assigns to any key with neither an
    /// overflow entry nor an in-frame counter: the `2·block` one-sided
    /// slack plus Space-Saving's absent-key answer, scaled by τ⁻¹. Depends
    /// on the current fill state of the in-frame summary, so snapshot code
    /// captures it at freeze time rather than assuming a constant.
    pub fn untracked_estimate(&self) -> f64 {
        (2 * self.overflow_threshold + self.y.absent_query()) as f64 * self.scale
    }

    /// Upper bound on the window frequency (alias of [`Self::estimate`]).
    pub fn upper_bound(&self, key: &K) -> f64 {
        self.estimate(key)
    }

    /// Lower bound on the window frequency, derived from the overflow count
    /// alone (each overflow beyond the ±2-block uncertainty witnesses one
    /// block worth of sampled traffic).
    pub fn lower_bound(&self, key: &K) -> f64 {
        let blocks = self
            .overflow_counts
            .get(key)
            .copied()
            .unwrap_or(0)
            .saturating_sub(2) as u64;
        (self.overflow_threshold * blocks) as f64 * self.scale
    }

    /// Keys that currently have either an overflow entry or an in-frame
    /// counter. Every window heavy hitter is guaranteed to be in this set
    /// (it must overflow at least once per window).
    pub fn tracked_keys(&self) -> Vec<K> {
        let mut keys: Vec<K> = self
            .overflow_counts
            .iter()
            .map(|(k, _)| k.clone())
            .collect();
        let known: std::collections::HashSet<K> = keys.iter().cloned().collect();
        for snap in self.y.snapshot() {
            if !known.contains(&snap.key) {
                keys.push(snap.key);
            }
        }
        keys
    }

    /// Flows whose estimated window frequency reaches `threshold` packets,
    /// sorted by decreasing estimate. Since every true heavy hitter overflows
    /// within the window, this set has no false negatives (up to the
    /// algorithm's ε·W error).
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        let mut out: Vec<(K, f64)> = self
            .tracked_keys()
            .into_iter()
            .map(|k| {
                let est = self.estimate(&k);
                (k, est)
            })
            .filter(|(_, est)| *est >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    // ---- incremental freeze --------------------------------------------------

    /// Canonical tie-breaking rank of a tracked key, mirroring
    /// [`Self::tracked_keys`]'s traversal: overflow flows first (their `B`
    /// slot), then `y`-only flows (their stream-summary slot, offset past
    /// every possible `B` slot). Ranks strictly increase along the
    /// traversal, so sorting by `(estimate desc, rank asc)` reproduces
    /// [`Self::heavy_hitters`]'s stable descending order exactly.
    /// `None` for untracked keys.
    fn delta_rank(&self, key: &K) -> Option<u64> {
        if let Some(slot) = self.overflow_counts.slot_of(key) {
            return Some(slot as u64);
        }
        self.y.slot_of(key).map(|slot| (1u64 << 32) | slot as u64)
    }

    /// Captures the changes since the previous `freeze_patch` call as a
    /// [`WindowPatch`] (the engine behind the Memento family's O(dirty)
    /// [`WindowQuery::freeze_delta`](crate::WindowQuery::freeze_delta)).
    ///
    /// The first call enables dirty journaling on the overflow table and the
    /// in-frame summary — instances that never freeze incrementally pay
    /// nothing — and returns a full rebuild. Subsequent calls return only
    /// the flows whose `(estimate, rank)` could have changed:
    ///
    /// * flows at journaled-dirty `B` or `y` slots (count changes, slot
    ///   moves from backward-shift deletion);
    /// * flows removed from `B` or evicted from `y` since the last call;
    /// * when `y`'s absent-key answer moved, every overflow flow *not*
    ///   monitored in `y` (their estimates embed that answer) — O(|B|),
    ///   still far below the full O(k + |B|) re-enumeration.
    ///
    /// A frame flush (`y` cleared) or overflow-table resize invalidates
    /// slot identity wholesale and degrades that call to a rebuild.
    ///
    /// The caller supplies `error_bound` (it differs between the Memento
    /// and WCSS trait impls); the patch carries `0.0` until overwritten.
    pub fn freeze_patch(&mut self) -> WindowPatch<K> {
        if !self.overflow_counts.journal_enabled() {
            self.overflow_counts.enable_journal();
        }
        if !self.y.journal_enabled() {
            self.y.enable_journal();
        }
        let map_drain = self
            .overflow_counts
            .drain_journal()
            .expect("journal enabled above");
        let y_drain = self.y.drain_journal().expect("journal enabled above");
        let absent = self.y.absent_query();
        let absent_changed = absent != self.last_absent;
        self.last_absent = absent;
        let untracked = self.untracked_estimate();
        if map_drain.all_dirty || y_drain.cleared {
            let mut updated = Vec::new();
            for (k, _) in self.overflow_counts.iter() {
                let rank = self
                    .overflow_counts
                    .slot_of(k)
                    .expect("iterated key is present") as u64;
                updated.push((k.clone(), self.estimate(k), rank));
            }
            for snap in self.y.snapshot() {
                if self.overflow_counts.get(&snap.key).is_some() {
                    continue;
                }
                let rank = (1u64 << 32)
                    | self
                        .y
                        .slot_of(&snap.key)
                        .expect("snapshotted key is present") as u64;
                let est = self.estimate(&snap.key);
                updated.push((snap.key, est, rank));
            }
            return WindowPatch {
                rebuild: true,
                updated,
                removed: Vec::new(),
                untracked,
                processed: self.processed,
                error_bound: 0.0,
            };
        }
        // Keyed by the workspace's fast multiply–rotate hash: SipHash here
        // would dominate the whole O(dirty) freeze.
        let mut candidates: HashSet<K, FastBuildHasher> = HashSet::default();
        for slot in map_drain.dirty_slots {
            if let Some((k, _)) = self.overflow_counts.slot_entry(slot) {
                candidates.insert(k.clone());
            }
        }
        candidates.extend(map_drain.removed);
        for slot in y_drain.dirty_slots {
            if let Some((k, _, _)) = self.y.slot_entry(slot) {
                candidates.insert(k.clone());
            }
        }
        candidates.extend(y_drain.evicted);
        if absent_changed {
            for (k, _) in self.overflow_counts.iter() {
                if self.y.slot_of(k).is_none() {
                    candidates.insert(k.clone());
                }
            }
        }
        let mut updated = Vec::new();
        let mut removed = Vec::new();
        for k in candidates {
            match self.delta_rank(&k) {
                Some(rank) => {
                    let est = self.estimate(&k);
                    updated.push((k, est, rank));
                }
                None => removed.push(k),
            }
        }
        WindowPatch {
            rebuild: false,
            updated,
            removed,
            untracked,
            processed: self.processed,
            error_bound: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_sketches::ExactWindow;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    /// The strength-reduced divisibility test must agree with `%` for
    /// every divisor shape (odd, power of two, mixed) across edge values.
    #[test]
    fn multiple_check_agrees_with_modulo() {
        let divisors = [
            1u64, 2, 3, 4, 5, 6, 7, 8, 12, 13, 100, 127, 128, 1000, 4096, 12_288, 999_983,
        ];
        for &d in &divisors {
            let check = MultipleCheck::new(d);
            for n in 0..4 * d.min(10_000) {
                assert_eq!(check.divides(n), n % d == 0, "d={d} n={n}");
            }
            for &n in &[
                u64::MAX,
                u64::MAX - 1,
                u64::MAX / d * d,
                d.wrapping_mul(1 << 40),
            ] {
                assert_eq!(check.divides(n), n % d == 0, "d={d} n={n}");
            }
        }
    }

    /// With τ = 1 (WCSS mode) the estimate must stay within ε·W = 4W/k of the
    /// exact window frequency (and never undershoot, the error is one-sided).
    #[test]
    fn tau_one_error_is_bounded_and_one_sided() {
        let window = 4_000;
        let counters = 100; // eps_a = 4/k = 4% -> error <= 160 packets
        let mut memento = Memento::new(counters, window, 1.0, 1);
        let mut exact = ExactWindow::new(window);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20_000u64 {
            // Skewed stream over 200 flows.
            let r: f64 = rng.gen();
            let flow = (r * r * 200.0) as u64;
            memento.update(flow);
            exact.add(flow);
        }
        let eps_bound = (4 * window / counters) as f64;
        for flow in 0..200u64 {
            let est = memento.estimate(&flow);
            let real = exact.query(&flow) as f64;
            assert!(
                est + 1e-9 >= real,
                "estimate must not undershoot: flow {flow} est {est} real {real}"
            );
            assert!(
                est - real <= eps_bound,
                "error too large: flow {flow} est {est} real {real} bound {eps_bound}"
            );
        }
    }

    /// Old heavy hitters must be forgotten once they leave the window.
    #[test]
    fn window_forgets_old_heavy_hitters() {
        let window = 1_000;
        let mut memento = Memento::new(50, window, 1.0, 3);
        // Flow 1 dominates the first 2 windows.
        for _ in 0..2 * window {
            memento.update(1u64);
        }
        assert!(memento.estimate(&1) > 0.5 * window as f64);
        // Then disappears for 2 full windows.
        for i in 0..2 * window {
            memento.update(1_000 + (i as u64 % 500));
        }
        let est = memento.estimate(&1);
        // Only the one-sided slack (2 blocks + in-frame SS noise) may remain.
        let slack = 3.0 * memento.block_size() as f64 + (window / 50) as f64;
        assert!(
            est <= slack,
            "stale flow not forgotten: est {est}, slack {slack}"
        );
    }

    /// The sampled estimate (scaled by τ⁻¹) should track the exact frequency
    /// of large flows reasonably well.
    #[test]
    fn sampling_preserves_large_flow_estimates() {
        let window = 20_000;
        let tau = 1.0 / 16.0;
        let mut memento = Memento::new(512, window, tau, 11);
        let mut exact = ExactWindow::new(window);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..3 * window {
            // Flow 0 carries ~25% of traffic, the rest spread over 1000 flows.
            let flow = if rng.gen::<f64>() < 0.25 {
                0u64
            } else {
                1 + rng.gen_range(0..1000u64)
            };
            memento.update(flow);
            exact.add(flow);
        }
        let est = memento.estimate(&0);
        let real = exact.query(&0) as f64;
        // The estimate is an upper bound (one-sided +2-block slack scaled by
        // τ⁻¹) plus sampling noise; it must stay in the right ballpark.
        let rel = (est - real).abs() / real;
        assert!(
            rel < 0.5,
            "relative error too large under sampling: est {est} real {real} rel {rel}"
        );
        assert!(
            est > 0.5 * real,
            "estimate collapsed: est {est} real {real}"
        );
        // The number of full updates should be ~tau * processed.
        let ratio = memento.full_updates() as f64 / memento.processed() as f64;
        assert!((ratio - tau).abs() < tau * 0.2, "full update ratio {ratio}");
    }

    #[test]
    fn heavy_hitters_contains_dominant_flow() {
        let window = 5_000;
        let mut memento = Memento::new(64, window, 0.25, 9);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..2 * window {
            let flow = if rng.gen::<f64>() < 0.3 {
                42u64
            } else {
                rng.gen_range(100..10_000)
            };
            memento.update(flow);
        }
        let hh = memento.heavy_hitters(0.2 * window as f64);
        assert!(
            hh.iter().any(|(k, _)| *k == 42),
            "dominant flow missing from {hh:?}"
        );
        // Results must be sorted by decreasing estimate.
        for w in hh.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn lower_bound_never_exceeds_upper_bound() {
        let mut memento = Memento::new(32, 2_000, 0.5, 5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let flow = rng.gen_range(0u64..50);
            memento.update(flow);
        }
        for flow in 0..50u64 {
            assert!(memento.lower_bound(&flow) <= memento.upper_bound(&flow) + 1e-9);
        }
    }

    #[test]
    fn point_estimate_is_below_upper_bound_and_near_truth() {
        let window = 5_000;
        let mut memento = Memento::new(100, window, 1.0, 4);
        let mut exact = ExactWindow::new(window);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..3 * window {
            let flow = if rng.gen::<f64>() < 0.3 {
                1u64
            } else {
                rng.gen_range(2..500)
            };
            memento.update(flow);
            exact.add(flow);
        }
        let real = exact.query(&1) as f64;
        let point = memento.point_estimate(&1);
        let upper = memento.upper_bound(&1);
        assert!(point <= upper);
        assert!(
            (point - real).abs()
                <= 2.0 * memento.overflow_threshold() as f64 + (window / 100) as f64,
            "point estimate {point} too far from exact {real}"
        );
    }

    #[test]
    fn estimates_scale_with_query_scale() {
        let mut memento = Memento::new(16, 100, 1.0, 0);
        for _ in 0..50 {
            memento.update(7u64);
        }
        let base = memento.estimate(&7);
        memento.set_query_scale(5.0);
        assert!((memento.estimate(&7) - 5.0 * base).abs() < 1e-9);
        assert_eq!(memento.query_scale(), 5.0);
    }

    #[test]
    fn from_config_respects_parameters() {
        let config = MementoConfig::builder(1_000)
            .epsilon(0.04)
            .tau(0.5)
            .seed(1)
            .build()
            .unwrap();
        let memento: Memento<u64> = Memento::from_config(&config);
        assert_eq!(memento.counters(), 100);
        assert_eq!(memento.block_size(), 10);
        assert_eq!(memento.window(), 1_000);
        assert!((memento.tau() - 0.5).abs() < 1e-12);
        assert!((memento.query_scale() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid Memento configuration")]
    fn invalid_parameters_panic() {
        let _ = Memento::<u64>::new(0, 100, 1.0, 0);
    }

    #[test]
    fn tracked_keys_cover_overflowed_and_in_frame_flows() {
        let mut memento = Memento::new(8, 80, 1.0, 2);
        for _ in 0..40 {
            memento.update("overflowing");
        }
        memento.update("fresh");
        let keys = memento.tracked_keys();
        assert!(keys.contains(&"overflowing"));
        assert!(keys.contains(&"fresh"));
    }

    #[test]
    fn batched_updates_match_per_packet_updates_at_tau_one() {
        // With τ = 1 the batch path performs the same Full updates in the
        // same order as the per-packet path: state must match exactly.
        let window = 2_000;
        let mut per_packet = Memento::new(64, window, 1.0, 9);
        let mut batched = Memento::new(64, window, 1.0, 9);
        let mut rng = StdRng::seed_from_u64(21);
        let keys: Vec<u64> = (0..3 * window).map(|_| rng.gen_range(0u64..300)).collect();
        for &k in &keys {
            per_packet.update(k);
        }
        for part in keys.chunks(173) {
            batched.update_batch(part);
        }
        assert_eq!(per_packet.processed(), batched.processed());
        assert_eq!(per_packet.full_updates(), batched.full_updates());
        assert_eq!(per_packet.tracked_overflows(), batched.tracked_overflows());
        for flow in 0..300u64 {
            assert_eq!(
                per_packet.estimate(&flow).to_bits(),
                batched.estimate(&flow).to_bits(),
                "estimates diverge for flow {flow}"
            );
        }
    }

    #[test]
    fn batched_updates_keep_sampled_estimates_accurate() {
        // The geometric-skip batch path must keep the τ-sampled estimates in
        // the same ballpark as the exact window, like the per-packet path.
        let window = 20_000;
        let tau = 1.0 / 16.0;
        let mut memento = Memento::new(512, window, tau, 11);
        let mut exact = ExactWindow::new(window);
        let mut rng = StdRng::seed_from_u64(4);
        let keys: Vec<u64> = (0..3 * window)
            .map(|_| {
                if rng.gen::<f64>() < 0.25 {
                    0u64
                } else {
                    1 + rng.gen_range(0..1000u64)
                }
            })
            .collect();
        for part in keys.chunks(777) {
            memento.update_batch(part);
        }
        for &k in &keys {
            exact.add(k);
        }
        let est = memento.estimate(&0);
        let real = exact.query(&0) as f64;
        let rel = (est - real).abs() / real;
        assert!(
            rel < 0.5,
            "batched estimate too far off: est {est} real {real}"
        );
        let ratio = memento.full_updates() as f64 / memento.processed() as f64;
        assert!(
            (ratio - tau).abs() < tau * 0.2,
            "batched full-update ratio {ratio}"
        );
    }

    /// `skip(n)` must be bit-for-bit the same as `n` unrecorded
    /// `window_update` calls, at any alignment relative to block and frame
    /// boundaries and with live overflow state to drain.
    #[test]
    fn skip_equals_window_updates_exactly() {
        let window = 1_000;
        let counters = 10; // block size 100
        for &n in &[1u64, 7, 99, 100, 101, 250, 999, 1_000, 1_001, 5_000] {
            let mut bulk = Memento::new(counters, window, 1.0, 5);
            let mut per_packet = Memento::new(counters, window, 1.0, 5);
            let mut rng = StdRng::seed_from_u64(n);
            // Warm up with a skewed recorded stream so overflow queues and
            // the B table are non-trivially populated.
            for _ in 0..1_700u64 {
                let key = (rng.gen::<f64>().powi(2) * 20.0) as u64;
                bulk.update(key);
                per_packet.update(key);
            }
            bulk.skip(n);
            for _ in 0..n {
                per_packet.window_update();
            }
            assert_eq!(bulk.processed(), per_packet.processed());
            assert_eq!(bulk.tracked_overflows(), per_packet.tracked_overflows());
            for key in 0..20u64 {
                assert_eq!(
                    bulk.estimate(&key).to_bits(),
                    per_packet.estimate(&key).to_bits(),
                    "skip({n}) diverges from window updates for key {key}"
                );
            }
        }
    }

    /// With all gaps zero the fused positioned path is bit-for-bit the
    /// plain geometric-skip batch path (same RNG draws, same advances).
    #[test]
    fn positioned_batch_with_zero_gaps_equals_update_batch() {
        let window = 4_000;
        let tau = 0.25;
        let mut plain = Memento::new(64, window, tau, 17);
        let mut positioned = Memento::new(64, window, tau, 17);
        let mut rng = StdRng::seed_from_u64(33);
        let keys: Vec<u64> = (0..3 * window).map(|_| rng.gen_range(0u64..200)).collect();
        let zero_gaps = vec![0u64; 311];
        for part in keys.chunks(311) {
            plain.update_batch(part);
            positioned.update_batch_positioned(&zero_gaps[..part.len()], part);
        }
        assert_eq!(plain.processed(), positioned.processed());
        assert_eq!(plain.full_updates(), positioned.full_updates());
        for flow in 0..200u64 {
            assert_eq!(
                plain.estimate(&flow).to_bits(),
                positioned.estimate(&flow).to_bits(),
                "fused path diverges for flow {flow}"
            );
        }
    }

    /// With gaps, the positioned path equals the naive skip+update replay
    /// on the deterministic τ = 1 configuration.
    #[test]
    fn positioned_batch_equals_skip_update_replay_at_tau_one() {
        let mut fused = Memento::new(32, 2_000, 1.0, 3);
        let mut naive = Memento::new(32, 2_000, 1.0, 3);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..40 {
            let len = rng.gen_range(1..200usize);
            let keys: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..30)).collect();
            let gaps: Vec<u64> = (0..len).map(|_| rng.gen_range(0u64..9)).collect();
            fused.update_batch_positioned(&gaps, &keys);
            for (gap, key) in gaps.iter().zip(&keys) {
                naive.skip(*gap);
                naive.full_update(*key);
            }
        }
        assert_eq!(fused.processed(), naive.processed());
        for flow in 0..30u64 {
            assert_eq!(
                fused.estimate(&flow).to_bits(),
                naive.estimate(&flow).to_bits(),
                "positioned replay diverges for flow {flow}"
            );
        }
    }

    /// The closed-form `skip` must match the event-walking reference
    /// (`skip_reference`) bit-for-bit — including *after* the skip, when
    /// both instances keep recording: a structural divergence in the block
    /// queues would surface as different retirement schedules later.
    #[test]
    fn closed_form_skip_equals_reference_walk() {
        // W deliberately not a multiple of the block count: block size 77,
        // a short final block, rotation positions {0, 77, ..., 693}.
        let window = 700;
        let counters = 9;
        for &n in &[
            1u64, 76, 77, 78, 500, 693, 699, 700, 701, 770, 1_400, 7_007, 70_001,
        ] {
            for &warm in &[0usize, 350, 1_650] {
                let mut closed = Memento::new(counters, window, 1.0, 5);
                let mut walk = Memento::new(counters, window, 1.0, 5);
                let mut rng = StdRng::seed_from_u64(n ^ warm as u64);
                for _ in 0..warm {
                    let key = (rng.gen::<f64>().powi(2) * 25.0) as u64;
                    closed.update(key);
                    walk.update(key);
                }
                closed.skip(n);
                walk.skip_reference(n);
                assert_eq!(closed.processed(), walk.processed());
                assert_eq!(closed.tracked_overflows(), walk.tracked_overflows());
                for key in 0..25u64 {
                    assert_eq!(
                        closed.estimate(&key).to_bits(),
                        walk.estimate(&key).to_bits(),
                        "skip({n}) after {warm} packets diverges for key {key}"
                    );
                }
                // Keep recording: the post-skip structures must behave
                // identically too.
                for _ in 0..900 {
                    let key = (rng.gen::<f64>().powi(2) * 25.0) as u64;
                    closed.update(key);
                    walk.update(key);
                }
                assert_eq!(closed.tracked_overflows(), walk.tracked_overflows());
                for key in 0..25u64 {
                    assert_eq!(
                        closed.estimate(&key).to_bits(),
                        walk.estimate(&key).to_bits(),
                        "post-skip({n}) stream diverges for key {key}"
                    );
                }
            }
        }
    }

    #[test]
    fn window_update_advances_without_recording() {
        let mut memento = Memento::<u64>::new(8, 100, 1.0, 2);
        for _ in 0..10 {
            memento.window_update();
        }
        assert_eq!(memento.processed(), 10);
        assert_eq!(memento.full_updates(), 0);
        assert_eq!(memento.tracked_overflows(), 0);
    }
}
