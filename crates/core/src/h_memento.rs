//! H-Memento — sliding-window hierarchical heavy hitters (Algorithm 2).
//!
//! H-Memento departs from the MST/RHHH lattice of per-level instances: it
//! keeps **one** [`Memento`] instance whose keys are *prefixes*, and for each
//! packet it either
//!
//! * performs a Full update on **one uniformly random** of the `H`
//!   generalizations of the packet's key (with overall probability τ, i.e.
//!   each specific prefix is sampled with probability `τ/H = 1/V`), or
//! * performs a plain Window update (all other packets),
//!
//! so the per-packet cost is constant regardless of the hierarchy size.
//! Queries are scaled by `V = H/τ` and the HHH set is extracted level by
//! level with the conditioned-frequency machinery of
//! [`memento_hierarchy::hhh_set`], adding the `2·Z₁₋δ·√(V·W)` compensation
//! for sampling (Algorithm 2, line 8).
//!
//! Note on parameters: the paper's Algorithm 2 initializes Memento with
//! "τ·H", but its analysis (Theorem 5.3, `V ≜ H/τ`) and evaluation
//! (`τ ≥ H·2⁻¹⁰` so that *each prefix* is sampled with probability `≥ 2⁻¹⁰`)
//! fix the per-prefix sampling probability at `τ/H`; this implementation
//! follows the analysis (see DESIGN.md §5).

use std::hash::Hash;

use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};
use memento_sketches::PrefixSampler;

use crate::analysis::z_value;
use crate::memento::Memento;

/// H-Memento: hierarchical heavy hitters over a sliding window in constant
/// time per packet.
#[derive(Debug, Clone)]
pub struct HMemento<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    memento: Memento<Hi::Prefix>,
    sampler: PrefixSampler,
    /// Per-prefix inverse sampling rate `V = H/τ` (also the query scale).
    v: f64,
    /// Overall Full-update probability τ (either applied locally by
    /// [`Self::update`] or already applied upstream, see
    /// [`Self::with_upstream_sampling`]).
    tau: f64,
    /// Confidence parameter δ used for the sampling compensation in `output`.
    delta: f64,
    window: usize,
}

impl<Hi: Hierarchy> HMemento<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates an H-Memento instance.
    ///
    /// * `hier` — the hierarchy (e.g. [`memento_hierarchy::SrcHierarchy`] or
    ///   [`memento_hierarchy::SrcDstHierarchy`]);
    /// * `counters` — total number of Space-Saving counters shared by all
    ///   prefixes (the paper's `64H`/`512H`/`4096H` configurations);
    /// * `window` — window size `W` in packets;
    /// * `tau` — overall Full-update probability in `(0, 1]`;
    /// * `delta` — confidence for the sampling compensation (e.g. 0.01);
    /// * `seed` — RNG seed.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(hier: Hi, counters: usize, window: usize, tau: f64, delta: f64, seed: u64) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "delta must be in (0,1), got {delta}"
        );
        let h = hier.h();
        // The inner Memento never flips its own coin (τ_inner = 1); sampling
        // is driven here so that the level choice and the coin flip share one
        // random draw. Full updates arrive at rate τ and queries are scaled
        // by V = H/τ.
        let mut memento = Memento::new(counters, window, 1.0, seed ^ 0x5EED);
        let sampler = PrefixSampler::new(h, tau, seed);
        let v = sampler.v();
        memento.configure_external_sampling(tau, v);
        HMemento {
            hier,
            memento,
            sampler,
            v,
            tau,
            delta,
            window,
        }
    }

    /// Creates an H-Memento instance whose *input is already a τ-sample* of
    /// the packet stream, as at the controller of the network-wide
    /// D-H-Memento system: every packet passed to
    /// [`Self::sampled_update`] performs a Full update of one random prefix,
    /// while the un-sampled remainder is accounted for with
    /// [`Self::window_update`] calls. Queries are scaled by
    /// `V = H / upstream_tau`.
    pub fn with_upstream_sampling(
        hier: Hi,
        counters: usize,
        window: usize,
        upstream_tau: f64,
        delta: f64,
        seed: u64,
    ) -> Self {
        assert!(
            upstream_tau > 0.0 && upstream_tau <= 1.0,
            "upstream tau must be in (0,1], got {upstream_tau}"
        );
        let mut hm = Self::new(hier, counters, window, 1.0, delta, seed);
        hm.tau = upstream_tau;
        hm.v = hm.hier.h() as f64 / upstream_tau;
        let v = hm.v;
        hm.memento.configure_external_sampling(upstream_tau, v);
        hm
    }

    /// Processes one packet that was *already sampled upstream* (network-wide
    /// controller path): always performs a Full update of one uniformly
    /// random prefix.
    #[inline]
    pub fn sampled_update(&mut self, item: Hi::Item) {
        let level = self.sampler.sample_level().unwrap_or(0);
        let prefix = self.hier.prefix_at(item, level);
        self.memento.full_update(prefix);
    }

    /// Advances the window by one packet without recording anything
    /// (network-wide controller path for un-sampled packets).
    #[inline]
    pub fn window_update(&mut self) {
        self.memento.window_update();
    }

    /// Advances the window over `n` packets observed elsewhere without
    /// recording them. All prefix levels share the single underlying
    /// [`Memento`], so the bulk advance fans into one closed-form
    /// [`Memento::skip`] call — exactly `n` unrecorded
    /// [`Self::window_update`]s, in time sublinear in `n`.
    pub fn skip(&mut self, n: u64) {
        self.memento.skip(n);
    }

    /// Creates an instance sized from an algorithm error `ε_a`: the paper
    /// allocates `H/ε_a` counters (Theorem A.19).
    pub fn with_epsilon(
        hier: Hi,
        epsilon: f64,
        window: usize,
        tau: f64,
        delta: f64,
        seed: u64,
    ) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1), got {epsilon}"
        );
        let h = hier.h();
        let counters = (h as f64 / epsilon).ceil() as usize;
        Self::new(hier, counters, window, tau, delta, seed)
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &Hi {
        &self.hier
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Overall Full-update probability τ (applied locally or upstream).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Per-prefix inverse sampling rate `V = H/τ`.
    pub fn v(&self) -> f64 {
        self.v
    }

    /// Total number of counters.
    pub fn counters(&self) -> usize {
        self.memento.counters()
    }

    /// Total packets processed.
    pub fn processed(&self) -> u64 {
        self.memento.processed()
    }

    /// Number of Full updates performed.
    pub fn full_updates(&self) -> u64 {
        self.memento.full_updates()
    }

    /// Processes one packet (Algorithm 2, `UPDATE`): with probability τ, Full
    /// update of one random prefix; otherwise a Window update.
    #[inline]
    pub fn update(&mut self, item: Hi::Item) {
        match self.sampler.sample_level() {
            Some(level) => {
                let prefix = self.hier.prefix_at(item, level);
                self.memento.full_update(prefix);
            }
            None => self.memento.window_update(),
        }
    }

    /// Estimated window frequency of a prefix (`f̂ = X̂ · V`).
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.memento.estimate(prefix)
    }

    /// Approximately unbiased point estimate of a prefix's window frequency
    /// (no one-sided correction); see
    /// [`Memento::point_estimate`](crate::Memento::point_estimate).
    pub fn point_estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.memento.point_estimate(prefix)
    }

    /// Upper bound `f̂⁺` on the window frequency of a prefix.
    pub fn upper(&self, prefix: &Hi::Prefix) -> f64 {
        self.memento.upper_bound(prefix)
    }

    /// Lower bound `f̂⁻` on the window frequency of a prefix.
    pub fn lower(&self, prefix: &Hi::Prefix) -> f64 {
        self.memento.lower_bound(prefix)
    }

    /// The additive sampling compensation `2·Z₁₋δ·√(V·W)` used by
    /// [`Self::output`].
    pub fn sampling_slack(&self) -> f64 {
        2.0 * z_value(1.0 - self.delta) * (self.v() * self.window as f64).sqrt()
    }

    /// Computes the approximate HHH set for threshold `θ` (Algorithm 2,
    /// `OUTPUT`): every prefix whose conditioned frequency with respect to
    /// the already selected set reaches `θ·W`.
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let candidates = self.memento.tracked_keys();
        compute_hhh(
            &self.hier,
            self,
            &candidates,
            HhhParams {
                threshold: theta * self.window as f64,
                sampling_slack: self.sampling_slack(),
            },
        )
    }

    /// Access to the underlying Memento instance (diagnostics, tests).
    pub fn as_memento(&self) -> &Memento<Hi::Prefix> {
        &self.memento
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for HMemento<Hi>
where
    Hi::Prefix: Hash,
{
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.memento.upper_bound(p)
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.memento.lower_bound(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcDstHierarchy, SrcHierarchy};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn estimates_track_prefix_frequencies_without_sampling() {
        // tau = 1 with H = 5: every packet updates one random prefix, so each
        // prefix level is sampled at rate 1/5 and estimates are scaled by 5.
        let window = 20_000;
        let mut hm = HMemento::new(SrcHierarchy, 1000, window, 1.0, 0.01, 1);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2 * window {
            // 40% of traffic from 10.1.0.0/16, rest spread widely.
            let item = if rng.gen::<f64>() < 0.4 {
                addr(10, 1, rng.gen_range(0..8), rng.gen())
            } else {
                addr(rng.gen_range(50..250), rng.gen(), rng.gen(), rng.gen())
            };
            hm.update(item);
        }
        let p16 = Prefix1D::new(addr(10, 1, 0, 0), 16);
        let est = hm.estimate(&p16);
        let expected = 0.4 * window as f64;
        assert!(
            (est - expected).abs() < 0.35 * expected,
            "estimate {est} vs expected {expected}"
        );
    }

    #[test]
    fn output_detects_heavy_subnet_1d() {
        let window = 30_000;
        let tau = 0.5;
        let mut hm = HMemento::new(SrcHierarchy, 2000, window, tau, 0.01, 7);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2 * window {
            // Heavy /8: 181.0.0.0/8 carries ~50% of traffic via many hosts.
            let item = if rng.gen::<f64>() < 0.5 {
                addr(181, rng.gen(), rng.gen(), rng.gen())
            } else {
                addr(rng.gen_range(1..120), rng.gen(), rng.gen(), rng.gen())
            };
            hm.update(item);
        }
        let hhh = hm.output(0.2);
        let heavy = Prefix1D::new(addr(181, 0, 0, 0), 8);
        assert!(
            hhh.contains(&heavy),
            "heavy /8 not detected; output = {:?}",
            hhh.iter().map(|p| p.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn output_has_no_false_negatives_vs_exact_hhh() {
        use memento_hierarchy::exact_hhh;
        let window = 40_000;
        let hier = SrcHierarchy;
        let mut hm = HMemento::new(hier, 4000, window, 0.8, 0.05, 11);
        let mut rng = StdRng::seed_from_u64(13);
        let mut last_window: Vec<u32> = Vec::new();
        for _ in 0..window {
            let item = match rng.gen_range(0..10) {
                0..=3 => addr(10, 0, 0, rng.gen_range(0..4)), // heavy /30-ish hosts
                4..=6 => addr(20, rng.gen_range(0..4), rng.gen(), rng.gen()), // heavy /8
                _ => addr(rng.gen_range(60..250), rng.gen(), rng.gen(), rng.gen()),
            };
            hm.update(item);
            last_window.push(item);
        }
        let theta = 0.25;
        let approx = hm.output(theta);
        let exact = exact_hhh(&hier, &last_window, theta * window as f64);
        // Coverage: every exact HHH must be reported (the approximate set may
        // contain extra prefixes, never fewer).
        for p in &exact {
            assert!(
                approx.contains(p),
                "false negative: exact HHH {p} missing from approx {:?}",
                approx.iter().map(|p| p.to_string()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn two_dimensional_hierarchy_works() {
        let window = 20_000;
        let mut hm = HMemento::new(SrcDstHierarchy, 4000, window, 1.0, 0.05, 3);
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..window {
            let item = if rng.gen::<f64>() < 0.6 {
                (addr(10, 0, rng.gen(), rng.gen()), addr(99, 99, 0, 1))
            } else {
                (
                    addr(rng.gen_range(20..200), rng.gen(), rng.gen(), rng.gen()),
                    addr(rng.gen_range(20..200), rng.gen(), rng.gen(), rng.gen()),
                )
            };
            hm.update(item);
        }
        let hhh = hm.output(0.3);
        assert!(!hhh.is_empty());
        // The (10.0.0.0/16, 99.99.0.1/32) pair region must be represented by
        // some reported ancestor.
        let probe = (addr(10, 0, 1, 2), addr(99, 99, 0, 1));
        assert!(
            hhh.iter().any(|p| SrcDstHierarchy.prefix_matches(p, probe)),
            "no reported prefix covers the heavy 2D region"
        );
    }

    #[test]
    fn update_cost_is_constant_in_hierarchy_size() {
        // Structural check: only one Memento update happens per packet no
        // matter the hierarchy, i.e. processed() equals the packet count.
        let mut hm1 = HMemento::new(SrcHierarchy, 100, 1000, 0.1, 0.01, 1);
        let mut hm2 = HMemento::new(SrcDstHierarchy, 100, 1000, 0.1, 0.01, 1);
        for i in 0..5_000u32 {
            hm1.update(i);
            hm2.update((i, i));
        }
        assert_eq!(hm1.processed(), 5_000);
        assert_eq!(hm2.processed(), 5_000);
        // Full updates happen at rate ~tau in both cases.
        let r1 = hm1.full_updates() as f64 / 5_000.0;
        let r2 = hm2.full_updates() as f64 / 5_000.0;
        assert!((r1 - 0.1).abs() < 0.03, "1D full-update rate {r1}");
        assert!((r2 - 0.1).abs() < 0.03, "2D full-update rate {r2}");
    }

    #[test]
    fn with_epsilon_allocates_h_over_eps_counters() {
        let hm = HMemento::new(SrcHierarchy, 50, 1000, 0.5, 0.01, 0);
        assert_eq!(hm.counters(), 50);
        let hm = HMemento::with_epsilon(SrcHierarchy, 0.01, 1000, 0.5, 0.01, 0);
        assert_eq!(hm.counters(), 500);
        let hm2 = HMemento::with_epsilon(SrcDstHierarchy, 0.01, 1000, 0.5, 0.01, 0);
        assert_eq!(hm2.counters(), 2500);
    }

    #[test]
    fn v_equals_h_over_tau() {
        let hm = HMemento::new(SrcHierarchy, 100, 1000, 0.25, 0.01, 0);
        assert!((hm.v() - 20.0).abs() < 1e-9);
        assert!((hm.tau() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        let _ = HMemento::new(SrcHierarchy, 10, 100, 0.5, 1.5, 0);
    }
}
