//! The read-only query plane: `WindowQuery` / `HhhQuery` and the frozen
//! summaries that carry answers across threads.
//!
//! PR 7 splits the workspace's fat algorithm traits in two. The ingest side
//! ([`SlidingWindowEstimator`](crate::traits::SlidingWindowEstimator),
//! [`HhhAlgorithm`](crate::traits::HhhAlgorithm)) keeps everything that
//! mutates — `update`, `update_batch`, `skip` — while the query side lives
//! here as supertraits that need only `&self`:
//!
//! * [`WindowQuery`] — `estimate` / `heavy_hitters` / `processed` for
//!   per-flow frequency estimators;
//! * [`HhhQuery`] — `estimate` / `output` / `processed` for hierarchical
//!   heavy-hitter algorithms.
//!
//! The split is what makes a wait-free query plane expressible: the sharded
//! engines' readers ([`SnapshotReader`](../../memento_shard/struct.SnapshotReader.html))
//! and the merged [`EngineSnapshot`](../../memento_shard/struct.EngineSnapshot.html)s
//! they serve implement *only* the query traits, so code written against
//! `&dyn WindowQuery<K>` cannot accidentally take a blocking ingest path.
//!
//! [`FrozenWindow`] and [`FrozenHhh`] are the immutable value types a live
//! algorithm produces via [`WindowQuery::freeze`] / [`HhhQuery::freeze`]:
//! self-contained summaries that answer the same queries the live instance
//! would have answered at freeze time, bit-for-bit, without referencing the
//! live state. The sharded engines freeze one per shard inside the worker
//! threads and merge them into publication snapshots.

use std::collections::HashMap;
use std::hash::Hash;

use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};

use crate::delta::WindowPatch;

/// The read-only surface of a per-flow sliding-window frequency estimator.
///
/// Everything here takes `&self`: implementors answer from their current
/// state without advancing it. Live algorithms ([`Memento`](crate::Memento),
/// [`Wcss`](crate::Wcss), exact windows) implement it alongside the ingest
/// trait; frozen summaries and the sharded engines' snapshot readers
/// implement *only* this trait.
pub trait WindowQuery<K: Clone> {
    /// Short stable name used in bench CSV output and test diagnostics.
    fn name(&self) -> &'static str;

    /// Estimated window frequency of `key`, in packets.
    fn estimate(&self, key: &K) -> f64;

    /// Flows whose estimated frequency reaches `threshold` packets, sorted
    /// by decreasing estimate.
    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)>;

    /// Total packets processed as of the state being queried.
    fn processed(&self) -> u64;

    /// Additive bound (in packets, with high probability) on the estimation
    /// error for the current configuration: `0` for exact oracles, `ε_a·W`
    /// for deterministic summaries, `ε_a·W` plus sampling noise for sampled
    /// ones. Consumers use it to scale assertions and plots, not as a hard
    /// guarantee for sampled estimators.
    fn error_bound(&self) -> f64;

    /// The estimate this instance reports for a key it is not currently
    /// tracking. Zero for exact oracles (the default); Memento-family
    /// summaries report the one-sided slack `(2·block + min_count)·scale`
    /// that [`estimate`](Self::estimate) assigns to absent keys, which
    /// depends on the current fill state and must therefore be captured at
    /// freeze time.
    fn untracked_estimate(&self) -> f64 {
        0.0
    }

    /// Captures an immutable [`FrozenWindow`] answering exactly the queries
    /// this instance would answer right now.
    ///
    /// The provided implementation records every tracked flow via
    /// `heavy_hitters(0.0)` (estimates are non-negative, so a zero
    /// threshold enumerates all of them in canonical descending order)
    /// together with [`untracked_estimate`](Self::untracked_estimate) for
    /// everything else. That reproduces `estimate` and `heavy_hitters`
    /// bit-for-bit for every implementor whose heavy-hitter sort is stable
    /// — all of the workspace's are — because filtering a stable descending
    /// order by threshold commutes with sorting the filtered set.
    fn freeze(&self) -> FrozenWindow<K>
    where
        K: Eq + Hash,
    {
        FrozenWindow::capture(
            self.name(),
            self.heavy_hitters(0.0),
            self.untracked_estimate(),
            self.processed(),
            self.error_bound(),
        )
    }

    /// Captures the changes since the previous `freeze_delta` call as a
    /// [`WindowPatch`], for consumers maintaining a persistent
    /// [`DeltaWindow`](crate::delta::DeltaWindow). Applying every patch in
    /// call order reproduces [`freeze`](Self::freeze)'s answers bit-for-bit
    /// at each point.
    ///
    /// Takes `&mut self` because native implementors drain internal dirty
    /// journals. The provided implementation has no journal and simply
    /// returns a full [`WindowPatch::rebuild`] every time — correct for any
    /// implementor, O(k) like `freeze`. Native O(dirty) implementations
    /// exist for the Memento family, Space Saving, and the exact window.
    fn freeze_delta(&mut self) -> WindowPatch<K>
    where
        K: Eq + Hash,
    {
        WindowPatch::rebuild(
            self.heavy_hitters(0.0),
            self.untracked_estimate(),
            self.processed(),
            self.error_bound(),
        )
    }
}

/// The read-only surface of a hierarchical heavy-hitters algorithm.
///
/// The `&self` subset of [`HhhAlgorithm`](crate::traits::HhhAlgorithm),
/// implemented by live algorithms, by [`FrozenHhh`] summaries, and by the
/// sharded HHH engine's snapshot readers.
pub trait HhhQuery<Hi: Hierarchy> {
    /// Short stable name used in bench CSV output and test diagnostics.
    fn name(&self) -> &'static str;

    /// Estimated frequency of a prefix over the algorithm's measurement
    /// scope (window or interval), in packets.
    fn estimate(&self, prefix: &Hi::Prefix) -> f64;

    /// The approximate HHH set for threshold `θ ∈ (0, 1)`.
    fn output(&self, theta: f64) -> Vec<Hi::Prefix>;

    /// Total packets processed as of the state being queried.
    fn processed(&self) -> u64;

    /// Captures an immutable [`FrozenHhh`] answering exactly the queries
    /// this instance would answer right now, or `None` for algorithms whose
    /// query state cannot be extracted into a self-contained summary (the
    /// default). Sliding-window algorithms behind the sharded engine must
    /// return `Some` — the engine checks at construction.
    fn freeze(&self) -> Option<FrozenHhh<Hi>> {
        None
    }
}

/// An immutable point-in-time summary of a [`WindowQuery`] implementor.
///
/// Stores the tracked flows in the live instance's canonical
/// descending-estimate order plus the estimate assigned to untracked keys,
/// so `estimate` and `heavy_hitters` reproduce the frozen instance's answers
/// bit-for-bit. `Send + Sync` whenever `K` is, which is what lets the
/// sharded engines ship one per shard out of the worker threads.
#[derive(Debug, Clone)]
pub struct FrozenWindow<K> {
    name: &'static str,
    /// Tracked flows in the live `heavy_hitters(0.0)` order (descending
    /// estimate, original stable tie order).
    entries: Vec<(K, f64)>,
    /// Point lookups for `estimate`.
    index: HashMap<K, f64>,
    /// Estimate reported for keys absent from `index`.
    untracked: f64,
    processed: u64,
    error_bound: f64,
}

impl<K: Eq + Hash + Clone> FrozenWindow<K> {
    /// Builds a frozen summary from a live instance's full heavy-hitter
    /// enumeration (threshold 0, canonical order) and scalar state.
    pub fn capture(
        name: &'static str,
        entries: Vec<(K, f64)>,
        untracked: f64,
        processed: u64,
        error_bound: f64,
    ) -> Self {
        let index = entries.iter().cloned().collect();
        Self {
            name,
            entries,
            index,
            untracked,
            processed,
            error_bound,
        }
    }

    /// An empty summary: what a reader sees before anything was published.
    pub fn empty(name: &'static str) -> Self {
        Self {
            name,
            entries: Vec::new(),
            index: HashMap::new(),
            untracked: 0.0,
            processed: 0,
            error_bound: 0.0,
        }
    }

    /// Number of tracked flows in the summary.
    pub fn tracked(&self) -> usize {
        self.entries.len()
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for FrozenWindow<K> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, key: &K) -> f64 {
        self.index.get(key).copied().unwrap_or(self.untracked)
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        // `entries` is already in the live implementor's canonical order;
        // filtering a stable descending order is the same as sorting the
        // filtered set, so this matches the live answer bit-for-bit.
        self.entries
            .iter()
            .filter(|(_, est)| *est >= threshold)
            .cloned()
            .collect()
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn error_bound(&self) -> f64 {
        self.error_bound
    }

    fn untracked_estimate(&self) -> f64 {
        self.untracked
    }
}

/// An immutable point-in-time summary of a hierarchical heavy-hitters
/// algorithm: the candidate prefixes with their frequency bounds, plus the
/// parameters (`W`, sampling slack) of the paper's `OUTPUT` computation.
///
/// Re-runs Algorithm 2 (`compute_hhh`) over the captured bounds on every
/// [`output`](HhhQuery::output) call, so one frozen summary answers any
/// threshold — exactly like the live instance, and bit-for-bit equal to it
/// because the candidate list preserves the live enumeration order.
#[derive(Debug, Clone)]
pub struct FrozenHhh<Hi: Hierarchy> {
    name: &'static str,
    hier: Hi,
    window: usize,
    sampling_slack: f64,
    /// Candidate prefixes in the live instance's enumeration order.
    candidates: Vec<Hi::Prefix>,
    /// Upper/lower frequency bounds per candidate.
    bounds: HashMap<Hi::Prefix, (f64, f64)>,
    /// Bounds reported for prefixes absent from `bounds`.
    untracked_upper: f64,
    untracked_lower: f64,
    processed: u64,
}

impl<Hi: Hierarchy> FrozenHhh<Hi> {
    /// Builds a frozen summary from captured per-candidate bounds.
    ///
    /// `candidates` must preserve the live instance's candidate enumeration
    /// order — `compute_hhh` resolves threshold ties in enumeration order,
    /// so preserving it is what makes frozen `output` bit-for-bit equal to
    /// the live one.
    #[allow(clippy::too_many_arguments)]
    pub fn capture(
        name: &'static str,
        hier: Hi,
        window: usize,
        sampling_slack: f64,
        candidates: Vec<Hi::Prefix>,
        bounds: HashMap<Hi::Prefix, (f64, f64)>,
        untracked_upper: f64,
        untracked_lower: f64,
        processed: u64,
    ) -> Self {
        Self {
            name,
            hier,
            window,
            sampling_slack,
            candidates,
            bounds,
            untracked_upper,
            untracked_lower,
            processed,
        }
    }

    /// The window size `W` the summary was captured over.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Candidate prefixes in the captured enumeration order.
    pub fn candidates(&self) -> &[Hi::Prefix] {
        &self.candidates
    }

    /// The additive sampling compensation used by `output`.
    pub fn sampling_slack(&self) -> f64 {
        self.sampling_slack
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for FrozenHhh<Hi> {
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.bounds
            .get(p)
            .map(|b| b.0)
            .unwrap_or(self.untracked_upper)
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.bounds
            .get(p)
            .map(|b| b.1)
            .unwrap_or(self.untracked_lower)
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for FrozenHhh<Hi> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.upper_bound(prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        compute_hhh(
            &self.hier,
            self,
            &self.candidates,
            HhhParams {
                threshold: theta * self.window as f64,
                sampling_slack: self.sampling_slack,
            },
        )
    }

    fn processed(&self) -> u64 {
        self.processed
    }

    fn freeze(&self) -> Option<FrozenHhh<Hi>> {
        Some(self.clone())
    }
}
