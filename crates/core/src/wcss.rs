//! WCSS — Window Compact Space Saving (Ben-Basat et al., Infocom 2016).
//!
//! The paper builds Memento on top of WCSS and uses "Memento with τ = 1" as
//! its WCSS implementation for the evaluation (§6: *"For WCSS we use our
//! Memento implementation without sampling (τ = 1)"*). This type makes that
//! construction explicit: it is a thin, fully-typed wrapper around
//! [`Memento`] with the sampling disabled, exposing the classical WCSS
//! guarantees (`(ε_a, 0)`-window frequency estimation with `⌈4/ε_a⌉`
//! counters and constant-time updates and queries).

use std::hash::Hash;

use crate::memento::Memento;

/// The WCSS sliding-window heavy-hitters algorithm (Memento with τ = 1).
#[derive(Debug, Clone)]
pub struct Wcss<K: Eq + Hash + Clone> {
    inner: Memento<K>,
}

impl<K: Eq + Hash + Clone> Wcss<K> {
    /// Creates a WCSS instance with an explicit number of counters.
    pub fn new(counters: usize, window: usize) -> Self {
        Wcss {
            inner: Memento::new(counters, window, 1.0, 0),
        }
    }

    /// Creates a WCSS instance sized for an additive error of `ε_a · W`
    /// (`⌈4/ε_a⌉` counters).
    pub fn with_epsilon(epsilon: f64, window: usize) -> Self {
        Wcss {
            inner: Memento::with_epsilon(epsilon, window, 1.0, 0),
        }
    }

    /// Processes one packet (always a Full update).
    #[inline]
    pub fn update(&mut self, key: K) {
        self.inner.full_update(key);
    }

    /// Estimated window frequency of `key` (one-sided error of at most
    /// `4W/k`).
    pub fn estimate(&self, key: &K) -> f64 {
        self.inner.estimate(key)
    }

    /// Upper bound on the window frequency of `key`.
    pub fn upper_bound(&self, key: &K) -> f64 {
        self.inner.upper_bound(key)
    }

    /// Lower bound on the window frequency of `key`.
    pub fn lower_bound(&self, key: &K) -> f64 {
        self.inner.lower_bound(key)
    }

    /// Advances the window over `n` packets observed elsewhere without
    /// recording them — exactly `n` unrecorded window updates, in O(1)
    /// amortized time (see [`Memento::skip`]).
    pub fn skip(&mut self, n: u64) {
        self.inner.skip(n);
    }

    /// Flows whose estimated window frequency reaches `threshold` packets.
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.inner.heavy_hitters(threshold)
    }

    /// Window size `W`.
    pub fn window(&self) -> usize {
        self.inner.window()
    }

    /// Number of counters.
    pub fn counters(&self) -> usize {
        self.inner.counters()
    }

    /// Total packets processed.
    pub fn processed(&self) -> u64 {
        self.inner.processed()
    }

    /// Access to the underlying Memento instance (all WCSS behaviour is the
    /// τ = 1 special case).
    pub fn as_memento(&self) -> &Memento<K> {
        &self.inner
    }

    /// Mutable access to the underlying Memento instance.
    pub fn as_memento_mut(&mut self) -> &mut Memento<K> {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_sketches::ExactWindow;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn wcss_is_memento_with_tau_one() {
        let wcss = Wcss::<u64>::new(64, 1_000);
        assert_eq!(wcss.as_memento().tau(), 1.0);
        assert_eq!(wcss.counters(), 64);
        assert_eq!(wcss.window(), 1_000);
    }

    #[test]
    fn with_epsilon_allocates_4_over_eps_counters() {
        let wcss = Wcss::<u64>::with_epsilon(0.001, 1_000_000);
        assert_eq!(wcss.counters(), 4_000);
    }

    #[test]
    fn error_bound_holds_on_skewed_stream() {
        let window = 5_000;
        let counters = 200; // eps = 2% -> bound 100 packets
        let mut wcss = Wcss::new(counters, window);
        let mut exact = ExactWindow::new(window);
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..25_000u64 {
            let r: f64 = rng.gen();
            let flow = (r * r * r * 300.0) as u64;
            wcss.update(flow);
            exact.add(flow);
        }
        let bound = (4 * window / counters) as f64;
        for flow in 0..300u64 {
            let est = wcss.estimate(&flow);
            let real = exact.query(&flow) as f64;
            assert!(est + 1e-9 >= real, "one-sided error violated");
            assert!(est - real <= bound, "flow {flow}: est {est}, real {real}");
        }
    }

    #[test]
    fn every_update_is_a_full_update() {
        let mut wcss = Wcss::new(16, 100);
        for i in 0..500u64 {
            wcss.update(i % 10);
        }
        assert_eq!(wcss.processed(), 500);
        assert_eq!(wcss.as_memento().full_updates(), 500);
    }

    #[test]
    fn mutable_memento_access_allows_window_updates() {
        let mut wcss = Wcss::<u64>::new(16, 100);
        wcss.as_memento_mut().window_update();
        assert_eq!(wcss.processed(), 1);
    }
}
