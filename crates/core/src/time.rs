//! The time plane: grain-mapped time-based sliding windows over the
//! count-based estimators.
//!
//! The paper — and every count-based structure in this workspace — defines
//! its window as "the last `W` packets". Real SLAs are time-based ("the
//! last 5 seconds"), and the production systems that ship this paper's
//! problem (Kong's rate limiter, commcare-hq's `SlidingWindowRateCounter`)
//! all use the same shape: divide the time window into `g` sub-window
//! *grains* and advance the window by whole-grain rotations. Memento's
//! block/frame structure (CoNEXT 2018, §4) already *is* a grained window,
//! so a time-based window needs no new algorithm — only plumbing from
//! timestamps to a computed number of closed-form
//! [`skip`](crate::traits::SlidingWindowEstimator::skip) rotations.
//!
//! # The grain ↔ position mapping
//!
//! A [`GrainMap`] fixes the static geometry: a window of `D` clock ticks
//! and `W` stream positions is divided into `g` grains of
//! `grain_span = ⌈D/g⌉` ticks, each worth `ppg = ⌈W/g⌉` positions.
//! A [`GrainClock`] then turns a stream of timestamps into rotation counts
//! against a *position schedule*: entering grain `G + Δ` moves the
//! scheduled position forward by `Δ · ppg`, and the rotations to execute
//! are `scheduled − position` — so packets recorded inside a grain consume
//! that grain's position budget instead of shrinking the effective time
//! span, and an idle grain boundary pays the full `ppg`. When a burst
//! overruns its grain budget (more than `ppg` records in one grain), the
//! schedule is re-anchored at the burst's end position on the next grain
//! boundary, so the entries still age out one full window after their
//! grain — the count capacity `W` binds under overload, never the clock.
//!
//! The quantization contract: an entry recorded at tick `t` leaves the
//! window at a tick within one `grain_span` of `t + D` (plus the `⌈·⌉`
//! rounding of `ppg`, at most one further grain). Idle gaps longer than
//! the whole window map to `≥ W` rotations, which the closed-form `skip`
//! executes as an O(1)/O(distinct) wholesale clear — time never walks.
//!
//! # Clock policy
//!
//! Timestamps are `u64` ticks of any unit (the map only ever compares and
//! subtracts them). The policy for misbehaving clocks is **clamp-to-last,
//! never panic**: a timestamp earlier than the newest one already observed
//! is treated as arriving at the newest one (windows only move forward;
//! [`GrainClock::clamped`] counts the occurrences for diagnostics).
//! Duplicate timestamps are normal and cost nothing. Far-future jumps
//! saturate in 128-bit arithmetic instead of overflowing.

use std::hash::Hash;
use std::marker::PhantomData;

use memento_hierarchy::Hierarchy;

use crate::delta::WindowPatch;
use crate::query::{HhhQuery, WindowQuery};
use crate::traits::{HhhAlgorithm, SlidingWindowEstimator};

/// The static geometry of a grain-mapped time window: how many clock ticks
/// one grain spans and how many stream positions it is worth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrainMap {
    /// Window length in clock ticks (`D`).
    window_ticks: u64,
    /// Window length in stream positions (`W`) — must match the wrapped
    /// estimator's configured window.
    window_positions: u64,
    /// Ticks per grain: `max(1, ⌈D/g⌉)`.
    grain_span: u64,
    /// Effective grains per window: `⌈D/grain_span⌉` (equals the requested
    /// `g` unless `D < g` forced 1-tick grains).
    grains: u64,
    /// Stream positions one grain is worth: `max(1, ⌈W/grains⌉)`.
    positions_per_grain: u64,
}

impl GrainMap {
    /// Builds the map for a window of `window_ticks` clock ticks and
    /// `window_positions` stream positions, divided into (at most) `grains`
    /// grains.
    ///
    /// # Panics
    /// Panics when any argument is zero.
    pub fn new(window_ticks: u64, window_positions: u64, grains: u64) -> Self {
        assert!(window_ticks > 0, "window_ticks must be positive");
        assert!(window_positions > 0, "window_positions must be positive");
        assert!(grains > 0, "grains must be positive");
        let grain_span = window_ticks.div_ceil(grains).max(1);
        let grains = window_ticks.div_ceil(grain_span).max(1);
        let positions_per_grain = window_positions.div_ceil(grains).max(1);
        GrainMap {
            window_ticks,
            window_positions,
            grain_span,
            grains,
            positions_per_grain,
        }
    }

    /// Window length in clock ticks (`D`).
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// Window length in stream positions (`W`).
    pub fn window_positions(&self) -> u64 {
        self.window_positions
    }

    /// Clock ticks one grain spans — the time-quantization unit of the
    /// mapping.
    pub fn grain_span(&self) -> u64 {
        self.grain_span
    }

    /// Effective number of grains per window.
    pub fn grains(&self) -> u64 {
        self.grains
    }

    /// Stream positions one grain boundary schedules.
    pub fn positions_per_grain(&self) -> u64 {
        self.positions_per_grain
    }

    /// The absolute grain index a timestamp falls into.
    #[inline]
    fn grain_of(&self, t: u64) -> u64 {
        t / self.grain_span
    }
}

/// Turns a (clamped-monotone) timestamp stream into window rotation counts
/// against the [`GrainMap`]'s position schedule.
///
/// The clock anchors itself on the first observation: the first timestamp's
/// grain becomes the schedule origin at the stream position passed in with
/// it. From then on, [`observe`](Self::observe) returns how many rotations
/// ([`skip`](crate::traits::SlidingWindowEstimator::skip) positions) bring
/// the stream to the schedule for the observed timestamp's grain. See the
/// [module docs](self) for the schedule semantics and the clamp-to-last
/// clock policy.
#[derive(Debug, Clone)]
pub struct GrainClock {
    map: GrainMap,
    /// False until the first observation anchors the schedule.
    anchored: bool,
    /// Absolute grain index of the newest observation.
    grain: u64,
    /// Newest (post-clamp) timestamp observed.
    last_tick: u64,
    /// Scheduled stream position for the current grain.
    scheduled: u64,
    /// Non-monotone timestamps clamped so far (diagnostics).
    clamped: u64,
}

impl GrainClock {
    /// Creates an unanchored clock over `map`.
    pub fn new(map: GrainMap) -> Self {
        GrainClock {
            map,
            anchored: false,
            grain: 0,
            last_tick: 0,
            scheduled: 0,
            clamped: 0,
        }
    }

    /// The static geometry this clock schedules against.
    pub fn map(&self) -> &GrainMap {
        &self.map
    }

    /// Observes timestamp `t` with the stream currently at `position`
    /// (total packets recorded plus rotations executed) and returns the
    /// rotations that bring the stream to the schedule for `t`'s grain —
    /// `0` within a grain or while records run ahead of schedule.
    ///
    /// Non-monotone `t` is clamped to the newest timestamp observed
    /// (counted in [`clamped`](Self::clamped)); this method never panics.
    pub fn observe(&mut self, t: u64, position: u64) -> u64 {
        if !self.anchored {
            self.anchored = true;
            self.grain = self.map.grain_of(t);
            self.last_tick = t;
            self.scheduled = position;
            return 0;
        }
        let t = if t < self.last_tick {
            self.clamped += 1;
            self.last_tick
        } else {
            t
        };
        self.last_tick = t;
        let grain = self.map.grain_of(t);
        if grain > self.grain {
            let delta = grain - self.grain;
            self.grain = grain;
            // 128-bit so a far-future jump times a large ppg cannot wrap;
            // the saturation is harmless (skip clamps to a wholesale clear
            // long before u64::MAX rotations).
            let advance = (self.scheduled as u128)
                .saturating_add(delta as u128 * self.map.positions_per_grain as u128);
            let advance = u64::try_from(advance).unwrap_or(u64::MAX);
            // Re-anchor past any budget overrun: if records pushed the
            // stream beyond the old schedule, the new schedule starts at
            // the stream, so burst entries still age out one window after
            // their grain instead of stretching retention.
            self.scheduled = advance.max(position);
        }
        self.scheduled.saturating_sub(position)
    }

    /// First tick of the grain after the current one — the exclusive upper
    /// bound of "inside the current grain". Saturates at `u64::MAX` when
    /// the next boundary lies beyond the clock's range, which
    /// conservatively routes a `t == u64::MAX` packet through the full
    /// [`observe`](Self::observe) path instead of the in-grain fast path.
    #[inline]
    fn grain_end_tick(&self) -> u64 {
        self.grain
            .saturating_add(1)
            .saturating_mul(self.map.grain_span)
    }

    /// In-grain fast-path bookkeeping for the chunked ingest loop
    /// ([`TimedWindow::record_timed`]). Once a run's head packet has been
    /// recorded, the stream position is strictly ahead of the schedule and
    /// an in-grain timestamp never moves the schedule, so a full
    /// [`observe`](Self::observe) of any `t < grain_end_tick()` would
    /// return 0 rotations and touch nothing but the clamp-to-last
    /// bookkeeping — which is all that remains here. (A clamped `t` stays
    /// in-grain by construction: the clamp target `last_tick` is inside
    /// the current grain.)
    #[inline]
    fn note_in_grain(&mut self, t: u64) {
        if t < self.last_tick {
            self.clamped += 1;
        } else {
            self.last_tick = t;
        }
    }

    /// True once the first observation anchored the schedule.
    pub fn anchored(&self) -> bool {
        self.anchored
    }

    /// The newest (post-clamp) timestamp observed, or 0 before anchoring.
    pub fn last_tick(&self) -> u64 {
        self.last_tick
    }

    /// The absolute grain index of the newest observation.
    pub fn grain(&self) -> u64 {
        self.grain
    }

    /// Number of non-monotone timestamps clamped to the newest observation
    /// so far — the diagnostic counter of the clamp-to-last clock policy.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }
}

/// A time-based sliding window over any [`SlidingWindowEstimator`]: records
/// carry timestamps, and the wrapped estimator's count window is kept at
/// the position schedule of a [`GrainClock`].
///
/// The wrapper owns the estimator — all ingest must flow through
/// [`record_at`](Self::record_at) / [`record_batch_at`](Self::record_batch_at)
/// / [`advance_to`](Self::advance_to) so the wrapper's position mirror
/// stays true (it deliberately never calls the inner
/// [`processed`](WindowQuery::processed), which on the sharded engines
/// forces a snapshot publication). Read access goes through the wrapper's
/// own [`WindowQuery`] implementation, [`inner`](Self::inner), or
/// [`query_at`](Self::query_at) when the answer must reflect expiry up to
/// a timestamp with no packet attached.
///
/// The estimator must be configured with a count window of exactly
/// `map.window_positions()` — the wrapper cannot read it back through the
/// trait, so the constructor takes the geometry explicitly.
#[derive(Debug, Clone)]
pub struct TimedWindow<K: Clone, A: SlidingWindowEstimator<K>> {
    inner: A,
    clock: GrainClock,
    /// Mirror of the inner stream position: records plus rotations since
    /// construction, on top of whatever the estimator had processed before.
    position: u64,
    /// Advances whose rotation count covered the whole count window —
    /// i.e. idle gaps that land on the inner `skip`'s wholesale-clear
    /// fast path (diagnostic hook, in the style of the sharded engine's
    /// `freeze_rounds`).
    whole_window_advances: u64,
    _key: PhantomData<fn(K)>,
}

impl<K: Clone, A: SlidingWindowEstimator<K>> TimedWindow<K, A> {
    /// Wraps `inner` (configured with a count window of
    /// `map.window_positions()`) behind the grain-mapped time window `map`.
    ///
    /// The wrapper seeds its position mirror from `inner.processed()`, so a
    /// pre-loaded estimator may be wrapped; from then on every update must
    /// go through the wrapper.
    pub fn new(inner: A, map: GrainMap) -> Self {
        let position = inner.processed();
        TimedWindow {
            inner,
            clock: GrainClock::new(map),
            position,
            whole_window_advances: 0,
            _key: PhantomData,
        }
    }

    /// Convenience constructor building the [`GrainMap`] inline: a window
    /// of `window_ticks` clock ticks over `window_positions` stream
    /// positions, quantized to `grains` grains.
    pub fn with_grains(inner: A, window_ticks: u64, window_positions: u64, grains: u64) -> Self {
        Self::new(inner, GrainMap::new(window_ticks, window_positions, grains))
    }

    /// Advances the window to timestamp `t` without recording anything:
    /// executes the schedule's pending rotations through the inner
    /// closed-form [`skip`](SlidingWindowEstimator::skip). O(1) in the
    /// drained steady state; an idle gap outrunning the whole ring is a
    /// wholesale clear. Non-monotone `t` clamps (see [`GrainClock`]).
    pub fn advance_to(&mut self, t: u64) {
        let rotations = self.clock.observe(t, self.position);
        if rotations > 0 {
            if rotations >= self.clock.map().window_positions() {
                self.whole_window_advances += 1;
            }
            self.inner.skip(rotations);
            self.position += rotations;
        }
    }

    /// Records one packet of flow `key` arriving at timestamp `t`:
    /// [`advance_to`](Self::advance_to)`(t)` then one inner update.
    pub fn record_at(&mut self, key: K, t: u64) {
        self.advance_to(t);
        self.inner.update(key);
        self.position += 1;
    }

    /// Records a burst of packets all arriving at timestamp `t` through
    /// the inner batch fast path.
    pub fn record_batch_at(&mut self, keys: &[K], t: u64) {
        self.advance_to(t);
        self.inner.update_batch(keys);
        self.position += keys.len() as u64;
    }

    /// Replays a batch of individually timestamped packets (a recorded
    /// trace slice) as same-grain *runs*: each run is one closed-form
    /// [`skip`](SlidingWindowEstimator::skip) over the head's rotations
    /// followed by one plain
    /// [`update_batch`](SlidingWindowEstimator::update_batch) over the
    /// run's keys — no per-packet gap stamps at all. Equivalent to
    /// `record_at` per packet — bit for bit at τ = 1; at τ < 1 the
    /// rotation schedule is still identical but the batch path draws its
    /// geometric skips from the RNG in a different order than per-packet
    /// coins (statistically equivalent, exactly as for the untimed batch
    /// paths).
    ///
    /// The clock consult is hoisted out of the per-packet loop (PR 10):
    /// only the *head* of each in-grain run pays the full
    /// [`GrainClock::observe`] (boundary crossings, schedule re-anchoring,
    /// the wholesale-clear diagnostic). After a record the position is
    /// strictly ahead of the schedule, so every following timestamp inside
    /// the current grain rotates nothing — the tail of the run costs one
    /// grain-boundary comparison per packet plus the clamp-to-last
    /// bookkeeping, which is all a full `observe` would have done. The
    /// same hoist retires the PR 9 gap-stamp buffers: a whole run shares
    /// one rotation count, so `skip` + `update_batch` replaces the
    /// `update_batch_positioned` gap array (bit-for-bit — `skip` composes
    /// and consumes no randomness, and the batch sampler's persistent
    /// carry makes batch splits RNG-invariant; the differential proptests
    /// in `tests/time_windows.rs` pin both claims across grain boundaries
    /// and non-monotone clocks). Arrival clocks that cross a grain on
    /// every packet degrade to per-packet `skip`/`update_batch` calls —
    /// the cost `record_at` pays anyway.
    pub fn record_timed(&mut self, packets: &[(u64, K)]) {
        let mut keys = Vec::with_capacity(packets.len());
        let mut i = 0;
        while i < packets.len() {
            // Head of a run: the full clock consult.
            let (t, key) = &packets[i];
            let rotations = self.clock.observe(*t, self.position);
            if rotations >= self.clock.map().window_positions() {
                self.whole_window_advances += 1;
            }
            if rotations > 0 {
                self.inner.skip(rotations);
                self.position += rotations;
            }
            keys.clear();
            keys.push(key.clone());
            self.position += 1;
            i += 1;
            // Tail of the run: zero rotations until the grain ends.
            let end = self.clock.grain_end_tick();
            while i < packets.len() {
                let (t, key) = &packets[i];
                if *t >= end {
                    break;
                }
                self.clock.note_in_grain(*t);
                keys.push(key.clone());
                self.position += 1;
                i += 1;
            }
            self.inner.update_batch(&keys);
        }
    }

    /// Advances the window to `t`, then hands out the inner estimator for
    /// querying — the read path for "as of time `t`" answers when no packet
    /// arrived at `t` itself.
    pub fn query_at(&mut self, t: u64) -> &A {
        self.advance_to(t);
        &self.inner
    }

    /// The wrapped estimator, read-only (mutating it outside the wrapper
    /// would desynchronize the position mirror — use
    /// [`into_inner`](Self::into_inner) to take it back).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the estimator, consuming the time plane.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The grain clock (geometry, last timestamp, clamp diagnostics).
    pub fn clock(&self) -> &GrainClock {
        &self.clock
    }

    /// The wrapper's mirror of the inner stream position.
    pub fn position(&self) -> u64 {
        self.position
    }

    /// Number of advances whose rotation count covered the whole count
    /// window — each one lands on the inner `skip`'s O(1)/O(distinct)
    /// wholesale-clear path rather than walking positions. Diagnostic
    /// hook for asserting the idle-gap fast path in tests.
    pub fn whole_window_advances(&self) -> u64 {
        self.whole_window_advances
    }
}

impl<K: Clone, A: SlidingWindowEstimator<K>> WindowQuery<K> for TimedWindow<K, A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn estimate(&self, key: &K) -> f64 {
        self.inner.estimate(key)
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.inner.heavy_hitters(threshold)
    }

    fn processed(&self) -> u64 {
        self.inner.processed()
    }

    fn error_bound(&self) -> f64 {
        self.inner.error_bound()
    }

    fn untracked_estimate(&self) -> f64 {
        self.inner.untracked_estimate()
    }

    fn freeze_delta(&mut self) -> WindowPatch<K>
    where
        K: Eq + Hash,
    {
        self.inner.freeze_delta()
    }
}

/// A time-based sliding window over any [`HhhAlgorithm`]: the hierarchical
/// twin of [`TimedWindow`], sharing the same [`GrainClock`] schedule and
/// clock policy.
#[derive(Debug, Clone)]
pub struct TimedHhh<Hi: Hierarchy, A: HhhAlgorithm<Hi>> {
    inner: A,
    clock: GrainClock,
    position: u64,
    _hierarchy: PhantomData<fn(Hi)>,
}

impl<Hi: Hierarchy, A: HhhAlgorithm<Hi>> TimedHhh<Hi, A> {
    /// Wraps `inner` (count window of `map.window_positions()`) behind the
    /// grain-mapped time window `map`.
    pub fn new(inner: A, map: GrainMap) -> Self {
        let position = inner.processed();
        TimedHhh {
            inner,
            clock: GrainClock::new(map),
            position,
            _hierarchy: PhantomData,
        }
    }

    /// Advances the window to timestamp `t` without recording anything
    /// (see [`TimedWindow::advance_to`]).
    pub fn advance_to(&mut self, t: u64) {
        let rotations = self.clock.observe(t, self.position);
        if rotations > 0 {
            self.inner.skip(rotations);
            self.position += rotations;
        }
    }

    /// Records one packet arriving at timestamp `t`.
    pub fn record_at(&mut self, item: Hi::Item, t: u64) {
        self.advance_to(t);
        self.inner.update(item);
        self.position += 1;
    }

    /// Advances to `t`, then hands out the inner algorithm for querying.
    pub fn query_at(&mut self, t: u64) -> &A {
        self.advance_to(t);
        &self.inner
    }

    /// The wrapped algorithm, read-only.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Unwraps the algorithm, consuming the time plane.
    pub fn into_inner(self) -> A {
        self.inner
    }

    /// The grain clock (geometry, last timestamp, clamp diagnostics).
    pub fn clock(&self) -> &GrainClock {
        &self.clock
    }

    /// The wrapper's mirror of the inner stream position.
    pub fn position(&self) -> u64 {
        self.position
    }
}

impl<Hi: Hierarchy, A: HhhAlgorithm<Hi>> HhhQuery<Hi> for TimedHhh<Hi, A> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.inner.estimate(prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.inner.output(theta)
    }

    fn processed(&self) -> u64 {
        self.inner.processed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wcss::Wcss;
    use memento_sketches::ExactWindow;

    #[test]
    fn map_geometry_rounds_up() {
        let map = GrainMap::new(100, 1_000, 8);
        assert_eq!(map.grain_span(), 13); // ⌈100/8⌉
        assert_eq!(map.grains(), 8); // ⌈100/13⌉
        assert_eq!(map.positions_per_grain(), 125);
        // D < g collapses to 1-tick grains with fewer effective grains.
        let tiny = GrainMap::new(5, 100, 64);
        assert_eq!(tiny.grain_span(), 1);
        assert_eq!(tiny.grains(), 5);
        assert_eq!(tiny.positions_per_grain(), 20);
    }

    #[test]
    fn idle_grain_boundaries_schedule_full_budget() {
        let map = GrainMap::new(80, 800, 8); // 10-tick grains, 100 positions
        let mut clock = GrainClock::new(map);
        assert_eq!(clock.observe(5, 0), 0); // anchor
        assert_eq!(clock.observe(7, 0), 0); // same grain
        assert_eq!(clock.observe(15, 0), 100); // one boundary
        assert_eq!(clock.observe(35, 100), 200); // two more boundaries
    }

    #[test]
    fn records_consume_the_grain_budget() {
        let map = GrainMap::new(80, 800, 8);
        let mut clock = GrainClock::new(map);
        clock.observe(5, 0);
        // 40 packets recorded inside the grain: the next boundary owes only
        // the remainder of the 100-position budget.
        assert_eq!(clock.observe(15, 40), 60);
    }

    #[test]
    fn burst_overrun_reanchors_the_schedule() {
        let map = GrainMap::new(80, 800, 8);
        let mut clock = GrainClock::new(map);
        clock.observe(5, 0);
        // 1000 packets in one grain blow way past the 100-position budget:
        // the next boundary owes nothing and the schedule restarts at the
        // stream position instead of leaving it 900 positions in debt.
        assert_eq!(clock.observe(15, 1_000), 0);
        assert_eq!(clock.observe(25, 1_000), 100);
    }

    #[test]
    fn clamp_to_last_never_moves_backwards() {
        let map = GrainMap::new(100, 100, 10);
        let mut clock = GrainClock::new(map);
        clock.observe(500, 0);
        let forward = clock.observe(520, 0);
        assert!(forward > 0);
        // A far-backward timestamp is treated as arriving at t = 520.
        assert_eq!(clock.observe(3, forward), 0);
        assert_eq!(clock.clamped(), 1);
        assert_eq!(clock.last_tick(), 520);
    }

    #[test]
    fn timed_window_expires_after_one_window_of_idle_time() {
        let window = 1_000;
        let mut timed =
            TimedWindow::with_grains(ExactWindow::<u64>::new(window), 50, window as u64, 8);
        for i in 0..200u64 {
            timed.record_at(i % 4, 10);
        }
        assert!(timed.estimate(&1) > 0.0);
        // Advance two full windows of idle time: everything must be gone,
        // and the stream must have rotated at least a whole window.
        timed.advance_to(10 + 120);
        assert_eq!(timed.estimate(&1), 0.0);
        assert!(timed.position() >= 200 + window as u64);
    }

    #[test]
    fn record_timed_equals_per_packet_records() {
        // τ = 1 (WCSS mode): the batched and per-packet record paths are
        // bit-for-bit identical. (At τ < 1 they are only statistically
        // equivalent — geometric batch sampling draws the RNG differently
        // from per-packet coins, exactly as for the untimed batch paths.)
        let window = 500usize;
        let mut batched =
            TimedWindow::with_grains(Wcss::<u64>::new(32, window), 200, window as u64, 16);
        let mut one_by_one =
            TimedWindow::with_grains(Wcss::<u64>::new(32, window), 200, window as u64, 16);
        let packets: Vec<(u64, u64)> = (0..3_000u64).map(|i| (i / 3, i % 17)).collect();
        batched.record_timed(&packets);
        for &(t, key) in &packets {
            one_by_one.record_at(key, t);
        }
        for key in 0..17u64 {
            assert_eq!(
                batched.estimate(&key).to_bits(),
                one_by_one.estimate(&key).to_bits()
            );
        }
        assert_eq!(batched.position(), one_by_one.position());
    }

    #[test]
    fn query_at_reflects_expiry_without_a_packet() {
        let mut timed = TimedWindow::with_grains(ExactWindow::<u64>::new(100), 100, 100, 10);
        timed.record_batch_at(&[7, 7, 7], 0);
        assert_eq!(timed.query_at(50).estimate(&7), 3.0);
        assert_eq!(timed.query_at(5_000).estimate(&7), 0.0);
    }
}
