//! Error types for configuration validation.

use std::fmt;

/// Error returned when an algorithm configuration is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The window size must be positive and at least as large as one block.
    InvalidWindow(String),
    /// The number of counters (or the error parameter that determines it)
    /// is out of range.
    InvalidCounters(String),
    /// The sampling probability is out of `(0, 1]`.
    InvalidTau(f64),
    /// The confidence parameter is out of `(0, 1)`.
    InvalidDelta(f64),
    /// The error parameter is out of `(0, 1)`.
    InvalidEpsilon(f64),
    /// The threshold parameter is out of `(0, 1)`.
    InvalidThreshold(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::InvalidWindow(msg) => write!(f, "invalid window: {msg}"),
            ConfigError::InvalidCounters(msg) => write!(f, "invalid counters: {msg}"),
            ConfigError::InvalidTau(tau) => {
                write!(f, "sampling probability must be in (0, 1], got {tau}")
            }
            ConfigError::InvalidDelta(d) => {
                write!(f, "confidence parameter must be in (0, 1), got {d}")
            }
            ConfigError::InvalidEpsilon(e) => {
                write!(f, "error parameter must be in (0, 1), got {e}")
            }
            ConfigError::InvalidThreshold(t) => {
                write!(f, "threshold must be in (0, 1), got {t}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ConfigError::InvalidTau(1.7);
        assert!(e.to_string().contains("1.7"));
        let e = ConfigError::InvalidWindow("zero".into());
        assert!(e.to_string().contains("zero"));
        let e = ConfigError::InvalidEpsilon(0.0);
        assert!(e.to_string().contains('0'));
    }
}
