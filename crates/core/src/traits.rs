//! The workspace's unified algorithm interfaces.
//!
//! The paper's whole evaluation is comparative — Memento vs. WCSS vs.
//! MST/window-MST vs. RHHH vs. exact oracles — yet each algorithm grew its
//! own ad-hoc `update`/`estimate`/`output` surface in the seed code, so every
//! consumer (the bench harness, the detection disciplines, the network-wide
//! simulator) hand-rolled per-algorithm driver loops. These traits remove
//! that duplication, in the spirit of WCSS's "one summary, many frontends"
//! framing (Infocom 2016):
//!
//! * [`SlidingWindowEstimator`] — per-flow frequency estimation over a
//!   stream, with a provided [`update_batch`](SlidingWindowEstimator::update_batch)
//!   that concrete types can specialize (Memento replaces per-packet coin
//!   flips with geometric skip sampling, see
//!   [`Memento::update_batch`](crate::Memento::update_batch));
//! * [`HhhAlgorithm`] — hierarchical heavy hitters over a [`Hierarchy`].
//!
//! Since PR 7 both are **ingest** traits layered over the read-only query
//! traits in [`crate::query`]: `SlidingWindowEstimator<K>` extends
//! [`WindowQuery<K>`] and `HhhAlgorithm<Hi>` extends [`HhhQuery<Hi>`]. The
//! query half needs only `&self` and is also implemented by frozen summaries
//! and the sharded engines' snapshot readers, so read-side consumers (ACL
//! checks, controllers, dashboards) can be written against `&dyn
//! WindowQuery<K>` and never see a mutating method.
//!
//! All four traits are object safe: consumers can hold
//! `Vec<Box<dyn SlidingWindowEstimator<u64>>>` (as the workspace's
//! trait-object smoke test does) or take `&mut dyn HhhAlgorithm<_>`.

use std::collections::HashSet;
use std::hash::Hash;

use memento_hierarchy::Hierarchy;
use memento_sketches::fasthash::FastBuildHasher;
use memento_sketches::{ExactWindow, SpaceSaving};

pub use crate::query::{FrozenHhh, FrozenWindow, HhhQuery, WindowQuery};

use crate::delta::WindowPatch;
use crate::h_memento::HMemento;
use crate::memento::Memento;
use crate::wcss::Wcss;

/// A streaming per-flow frequency estimator, usually over a sliding window.
///
/// This is the *ingest* half of the interface — everything that mutates the
/// state. The query half ([`estimate`](WindowQuery::estimate),
/// [`heavy_hitters`](WindowQuery::heavy_hitters),
/// [`processed`](WindowQuery::processed)) lives in the [`WindowQuery`]
/// supertrait so it can be shared with frozen snapshots and readers.
///
/// Implementors with interval (landmark-window) semantics — [`SpaceSaving`]
/// counts everything since its last flush — document so; the trait's
/// contract is about the shared driver surface, which the paper's evaluation
/// uses across both families.
pub trait SlidingWindowEstimator<K: Clone>: WindowQuery<K> {
    /// Processes one packet of flow `key`.
    fn update(&mut self, key: K);

    /// Processes a batch of packets.
    ///
    /// The provided implementation is the per-packet loop; implementors with
    /// a cheaper bulk path (batched sampling, amortized bookkeeping)
    /// override it. Calling `update_batch` must be statistically equivalent
    /// to calling [`update`](Self::update) on each key in order — exactly
    /// equivalent when the implementor is deterministic.
    fn update_batch(&mut self, keys: &[K]) {
        for key in keys {
            self.update(key.clone());
        }
    }

    /// Advances the measurement window over `n` packets observed
    /// *elsewhere* — another shard of a hash-partitioned deployment, another
    /// measurement point of a network-wide one — without recording them.
    ///
    /// This is the D-Memento-style bulk window update (Memento paper, §6)
    /// that lets a partitioned instance keep its window anchored at the
    /// *global* stream position: after `skip(n)`, queries refer to the last
    /// `W` packets of the combined stream, of which this instance recorded
    /// only its own share. Implementations must be equivalent to `n`
    /// unrecorded single-packet window advances but are expected to run in
    /// time **sublinear in `n`** — the workspace's window implementations
    /// compute block rotations, frame flushes and expiry drains in closed
    /// form (Memento/WCSS) or evict by position range (exact windows), so
    /// the cost of a skip is independent of `n` and `O(1)` once the expired
    /// state is drained.
    ///
    /// Interval (landmark-window) estimators have no window to advance and
    /// implement this as a documented no-op; they must also opt out of
    /// [`mergeable`](Self::mergeable) so sharded-window engines refuse them
    /// at construction.
    ///
    /// # Contract: `skip(n)` ≡ `n` unrecorded window advances
    ///
    /// ```
    /// use memento_core::traits::{SlidingWindowEstimator, WindowQuery};
    /// use memento_core::Memento;
    ///
    /// // Two identical instances over a 60-packet window (τ = 1: WCSS
    /// // mode, fully deterministic).
    /// let mut bulk: Memento<u64> = Memento::new(6, 60, 1.0, 7);
    /// let mut per_packet: Memento<u64> = Memento::new(6, 60, 1.0, 7);
    /// for i in 0..45u64 {
    ///     bulk.update(i % 3);
    ///     per_packet.update(i % 3);
    /// }
    /// // 40 packets observed elsewhere: one closed-form skip on the left,
    /// // 40 per-packet window advances on the right.
    /// SlidingWindowEstimator::skip(&mut bulk, 40);
    /// for _ in 0..40 {
    ///     per_packet.window_update();
    /// }
    /// for key in 0..3u64 {
    ///     assert_eq!(
    ///         WindowQuery::estimate(&bulk, &key),
    ///         WindowQuery::estimate(&per_packet, &key),
    ///     );
    /// }
    /// assert_eq!(bulk.processed(), per_packet.processed());
    /// ```
    fn skip(&mut self, n: u64);

    /// Processes a *gap-stamped* batch: before each `keys[i]`, the window
    /// advances over `gaps[i]` packets recorded elsewhere (the
    /// `memento-shard` router stamps every key with the number of packets
    /// routed to other shards since this shard's previous key, so a shard
    /// replays its exact global positions).
    ///
    /// The provided implementation **coalesces the stamps into runs**: each
    /// run of zero-gap keys (consecutive own packets) becomes one
    /// [`update_batch`](Self::update_batch) call — inheriting the
    /// implementor's batch fast path — and each positive gap (a run of
    /// foreign packets) becomes exactly one closed-form
    /// [`skip`](Self::skip). The observable behaviour is that of the
    /// per-key interleaving `skip(gaps[i]); update(keys[i])`, which any
    /// override must preserve; implementors with a cheaper fused path
    /// (Memento folds the gaps into its geometric-skip sampling walk)
    /// override it.
    ///
    /// # Panics
    /// Implementations may assume and assert `gaps.len() == keys.len()`.
    fn update_batch_positioned(&mut self, gaps: &[u64], keys: &[K]) {
        assert_eq!(gaps.len(), keys.len(), "one gap stamp per key");
        let mut run_start = 0usize;
        for (i, &gap) in gaps.iter().enumerate() {
            if gap > 0 {
                if run_start < i {
                    self.update_batch(&keys[run_start..i]);
                }
                self.skip(gap);
                run_start = i;
            }
        }
        if run_start < keys.len() {
            self.update_batch(&keys[run_start..]);
        }
    }

    /// Approximate heap footprint of the estimator state in bytes.
    fn space_bytes(&self) -> usize;

    /// True when instances of this estimator running over *disjoint key
    /// partitions* of one stream answer the global window queries by simple
    /// merging, **provided every instance keeps its window at the global
    /// stream position** (each partition advances over the other
    /// partitions' packets via [`skip`](Self::skip)) — a flow's estimate is
    /// then the owning partition's estimate and the global heavy-hitter set
    /// is the union of per-partition sets. Simple merging alone does *not*
    /// answer global-window queries: a partition whose window counts only
    /// its own last `W/N` packets covers a skewed, flow-dependent stretch
    /// of the global stream. This is the mergeable-sliding-window property
    /// the heavy-hitter literature (Braverman et al.) assumes for
    /// partitioned deployments, and what the `memento-shard` engine
    /// requires of the estimators it scales across cores. An estimator
    /// qualifies when its state is per-flow counts plus a stream position
    /// it can advance via `skip`; interval estimators ([`SpaceSaving`]) and
    /// implementors whose queries depend on cross-flow global state must
    /// opt out so sharded-window engines can refuse them at construction.
    fn mergeable(&self) -> bool {
        true
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for Memento<K> {
    fn name(&self) -> &'static str {
        "memento"
    }

    fn estimate(&self, key: &K) -> f64 {
        Memento::estimate(self, key)
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        Memento::heavy_hitters(self, threshold)
    }

    fn processed(&self) -> u64 {
        Memento::processed(self)
    }

    fn error_bound(&self) -> f64 {
        // ε_a·W from the counters (Theorem 5.2's algorithm error, one-sided
        // slack included) plus a high-probability bound on the sampling
        // noise, which scales like √(W/τ).
        let algo = 4.0 * self.window() as f64 / self.counters() as f64;
        let sampling = if self.tau() >= 1.0 {
            0.0
        } else {
            4.0 * (self.window() as f64 / self.tau()).sqrt()
        };
        algo + sampling
    }

    /// The state-dependent absent-key slack `(2·block + y_min)·scale`
    /// ([`Memento::untracked_estimate`]).
    fn untracked_estimate(&self) -> f64 {
        Memento::untracked_estimate(self)
    }

    /// O(dirty) incremental freeze via the journaled overflow table and
    /// in-frame summary ([`Memento::freeze_patch`]).
    fn freeze_delta(&mut self) -> WindowPatch<K> {
        let mut patch = Memento::freeze_patch(self);
        patch.error_bound = WindowQuery::error_bound(self);
        patch
    }
}

impl<K: Eq + Hash + Clone> SlidingWindowEstimator<K> for Memento<K> {
    #[inline]
    fn update(&mut self, key: K) {
        Memento::update(self, key);
    }

    /// The τ-sampling hot path: geometric skips over the batch (§5).
    #[inline]
    fn update_batch(&mut self, keys: &[K]) {
        Memento::update_batch(self, keys);
    }

    /// Closed-form bulk window advance — rotation counting plus wholesale
    /// block drains, sublinear in `n` ([`Memento::skip`]).
    #[inline]
    fn skip(&mut self, n: u64) {
        Memento::skip(self, n);
    }

    /// The fused gap-aware τ-sampling path
    /// ([`Memento::update_batch_positioned`]).
    #[inline]
    fn update_batch_positioned(&mut self, gaps: &[u64], keys: &[K]) {
        Memento::update_batch_positioned(self, gaps, keys);
    }

    fn space_bytes(&self) -> usize {
        Memento::space_bytes(self)
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for Wcss<K> {
    fn name(&self) -> &'static str {
        "wcss"
    }

    fn estimate(&self, key: &K) -> f64 {
        Wcss::estimate(self, key)
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        Wcss::heavy_hitters(self, threshold)
    }

    fn processed(&self) -> u64 {
        Wcss::processed(self)
    }

    fn error_bound(&self) -> f64 {
        4.0 * self.window() as f64 / self.counters() as f64
    }

    /// Inherited from the underlying deterministic Memento: the τ = 1
    /// absent-key slack.
    fn untracked_estimate(&self) -> f64 {
        self.as_memento().untracked_estimate()
    }

    /// Delegates to the underlying Memento's O(dirty) incremental freeze,
    /// restamped with WCSS's deterministic error bound.
    fn freeze_delta(&mut self) -> WindowPatch<K> {
        let mut patch = self.as_memento_mut().freeze_patch();
        patch.error_bound = WindowQuery::error_bound(self);
        patch
    }
}

impl<K: Eq + Hash + Clone> SlidingWindowEstimator<K> for Wcss<K> {
    #[inline]
    fn update(&mut self, key: K) {
        Wcss::update(self, key);
    }

    /// WCSS is Memento with τ = 1: the batch path degenerates to per-packet
    /// Full updates and is exactly equivalent to repeated `update` (asserted
    /// by the workspace's property tests).
    #[inline]
    fn update_batch(&mut self, keys: &[K]) {
        self.as_memento_mut().update_batch(keys);
    }

    /// Closed-form bulk window advance — rotation counting plus wholesale
    /// block drains, sublinear in `n` ([`Wcss::skip`]).
    #[inline]
    fn skip(&mut self, n: u64) {
        Wcss::skip(self, n);
    }

    /// The τ = 1 case of the fused gap-aware path: every own key is a Full
    /// update, every gap a bulk advance.
    #[inline]
    fn update_batch_positioned(&mut self, gaps: &[u64], keys: &[K]) {
        self.as_memento_mut().update_batch_positioned(gaps, keys);
    }

    fn space_bytes(&self) -> usize {
        self.as_memento().space_bytes()
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for ExactWindow<K> {
    fn name(&self) -> &'static str {
        "exact-window"
    }

    fn estimate(&self, key: &K) -> f64 {
        self.query(key) as f64
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        ExactWindow::heavy_hitters(self, threshold.max(0.0).ceil() as u64)
            .into_iter()
            .map(|(k, c)| (k, c as f64))
            .collect()
    }

    fn processed(&self) -> u64 {
        ExactWindow::processed(self)
    }

    fn error_bound(&self) -> f64 {
        0.0
    }

    /// O(dirty) incremental freeze over the journaled count table: flows at
    /// dirty slots are re-emitted with their slot as the tie-breaking rank
    /// (the live heavy-hitter sort is a stable descending pass over the
    /// table's slot order), removed flows are dropped. Wholesale clears
    /// (`skip` past the whole window) degrade to a rebuild.
    fn freeze_delta(&mut self) -> WindowPatch<K> {
        if !self.journal_enabled() {
            self.enable_journal();
        }
        let drain = self.drain_journal().expect("journal enabled above");
        let processed = ExactWindow::processed(self);
        if drain.all_dirty {
            let mut updated = Vec::new();
            for (k, c) in ExactWindow::iter(self) {
                let rank = self.slot_of(k).expect("iterated key is present") as u64;
                updated.push((k.clone(), c as f64, rank));
            }
            return WindowPatch {
                rebuild: true,
                updated,
                removed: Vec::new(),
                untracked: 0.0,
                processed,
                error_bound: 0.0,
            };
        }
        let mut candidates: HashSet<K, FastBuildHasher> = HashSet::default();
        for slot in drain.dirty_slots {
            if let Some((k, _)) = self.slot_entry(slot) {
                candidates.insert(k.clone());
            }
        }
        candidates.extend(drain.removed);
        let mut updated = Vec::new();
        let mut removed = Vec::new();
        for k in candidates {
            match self.slot_of(&k) {
                Some(slot) => {
                    let est = self.query(&k) as f64;
                    updated.push((k, est, slot as u64));
                }
                None => removed.push(k),
            }
        }
        WindowPatch {
            rebuild: false,
            updated,
            removed,
            untracked: 0.0,
            processed,
            error_bound: 0.0,
        }
    }
}

impl<K: Eq + Hash + Clone> SlidingWindowEstimator<K> for ExactWindow<K> {
    #[inline]
    fn update(&mut self, key: K) {
        self.add(key);
    }

    /// Global-position range eviction: the advance expires exactly the
    /// recorded items that fall out of the last `W` stream positions, by
    /// binary-searched prefix drain or whole-ring clear
    /// ([`ExactWindow::skip`]).
    #[inline]
    fn skip(&mut self, n: u64) {
        ExactWindow::skip(self, n);
    }

    fn space_bytes(&self) -> usize {
        ExactWindow::space_bytes(self)
    }
}

impl<K: Eq + Hash + Clone> WindowQuery<K> for SpaceSaving<K> {
    fn name(&self) -> &'static str {
        "space-saving"
    }

    fn estimate(&self, key: &K) -> f64 {
        self.query(key) as f64
    }

    fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        SpaceSaving::heavy_hitters(self, threshold.max(0.0).ceil() as u64)
            .into_iter()
            .map(|c| (c.key, c.count as f64))
            .collect()
    }

    fn processed(&self) -> u64 {
        SpaceSaving::processed(self)
    }

    fn error_bound(&self) -> f64 {
        self.processed() as f64 / self.counters() as f64
    }

    /// The fill-state-dependent absent-key answer: the minimum summary
    /// count once the summary is full ([`SpaceSaving::absent_query`]).
    fn untracked_estimate(&self) -> f64 {
        self.absent_query() as f64
    }

    /// O(dirty) incremental freeze over the journaled stream summary:
    /// flows at dirty slots are re-emitted with their summary slot as the
    /// tie-breaking rank (the live heavy-hitter sort is a stable descending
    /// pass over the summary's slot order), evicted flows are dropped.
    /// A flush (`clear`) degrades to a rebuild.
    fn freeze_delta(&mut self) -> WindowPatch<K> {
        if !self.journal_enabled() {
            self.enable_journal();
        }
        let drain = self.drain_journal().expect("journal enabled above");
        let untracked = self.absent_query() as f64;
        let processed = SpaceSaving::processed(self);
        let error_bound = WindowQuery::error_bound(self);
        if drain.cleared {
            let mut updated = Vec::new();
            for snap in self.snapshot() {
                let rank = self.slot_of(&snap.key).expect("snapshotted key is present") as u64;
                updated.push((snap.key, snap.count as f64, rank));
            }
            return WindowPatch {
                rebuild: true,
                updated,
                removed: Vec::new(),
                untracked,
                processed,
                error_bound,
            };
        }
        let mut candidates: HashSet<K, FastBuildHasher> = HashSet::default();
        for slot in drain.dirty_slots {
            if let Some((k, _, _)) = self.slot_entry(slot) {
                candidates.insert(k.clone());
            }
        }
        candidates.extend(drain.evicted);
        let mut updated = Vec::new();
        let mut removed = Vec::new();
        for k in candidates {
            match self.slot_of(&k) {
                Some(slot) => {
                    let est = self.query(&k) as f64;
                    updated.push((k, est, slot as u64));
                }
                None => removed.push(k),
            }
        }
        WindowPatch {
            rebuild: false,
            updated,
            removed,
            untracked,
            processed,
            error_bound,
        }
    }
}

/// Interval (landmark-window) semantics: counts everything since creation or
/// the last flush. Included so interval baselines run under the same generic
/// drivers the paper's §3 comparison needs.
impl<K: Eq + Hash + Clone> SlidingWindowEstimator<K> for SpaceSaving<K> {
    #[inline]
    fn update(&mut self, key: K) {
        self.add(key);
    }

    /// The prefetch-pipelined batch path ([`SpaceSaving::add_batch`]):
    /// exactly equivalent to per-key `add`, with the index misses of the
    /// batch overlapped.
    #[inline]
    fn update_batch(&mut self, keys: &[K]) {
        self.add_batch(keys);
    }

    /// No-op: an interval summary counts everything since its last flush
    /// and has no sliding window to advance — packets observed elsewhere
    /// are simply outside its interval.
    fn skip(&mut self, _n: u64) {}

    fn space_bytes(&self) -> usize {
        SpaceSaving::space_bytes(self)
    }

    /// Interval semantics opt out explicitly: `skip` is a no-op here, so a
    /// Space-Saving instance cannot keep a partition's window at the global
    /// stream position and must not be placed behind a sharded-window
    /// engine (the engines refuse it at construction).
    fn mergeable(&self) -> bool {
        false
    }
}

/// A hierarchical heavy-hitters algorithm over a [`Hierarchy`].
///
/// The ingest half; the query half ([`estimate`](HhhQuery::estimate),
/// [`output`](HhhQuery::output), [`processed`](HhhQuery::processed)) lives
/// in the [`HhhQuery`] supertrait shared with frozen snapshots and readers.
pub trait HhhAlgorithm<Hi: Hierarchy>: HhhQuery<Hi> {
    /// Processes one packet.
    fn update(&mut self, item: Hi::Item);

    /// Processes a batch of packets (provided: the per-packet loop).
    fn update_batch(&mut self, items: &[Hi::Item]) {
        for &item in items {
            self.update(item);
        }
    }

    /// Advances the measurement window over `n` packets observed elsewhere
    /// without recording them (see
    /// [`SlidingWindowEstimator::skip`]): the D-Memento-style bulk window
    /// update that keeps a partitioned instance's window at the global
    /// stream position, required to run in time sublinear in `n`. Interval
    /// algorithms (MST, RHHH) have no window to advance and implement this
    /// as a documented no-op.
    ///
    /// # Contract: `skip(n)` ≡ `n` unrecorded window advances
    ///
    /// ```
    /// use memento_core::traits::{HhhAlgorithm, HhhQuery};
    /// use memento_core::HMemento;
    /// use memento_hierarchy::{Prefix1D, SrcHierarchy};
    ///
    /// // Two identical instances (τ = 1: deterministic level sampling
    /// // shares the seeded RNG, identical on both sides).
    /// let mut bulk = HMemento::new(SrcHierarchy, 64, 60, 1.0, 0.01, 3);
    /// let mut per_packet = HMemento::new(SrcHierarchy, 64, 60, 1.0, 0.01, 3);
    /// for i in 0..45u32 {
    ///     bulk.update(u32::from_be_bytes([10, 0, 0, (i % 3) as u8]));
    ///     per_packet.update(u32::from_be_bytes([10, 0, 0, (i % 3) as u8]));
    /// }
    /// // 40 packets observed elsewhere: one closed-form skip on the left,
    /// // 40 per-packet window advances on the right.
    /// HhhAlgorithm::<SrcHierarchy>::skip(&mut bulk, 40);
    /// for _ in 0..40 {
    ///     per_packet.window_update();
    /// }
    /// let subnet = Prefix1D::new(u32::from_be_bytes([10, 0, 0, 0]), 8);
    /// assert_eq!(
    ///     HhhQuery::<SrcHierarchy>::estimate(&bulk, &subnet),
    ///     HhhQuery::<SrcHierarchy>::estimate(&per_packet, &subnet),
    /// );
    /// assert_eq!(bulk.processed(), per_packet.processed());
    /// ```
    fn skip(&mut self, n: u64);

    /// Processes a gap-stamped batch: before each `items[i]`, the window
    /// advances over `gaps[i]` packets recorded elsewhere (see
    /// [`SlidingWindowEstimator::update_batch_positioned`]). Like the
    /// estimator-side default, the provided implementation coalesces the
    /// stamps into runs: one [`update_batch`](Self::update_batch) per run
    /// of zero-gap items, one closed-form [`skip`](Self::skip) per
    /// positive gap.
    ///
    /// # Panics
    /// Implementations may assume and assert `gaps.len() == items.len()`.
    fn update_batch_positioned(&mut self, gaps: &[u64], items: &[Hi::Item]) {
        assert_eq!(gaps.len(), items.len(), "one gap stamp per item");
        let mut run_start = 0usize;
        for (i, &gap) in gaps.iter().enumerate() {
            if gap > 0 {
                if run_start < i {
                    self.update_batch(&items[run_start..i]);
                }
                self.skip(gap);
                run_start = i;
            }
        }
        if run_start < items.len() {
            self.update_batch(&items[run_start..]);
        }
    }

    /// Approximate heap footprint of the algorithm state in bytes.
    fn space_bytes(&self) -> usize;

    /// True for interval (landmark) algorithms — MST, RHHH — whose
    /// measurement restarts at interval boundaries; sliding-window
    /// algorithms return `false` (the default). Generic drivers use this to
    /// apply the paper's §3 interval discipline (reset every `W` packets)
    /// without knowing concrete types.
    fn is_interval(&self) -> bool {
        false
    }

    /// Starts a new measurement interval; a no-op for sliding-window
    /// algorithms.
    fn reset_interval(&mut self) {}

    /// True when instances over *disjoint item partitions* of one stream
    /// merge into the global answer by summing per-partition prefix
    /// estimates and unioning per-partition HHH sets, **provided every
    /// instance keeps its window at the global stream position** via
    /// [`skip`](Self::skip) (see [`SlidingWindowEstimator::mergeable`]; for
    /// hierarchies the merge is summation because one prefix aggregates
    /// items from every partition). Required by the `memento-shard` engine.
    fn mergeable(&self) -> bool {
        true
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for HMemento<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "h-memento"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        HMemento::estimate(self, prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        HMemento::output(self, theta)
    }

    fn processed(&self) -> u64 {
        HMemento::processed(self)
    }

    /// Captures the candidate set with its frequency bounds plus the
    /// `OUTPUT` parameters (`W`, sampling slack), preserving the live
    /// candidate enumeration order so the frozen `output` is bit-for-bit
    /// equal to the live one at any threshold.
    fn freeze(&self) -> Option<FrozenHhh<Hi>> {
        let memento = self.as_memento();
        let candidates = memento.tracked_keys();
        let bounds = candidates
            .iter()
            .map(|p| (*p, (memento.upper_bound(p), memento.lower_bound(p))))
            .collect();
        Some(FrozenHhh::capture(
            HhhQuery::<Hi>::name(self),
            self.hierarchy().clone(),
            self.window(),
            self.sampling_slack(),
            candidates,
            bounds,
            // Absent prefixes get the fill-state-dependent upper slack and
            // a zero lower bound (no overflows recorded).
            memento.untracked_estimate(),
            0.0,
            HMemento::processed(self),
        ))
    }
}

impl<Hi: Hierarchy> HhhAlgorithm<Hi> for HMemento<Hi>
where
    Hi::Prefix: Hash,
{
    #[inline]
    fn update(&mut self, item: Hi::Item) {
        HMemento::update(self, item);
    }

    /// Bulk window advance through the single shared prefix-keyed Memento
    /// ([`HMemento::skip`]).
    #[inline]
    fn skip(&mut self, n: u64) {
        HMemento::skip(self, n);
    }

    fn space_bytes(&self) -> usize {
        self.as_memento().space_bytes()
    }
}
