//! Differential property tests for the PR 6 batched-prefetch pipeline.
//!
//! The pipelined [`Memento::update_batch`] / `update_batch_positioned`
//! hoist all geometric-skip draws into a first pass (so the surviving
//! keys can be hashed and prefetched ahead of the probes) and replay the
//! window advances and Full updates in stream order in a second pass.
//! Because the skip sampler never reads keys or summary state, and the
//! summary never reads the sampler, the two-pass form must be
//! **bit-for-bit** identical to the seed-era per-key loop — same RNG
//! stream, same advances, same Full updates, same estimates.
//!
//! These tests pin that equivalence on arbitrary streams: random key
//! mixes, random chunk sizes (so batches straddle block and frame
//! boundaries), every τ regime (WCSS τ = 1, moderate and aggressive
//! sampling), and — for the positioned path — random inter-arrival gaps.

use memento_core::{Memento, SlidingWindowEstimator, Wcss};
use proptest::prelude::*;

/// The τ regimes under test: WCSS mode, moderate and aggressive sampling.
const TAUS: [f64; 3] = [1.0, 0.25, 1.0 / 16.0];

/// Assert that two Mementos are observationally identical, bit for bit.
fn assert_same_state(pipelined: &Memento<u64>, reference: &Memento<u64>, keyspace: u64) {
    assert_eq!(pipelined.processed(), reference.processed(), "processed");
    assert_eq!(
        pipelined.full_updates(),
        reference.full_updates(),
        "full_updates"
    );
    assert_eq!(
        pipelined.tracked_overflows(),
        reference.tracked_overflows(),
        "tracked_overflows"
    );
    for key in 0..keyspace {
        assert_eq!(
            pipelined.estimate(&key).to_bits(),
            reference.estimate(&key).to_bits(),
            "estimates diverge for key {key}"
        );
    }
}

proptest! {
    /// Pipelined `update_batch` ≡ the seed per-key loop
    /// (`update_batch_reference`), bit for bit, in every τ regime.
    #[test]
    fn pipelined_batch_equals_reference(
        keys in prop::collection::vec(0u64..48, 0..1500),
        chunk in 1usize..400,
        tau_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let tau = TAUS[tau_idx];
        let mut pipelined = Memento::new(24, 900, tau, seed.wrapping_add(1));
        let mut reference = Memento::new(24, 900, tau, seed.wrapping_add(1));
        for part in keys.chunks(chunk) {
            pipelined.update_batch(part);
            reference.update_batch_reference(part);
        }
        assert_same_state(&pipelined, &reference, 48);
    }

    /// Pipelined `update_batch_positioned` ≡ the seed fused gap+key loop
    /// (`update_batch_positioned_reference`), bit for bit, with random
    /// inter-arrival gaps straddling block and frame boundaries.
    #[test]
    fn pipelined_positioned_batch_equals_reference(
        stream in prop::collection::vec((0u64..9, 0u64..48), 0..1200),
        chunk in 1usize..300,
        tau_idx in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let tau = TAUS[tau_idx];
        let mut pipelined = Memento::new(24, 900, tau, seed.wrapping_add(1));
        let mut reference = Memento::new(24, 900, tau, seed.wrapping_add(1));
        let gaps: Vec<u64> = stream.iter().map(|&(g, _)| g).collect();
        let keys: Vec<u64> = stream.iter().map(|&(_, k)| k).collect();
        for start in (0..stream.len()).step_by(chunk) {
            let end = (start + chunk).min(stream.len());
            pipelined.update_batch_positioned(&gaps[start..end], &keys[start..end]);
            reference.update_batch_positioned_reference(&gaps[start..end], &keys[start..end]);
        }
        assert_same_state(&pipelined, &reference, 48);
    }

    /// WCSS rides the same τ = 1 pipeline: its batched updates must match
    /// the seed per-packet loop exactly (every packet is a Full update,
    /// so this exercises pure prefetch-lookahead reordering).
    #[test]
    fn wcss_pipelined_batch_equals_per_packet(
        keys in prop::collection::vec(0u64..48, 0..1500),
        chunk in 1usize..400,
    ) {
        let mut batched = Wcss::new(24, 900);
        let mut per_packet = Wcss::new(24, 900);
        for part in keys.chunks(chunk) {
            batched.update_batch(part);
        }
        for &key in &keys {
            per_packet.update(key);
        }
        assert_same_state(batched.as_memento(), per_packet.as_memento(), 48);
    }
}
