//! Controller-side algorithms.
//!
//! The controller forms the network-wide sliding-window view from the
//! reports of the measurement points:
//!
//! * [`DMementoController`] — plain heavy hitters: a [`Memento`] instance fed
//!   with Full updates for every reported sample and Window updates for the
//!   un-sampled remainder (§4.3, "Sample and Batch").
//! * [`DHMementoController`] — hierarchical heavy hitters: the same recipe
//!   with an [`HMemento`] instance.
//! * [`AggregationController`] — the idealized Aggregation baseline: the
//!   latest exact snapshot of every point, merged without loss (the paper
//!   grants this baseline unlimited controller state so that beating it is
//!   conclusive).

use std::collections::HashMap;
use std::hash::Hash;

use memento_core::{HMemento, HhhQuery, Memento};
use memento_hierarchy::{compute_hhh, HhhParams, Hierarchy, PrefixEstimator};

use crate::message::{Report, ReportPayload};

/// The controller-side interface the network simulator and the mitigation
/// loop drive: ingest reports, answer prefix queries. The read surface is
/// the workspace-wide [`HhhQuery`] trait (PR 7) — `name`, `estimate`,
/// `output`, `processed` — so a controller can be queried interchangeably
/// with any single-device or sharded HHH engine; this trait adds only the
/// ingest side and the mitigation-specific point estimate. Consumers hold
/// one `Box<dyn HhhController<Hi>>` instead of dispatching over an enum of
/// concrete controllers.
pub trait HhhController<Hi: Hierarchy>: HhhQuery<Hi> + std::fmt::Debug
where
    Hi::Prefix: Hash,
{
    /// Ingests one report from a measurement point.
    fn receive(&mut self, report: &Report<Hi::Item>);

    /// Approximately unbiased point estimate of a prefix's network-wide
    /// window frequency (what threshold-based mitigation compares against).
    /// Defaults to [`estimate`](HhhQuery::estimate) for exact controllers.
    fn point_estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.estimate(prefix)
    }
}

/// Network-wide heavy-hitters controller (D-Memento).
#[derive(Debug, Clone)]
pub struct DMementoController<K: Eq + Hash + Clone> {
    memento: Memento<K>,
}

impl<K: Eq + Hash + Clone> DMementoController<K> {
    /// Creates a controller whose estimates refer to the last `window`
    /// packets observed anywhere in the network, given that the measurement
    /// points sample with probability `upstream_tau`.
    pub fn new(counters: usize, window: usize, upstream_tau: f64, seed: u64) -> Self {
        assert!(
            upstream_tau > 0.0 && upstream_tau <= 1.0,
            "upstream tau must be in (0,1]"
        );
        let mut memento = Memento::new(counters, window, 1.0, seed);
        memento.configure_external_sampling(upstream_tau, 1.0 / upstream_tau);
        DMementoController { memento }
    }

    /// Ingests one report: Full updates for the samples, then one bulk
    /// [`Memento::skip`] over the un-sampled remainder of the covered
    /// packets — O(1) amortized in the report's coverage instead of one
    /// window update per covered packet, the D-Memento-style bulk window
    /// advance a measurement point with partial visibility needs to keep
    /// the controller's window at the network-wide stream position.
    pub fn receive(&mut self, report: &Report<K>) {
        match &report.payload {
            ReportPayload::Samples(samples) => {
                for s in samples {
                    self.memento.full_update(s.clone());
                }
                let rest = report.covered_packets.saturating_sub(samples.len() as u64);
                self.memento.skip(rest);
            }
            ReportPayload::Aggregation(_) => {
                panic!("DMementoController only handles Sample/Batch reports")
            }
        }
    }

    /// Estimated network-wide window frequency of a flow.
    pub fn estimate(&self, key: &K) -> f64 {
        self.memento.estimate(key)
    }

    /// Flows estimated above `threshold` packets in the network-wide window.
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<(K, f64)> {
        self.memento.heavy_hitters(threshold)
    }

    /// Total packets accounted for so far (samples + window updates).
    pub fn processed(&self) -> u64 {
        self.memento.processed()
    }
}

/// Network-wide hierarchical heavy-hitters controller (D-H-Memento).
#[derive(Debug, Clone)]
pub struct DHMementoController<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hmemento: HMemento<Hi>,
}

impl<Hi: Hierarchy> DHMementoController<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates a controller for hierarchy `hier` with `counters` counters, a
    /// network-wide window of `window` packets, measurement points sampling
    /// at `upstream_tau`, and confidence `delta`.
    pub fn new(
        hier: Hi,
        counters: usize,
        window: usize,
        upstream_tau: f64,
        delta: f64,
        seed: u64,
    ) -> Self {
        DHMementoController {
            hmemento: HMemento::with_upstream_sampling(
                hier,
                counters,
                window,
                upstream_tau,
                delta,
                seed,
            ),
        }
    }

    /// Ingests one report: Full updates (of one random prefix each) for the
    /// samples, then one bulk [`HMemento::skip`] over the un-sampled
    /// remainder of the covered packets (see
    /// [`DMementoController::receive`]).
    pub fn receive(&mut self, report: &Report<Hi::Item>) {
        match &report.payload {
            ReportPayload::Samples(samples) => {
                for s in samples {
                    self.hmemento.sampled_update(*s);
                }
                let rest = report.covered_packets.saturating_sub(samples.len() as u64);
                self.hmemento.skip(rest);
            }
            ReportPayload::Aggregation(_) => {
                panic!("DHMementoController only handles Sample/Batch reports")
            }
        }
    }

    /// Estimated network-wide window frequency of a prefix (upper bound).
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.hmemento.estimate(prefix)
    }

    /// Approximately unbiased point estimate of a prefix's network-wide
    /// window frequency (what threshold-based mitigation compares against).
    pub fn point_estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.hmemento.point_estimate(prefix)
    }

    /// The network-wide HHH set for threshold `θ`.
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.hmemento.output(theta)
    }

    /// Total packets accounted for so far.
    pub fn processed(&self) -> u64 {
        self.hmemento.processed()
    }

    /// Access to the underlying H-Memento (diagnostics).
    pub fn as_hmemento(&self) -> &HMemento<Hi> {
        &self.hmemento
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for DHMementoController<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "d-h-memento"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        DHMementoController::estimate(self, prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        DHMementoController::output(self, theta)
    }

    fn processed(&self) -> u64 {
        DHMementoController::processed(self)
    }
}

impl<Hi: Hierarchy> HhhController<Hi> for DHMementoController<Hi>
where
    Hi::Prefix: Hash,
{
    fn receive(&mut self, report: &Report<Hi::Item>) {
        DHMementoController::receive(self, report);
    }

    fn point_estimate(&self, prefix: &Hi::Prefix) -> f64 {
        DHMementoController::point_estimate(self, prefix)
    }
}

/// Idealized Aggregation controller: keeps the latest exact snapshot of every
/// measurement point and merges them without loss.
#[derive(Debug, Clone)]
pub struct AggregationController<Hi: Hierarchy>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    window: usize,
    /// Per-point expanded (per-prefix) counts from the latest snapshot.
    per_point: HashMap<usize, HashMap<Hi::Prefix, u64>>,
    /// Sum over points (kept incrementally).
    global: HashMap<Hi::Prefix, i64>,
    /// Total packets covered by all received reports (the network-wide
    /// stream position the controller has caught up to).
    covered: u64,
}

impl<Hi: Hierarchy> AggregationController<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates an Aggregation controller for a network-wide window of
    /// `window` packets.
    pub fn new(hier: Hi, window: usize) -> Self {
        AggregationController {
            hier,
            window,
            per_point: HashMap::new(),
            global: HashMap::new(),
            covered: 0,
        }
    }

    /// Ingests one aggregation snapshot, replacing the point's previous one.
    pub fn receive(&mut self, report: &Report<Hi::Item>) {
        let entries = match &report.payload {
            ReportPayload::Aggregation(entries) => entries,
            ReportPayload::Samples(_) => {
                panic!("AggregationController only handles Aggregation reports")
            }
        };
        // Expand item counts into per-prefix counts.
        let mut expanded: HashMap<Hi::Prefix, u64> = HashMap::new();
        for (item, count) in entries {
            for i in 0..self.hier.h() {
                *expanded.entry(self.hier.prefix_at(*item, i)).or_insert(0) += count;
            }
        }
        // Subtract the point's previous contribution, add the new one.
        if let Some(old) = self.per_point.remove(&report.point) {
            for (p, c) in old {
                *self.global.entry(p).or_insert(0) -= c as i64;
            }
        }
        for (p, c) in &expanded {
            *self.global.entry(*p).or_insert(0) += *c as i64;
        }
        self.global.retain(|_, v| *v > 0);
        self.per_point.insert(report.point, expanded);
        self.covered += report.covered_packets;
    }

    /// Total packets covered by all received reports.
    pub fn processed(&self) -> u64 {
        self.covered
    }

    /// Estimated network-wide window frequency of a prefix (sum of the latest
    /// per-point snapshots; exact up to reporting delay).
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.global.get(prefix).copied().unwrap_or(0).max(0) as f64
    }

    /// The network-wide HHH set for threshold `θ` (relative to the window).
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let candidates: Vec<Hi::Prefix> = self.global.keys().copied().collect();
        compute_hhh(
            &self.hier,
            self,
            &candidates,
            HhhParams::exact(theta * self.window as f64),
        )
    }

    /// Number of points that have reported at least once.
    pub fn reporting_points(&self) -> usize {
        self.per_point.len()
    }
}

impl<Hi: Hierarchy> PrefixEstimator<Hi::Prefix> for AggregationController<Hi>
where
    Hi::Prefix: Hash,
{
    fn upper_bound(&self, p: &Hi::Prefix) -> f64 {
        self.estimate(p)
    }

    fn lower_bound(&self, p: &Hi::Prefix) -> f64 {
        self.estimate(p)
    }
}

impl<Hi: Hierarchy> HhhQuery<Hi> for AggregationController<Hi>
where
    Hi::Prefix: Hash,
{
    fn name(&self) -> &'static str {
        "aggregation"
    }

    fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        AggregationController::estimate(self, prefix)
    }

    fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        AggregationController::output(self, theta)
    }

    fn processed(&self) -> u64 {
        AggregationController::processed(self)
    }
}

impl<Hi: Hierarchy> HhhController<Hi> for AggregationController<Hi>
where
    Hi::Prefix: Hash,
{
    fn receive(&mut self, report: &Report<Hi::Item>) {
        AggregationController::receive(self, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Report, WireFormat};
    use memento_hierarchy::{Prefix1D, SrcHierarchy};

    fn addr(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    #[test]
    fn dmemento_controller_scales_by_upstream_tau() {
        let wire = WireFormat::tcp_src();
        let tau = 0.5;
        let mut ctrl: DMementoController<u32> = DMementoController::new(64, 10_000, tau, 1);
        // 100 reports of 10 samples of flow 7, each covering 20 packets.
        for _ in 0..100 {
            let report = Report::samples(0, 20, vec![7u32; 10], &wire);
            ctrl.receive(&report);
        }
        assert_eq!(ctrl.processed(), 2_000);
        let est = ctrl.estimate(&7);
        // 1000 samples at tau=0.5 -> ~2000 packets (plus one-sided slack).
        assert!(est >= 2_000.0, "est = {est}");
        assert!(est <= 2_000.0 / 0.5, "est = {est}");
        let hh = ctrl.heavy_hitters(1_000.0);
        assert!(hh.iter().any(|(k, _)| *k == 7));
    }

    #[test]
    #[should_panic(expected = "Sample/Batch")]
    fn dmemento_controller_rejects_aggregation_reports() {
        let wire = WireFormat::tcp_src();
        let mut ctrl: DMementoController<u32> = DMementoController::new(8, 100, 0.5, 0);
        let report = Report::aggregation(0, 10, vec![(1u32, 5u64)], &wire);
        ctrl.receive(&report);
    }

    #[test]
    fn dhmemento_controller_estimates_prefixes() {
        let wire = WireFormat::tcp_src();
        let tau = 0.25;
        let mut ctrl = DHMementoController::new(SrcHierarchy, 1_000, 100_000, tau, 0.01, 3);
        // Samples all from 10.0.0.0/8, each report covering 1/tau packets per
        // sample.
        for i in 0..2_000u32 {
            let report = Report::samples(0, 4, vec![addr(10, (i % 4) as u8, 0, 1)], &wire);
            ctrl.receive(&report);
        }
        assert_eq!(ctrl.processed(), 8_000);
        let est = ctrl.estimate(&Prefix1D::new(addr(10, 0, 0, 0), 8));
        // All 8000 "covered" packets belong to 10/8.
        assert!(est > 4_000.0, "est = {est}");
        let hhh = ctrl.output(0.01);
        assert!(hhh
            .iter()
            .any(|p| *p == Prefix1D::new(addr(10, 0, 0, 0), 8) || p.is_root()));
    }

    #[test]
    fn aggregation_controller_merges_and_replaces_snapshots() {
        let wire = WireFormat::tcp_src();
        let mut ctrl = AggregationController::new(SrcHierarchy, 1_000);
        let p8 = Prefix1D::new(addr(10, 0, 0, 0), 8);
        // Point 0 reports 10.1.1.1 x 100, point 1 reports 10.2.2.2 x 50.
        ctrl.receive(&Report::aggregation(
            0,
            100,
            vec![(addr(10, 1, 1, 1), 100)],
            &wire,
        ));
        ctrl.receive(&Report::aggregation(
            1,
            50,
            vec![(addr(10, 2, 2, 2), 50)],
            &wire,
        ));
        assert_eq!(ctrl.reporting_points(), 2);
        assert_eq!(ctrl.estimate(&p8), 150.0);
        // Point 0 sends a fresh snapshot replacing the old one.
        ctrl.receive(&Report::aggregation(
            0,
            80,
            vec![(addr(10, 1, 1, 1), 20)],
            &wire,
        ));
        assert_eq!(ctrl.estimate(&p8), 70.0);
        // HHH output: the 50-packet host reaches the threshold (0.05·1000);
        // the /8's residual after removing it is only 20, so it is not
        // reported — exactly the conditioned-frequency semantics.
        let hhh = ctrl.output(0.05);
        assert_eq!(hhh, vec![Prefix1D::new(addr(10, 2, 2, 2), 32)]);
        // With a lower threshold both hosts qualify individually and the /8
        // residual becomes zero, so it is still (correctly) absent.
        let hhh = ctrl.output(0.015);
        assert!(hhh.contains(&Prefix1D::new(addr(10, 1, 1, 1), 32)));
        assert!(hhh.contains(&Prefix1D::new(addr(10, 2, 2, 2), 32)));
        assert!(!hhh.contains(&p8), "{hhh:?}");
    }

    #[test]
    #[should_panic(expected = "Aggregation reports")]
    fn aggregation_controller_rejects_sample_reports() {
        let wire = WireFormat::tcp_src();
        let mut ctrl = AggregationController::new(SrcHierarchy, 100);
        ctrl.receive(&Report::samples(0, 1, vec![addr(1, 1, 1, 1)], &wire));
    }
}
