//! The three communication methods of §4.3 and their bandwidth scheduling.

use serde::{Deserialize, Serialize};

use crate::message::WireFormat;

/// How a measurement point conveys information to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommMethod {
    /// Periodically ship the point's entire summary (idealized in this
    /// reproduction, as in the paper: exact per-key counts, no merge loss).
    Aggregation,
    /// Ship one sampled packet per report (batch size 1).
    Sample,
    /// Ship `b` sampled packets per report.
    Batch(usize),
}

impl CommMethod {
    /// The batch size `b` of the method (1 for Sample; meaningless for
    /// Aggregation, which reports whole summaries).
    pub fn batch_size(&self) -> usize {
        match self {
            CommMethod::Aggregation => 0,
            CommMethod::Sample => 1,
            CommMethod::Batch(b) => *b,
        }
    }

    /// The sampling probability that exactly exhausts a per-packet budget of
    /// `budget` bytes for this method: `τ = B·b / (O + E·b)` (§5.2), capped
    /// at 1. Aggregation does not sample (returns 1).
    pub fn tau_for_budget(&self, budget: f64, wire: &WireFormat) -> f64 {
        match self {
            CommMethod::Aggregation => 1.0,
            _ => {
                let b = self.batch_size() as f64;
                (budget * b / wire.report_bytes(self.batch_size())).min(1.0)
            }
        }
    }

    /// Short name used in bench output.
    pub fn name(&self) -> String {
        match self {
            CommMethod::Aggregation => "aggregation".to_string(),
            CommMethod::Sample => "sample".to_string(),
            CommMethod::Batch(b) => format!("batch-{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_matches_budget_formula() {
        let wire = WireFormat::tcp_src();
        // Sample with B=1: tau = 1/(64+4) = 1/68.
        let tau = CommMethod::Sample.tau_for_budget(1.0, &wire);
        assert!((tau - 1.0 / 68.0).abs() < 1e-12);
        // Batch 100 with B=1: tau = 100/464.
        let tau = CommMethod::Batch(100).tau_for_budget(1.0, &wire);
        assert!((tau - 100.0 / 464.0).abs() < 1e-12);
        // Huge budgets cap tau at 1.
        assert_eq!(CommMethod::Batch(10).tau_for_budget(1e9, &wire), 1.0);
        assert_eq!(CommMethod::Aggregation.tau_for_budget(1.0, &wire), 1.0);
    }

    #[test]
    fn batch_utilizes_bandwidth_better_than_sample() {
        // For the same budget, Batch's effective sampling rate is higher
        // because the header is amortized over b samples.
        let wire = WireFormat::tcp_src();
        let t_sample = CommMethod::Sample.tau_for_budget(1.0, &wire);
        let t_batch = CommMethod::Batch(100).tau_for_budget(1.0, &wire);
        assert!(t_batch > 10.0 * t_sample);
    }

    #[test]
    fn names_and_batch_sizes() {
        assert_eq!(CommMethod::Sample.batch_size(), 1);
        assert_eq!(CommMethod::Batch(44).batch_size(), 44);
        assert_eq!(CommMethod::Batch(44).name(), "batch-44");
        assert_eq!(CommMethod::Aggregation.name(), "aggregation");
        assert_eq!(CommMethod::Sample.name(), "sample");
    }
}
