//! Report formats exchanged between measurement points and the controller,
//! and their byte accounting.
//!
//! The paper's bandwidth model (§5.2) charges every report a fixed transport
//! header of `O` bytes (64 for TCP) plus `E` bytes per reported sample
//! (4 bytes for a source IP, 8 for a source/destination pair). Aggregation
//! snapshots are charged `O` plus an entry size per reported counter. The
//! measurement points schedule their reports so the long-run average stays
//! within the per-packet budget `B`.

use serde::{Deserialize, Serialize};

/// Byte-accounting constants / parameters of the report wire format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireFormat {
    /// Minimal header size `O` in bytes of the transport carrying reports.
    pub header_overhead: f64,
    /// Bytes `E` required to encode one sampled packet.
    pub sample_bytes: f64,
    /// Bytes required per counter entry in an Aggregation snapshot
    /// (key + count).
    pub aggregation_entry_bytes: f64,
}

impl WireFormat {
    /// TCP transport with source-IP samples (the paper's 1D setting:
    /// `O = 64`, `E = 4`); aggregation entries carry a 4-byte key and a
    /// 4-byte count.
    pub fn tcp_src() -> Self {
        WireFormat {
            header_overhead: 64.0,
            sample_bytes: 4.0,
            aggregation_entry_bytes: 8.0,
        }
    }

    /// TCP transport with (source, destination) samples (the 2D setting:
    /// `O = 64`, `E = 8`).
    pub fn tcp_src_dst() -> Self {
        WireFormat {
            header_overhead: 64.0,
            sample_bytes: 8.0,
            aggregation_entry_bytes: 12.0,
        }
    }

    /// Size in bytes of a sample/batch report carrying `samples` samples.
    pub fn report_bytes(&self, samples: usize) -> f64 {
        self.header_overhead + self.sample_bytes * samples as f64
    }

    /// Size in bytes of an aggregation snapshot with `entries` counters.
    pub fn aggregation_bytes(&self, entries: usize) -> f64 {
        self.header_overhead + self.aggregation_entry_bytes * entries as f64
    }
}

/// The payload of one report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReportPayload<T> {
    /// Sampled packets (Sample method: one on average; Batch method: `b`).
    Samples(Vec<T>),
    /// An aggregation snapshot: per-key exact counts of the point's share of
    /// the window (idealized Aggregation baseline).
    Aggregation(Vec<(T, u64)>),
}

impl<T> ReportPayload<T> {
    /// Number of samples / entries carried.
    pub fn len(&self) -> usize {
        match self {
            ReportPayload::Samples(v) => v.len(),
            ReportPayload::Aggregation(v) => v.len(),
        }
    }

    /// True when the payload carries nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A report sent from a measurement point to the controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report<T> {
    /// Identifier of the sending measurement point.
    pub point: usize,
    /// Number of packets observed at the point since its previous report
    /// (the controller uses it to issue Window updates for the un-sampled
    /// packets).
    pub covered_packets: u64,
    /// The payload.
    pub payload: ReportPayload<T>,
    /// Size of this report on the wire, in bytes (per the [`WireFormat`]).
    pub bytes: f64,
}

impl<T> Report<T> {
    /// Builds a samples report and computes its wire size.
    pub fn samples(point: usize, covered_packets: u64, samples: Vec<T>, wire: &WireFormat) -> Self {
        let bytes = wire.report_bytes(samples.len());
        Report {
            point,
            covered_packets,
            payload: ReportPayload::Samples(samples),
            bytes,
        }
    }

    /// Builds an aggregation report and computes its wire size.
    pub fn aggregation(
        point: usize,
        covered_packets: u64,
        entries: Vec<(T, u64)>,
        wire: &WireFormat,
    ) -> Self {
        let bytes = wire.aggregation_bytes(entries.len());
        Report {
            point,
            covered_packets,
            payload: ReportPayload::Aggregation(entries),
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_src_matches_paper_constants() {
        let w = WireFormat::tcp_src();
        assert_eq!(w.header_overhead, 64.0);
        assert_eq!(w.sample_bytes, 4.0);
        assert_eq!(w.report_bytes(1), 68.0);
        assert_eq!(w.report_bytes(100), 464.0);
        let w2 = WireFormat::tcp_src_dst();
        assert_eq!(w2.report_bytes(1), 72.0);
    }

    #[test]
    fn report_constructors_account_bytes() {
        let wire = WireFormat::tcp_src();
        let r = Report::samples(3, 1000, vec![1u32, 2, 3], &wire);
        assert_eq!(r.bytes, 64.0 + 12.0);
        assert_eq!(r.payload.len(), 3);
        assert!(!r.payload.is_empty());
        let a = Report::aggregation(1, 500, vec![(7u32, 42u64)], &wire);
        assert_eq!(a.bytes, 64.0 + 8.0);
        assert_eq!(a.covered_packets, 500);
    }

    #[test]
    fn payload_len_empty() {
        let p: ReportPayload<u32> = ReportPayload::Samples(vec![]);
        assert!(p.is_empty());
    }

    // NOTE: a serde_json round-trip test lived here in the seed; the build
    // environment vendors serde as a marker-only stand-in (no crates.io
    // access), so the report *contents* are asserted field by field instead.
    // Restore the JSON round trip when real serde/serde_json are available.
    #[test]
    fn report_constructors_preserve_contents() {
        let wire = WireFormat::tcp_src();
        let r = Report::samples(3, 10, vec![9u32, 8, 9], &wire);
        assert_eq!(r.point, 3);
        assert_eq!(r.covered_packets, 10);
        assert_eq!(r.payload, ReportPayload::Samples(vec![9, 8, 9]));
        assert_eq!(r.bytes, wire.report_bytes(3));
        let a = Report::aggregation(2, 77, vec![(1u32, 5u64), (2, 3)], &wire);
        assert_eq!(a.point, 2);
        assert_eq!(a.covered_packets, 77);
        assert_eq!(a.payload, ReportPayload::Aggregation(vec![(1, 5), (2, 3)]));
        assert_eq!(a.bytes, wire.aggregation_bytes(2));
    }
}
