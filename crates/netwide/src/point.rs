//! Measurement points (the paper's "clients": the load balancers).
//!
//! A measurement point observes a share of the network's packets and
//! periodically reports to the controller, staying within the per-packet
//! bandwidth budget `B`:
//!
//! * **Sample / Batch** — sample each packet with probability
//!   `τ = B·b/(O+E·b)` and ship a report every `b` collected samples (so a
//!   report goes out once per `b·τ⁻¹` packets on average, exactly exhausting
//!   the budget).
//! * **Aggregation** — keep an exact summary of the point's share of the
//!   window (the idealization the paper grants this baseline) and ship a full
//!   snapshot whenever the accumulated byte credit can pay for it.

use std::hash::Hash;

use memento_sketches::{ExactWindow, Sampler, TableSampler};

use crate::comm::CommMethod;
use crate::message::{Report, WireFormat};

/// A single measurement point.
#[derive(Debug, Clone)]
pub struct MeasurementPoint<T: Copy + Eq + Hash> {
    id: usize,
    method: CommMethod,
    wire: WireFormat,
    budget: f64,
    tau: f64,
    sampler: TableSampler,
    /// Samples collected since the last report (Sample/Batch).
    pending: Vec<T>,
    /// Packets observed since the last report.
    covered: u64,
    /// Exact counts of the point's share of the window (Aggregation only).
    local_window: Option<ExactWindow<T>>,
    /// Maximum number of counter entries shipped per Aggregation snapshot
    /// (the size of the per-client summary whose entries get transmitted).
    aggregation_entries: usize,
    /// Byte credit accumulated at `budget` bytes per packet (Aggregation).
    credit: f64,
    /// Total bytes this point has sent (for budget-compliance checks).
    bytes_sent: f64,
    /// Total packets this point has observed.
    packets_seen: u64,
}

impl<T: Copy + Eq + Hash> MeasurementPoint<T> {
    /// Creates a measurement point.
    ///
    /// * `id` — the point's identifier (echoed in its reports);
    /// * `method` — communication method;
    /// * `budget` — per-packet bandwidth budget `B` in bytes;
    /// * `wire` — wire format constants (`O`, `E`);
    /// * `local_window` — the point's share of the global window (used only
    ///   by Aggregation; the paper's global window of `W` packets spread over
    ///   `m` points gives `W/m` per point);
    /// * `seed` — RNG seed.
    pub fn new(
        id: usize,
        method: CommMethod,
        budget: f64,
        wire: WireFormat,
        local_window: usize,
        seed: u64,
    ) -> Self {
        assert!(budget > 0.0, "budget must be positive");
        let tau = method.tau_for_budget(budget, &wire);
        let local_window = match method {
            CommMethod::Aggregation => Some(ExactWindow::new(local_window.max(1))),
            _ => None,
        };
        MeasurementPoint {
            id,
            method,
            wire,
            budget,
            tau,
            sampler: TableSampler::with_seed(tau, seed.wrapping_add(id as u64)),
            pending: Vec::new(),
            covered: 0,
            local_window,
            aggregation_entries: Self::DEFAULT_AGGREGATION_ENTRIES,
            credit: 0.0,
            bytes_sent: 0.0,
            packets_seen: 0,
        }
    }

    /// Default number of counter entries per Aggregation snapshot.
    pub const DEFAULT_AGGREGATION_ENTRIES: usize = 4_096;

    /// Overrides the number of counter entries shipped per Aggregation
    /// snapshot (ignored by the Sample/Batch methods).
    pub fn set_aggregation_entries(&mut self, entries: usize) {
        assert!(entries > 0, "at least one entry per snapshot");
        self.aggregation_entries = entries;
    }

    /// The point's identifier.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The effective sampling probability τ of this point.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The communication method.
    pub fn method(&self) -> CommMethod {
        self.method
    }

    /// Total bytes sent so far.
    pub fn bytes_sent(&self) -> f64 {
        self.bytes_sent
    }

    /// Total packets observed so far.
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }

    /// Average bytes per observed packet (must stay ≤ the budget, up to the
    /// granularity of one report).
    pub fn bytes_per_packet(&self) -> f64 {
        if self.packets_seen == 0 {
            0.0
        } else {
            self.bytes_sent / self.packets_seen as f64
        }
    }

    /// Processes one observed packet; returns a report when one is emitted.
    pub fn process(&mut self, item: T) -> Option<Report<T>> {
        self.packets_seen += 1;
        self.covered += 1;
        let report = match self.method {
            CommMethod::Sample | CommMethod::Batch(_) => {
                if self.sampler.sample() {
                    self.pending.push(item);
                }
                if self.pending.len() >= self.method.batch_size().max(1) {
                    let samples = std::mem::take(&mut self.pending);
                    let covered = std::mem::take(&mut self.covered);
                    Some(Report::samples(self.id, covered, samples, &self.wire))
                } else {
                    None
                }
            }
            CommMethod::Aggregation => {
                let window = self
                    .local_window
                    .as_mut()
                    .expect("aggregation points keep a local window");
                window.add(item);
                self.credit += self.budget;
                // A snapshot ships the entries of the point's HH summary
                // (bounded, like the paper's per-client algorithm state),
                // not every distinct flow it ever saw.
                let entries = window.distinct().min(self.aggregation_entries);
                let cost = self.wire.aggregation_bytes(entries);
                if self.credit >= cost {
                    self.credit -= cost;
                    let mut all: Vec<(T, u64)> = window.iter().map(|(k, c)| (*k, c)).collect();
                    all.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
                    all.truncate(self.aggregation_entries);
                    let covered = std::mem::take(&mut self.covered);
                    Some(Report::aggregation(self.id, covered, all, &self.wire))
                } else {
                    None
                }
            }
        };
        if let Some(r) = &report {
            self.bytes_sent += r.bytes;
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_method_reports_one_sample_at_a_time() {
        let wire = WireFormat::tcp_src();
        let mut p = MeasurementPoint::new(0, CommMethod::Sample, 1.0, wire, 0, 1);
        let mut reports = 0;
        for i in 0..50_000u32 {
            if let Some(r) = p.process(i) {
                assert_eq!(r.payload.len(), 1);
                assert!(r.covered_packets > 0);
                reports += 1;
            }
        }
        // tau = 1/68, so ~735 reports over 50k packets.
        assert!((600..900).contains(&reports), "reports = {reports}");
        // Budget compliance within one report of slack.
        assert!(
            p.bytes_per_packet() <= 1.1,
            "bpp = {}",
            p.bytes_per_packet()
        );
    }

    #[test]
    fn batch_method_reports_b_samples_and_respects_budget() {
        let wire = WireFormat::tcp_src();
        let b = 44;
        let mut p = MeasurementPoint::new(2, CommMethod::Batch(b), 1.0, wire, 0, 7);
        let mut total_samples = 0usize;
        for i in 0..200_000u32 {
            if let Some(r) = p.process(i) {
                assert_eq!(r.payload.len(), b);
                total_samples += r.payload.len();
            }
        }
        assert!(total_samples > 0);
        assert!(
            p.bytes_per_packet() <= 1.05,
            "budget exceeded: {}",
            p.bytes_per_packet()
        );
        // Batch's effective sampling rate must exceed Sample's for equal B.
        let sample_tau = CommMethod::Sample.tau_for_budget(1.0, &WireFormat::tcp_src());
        assert!(p.tau() > sample_tau);
    }

    #[test]
    fn aggregation_sends_snapshots_within_budget() {
        let wire = WireFormat::tcp_src();
        let mut p = MeasurementPoint::new(1, CommMethod::Aggregation, 1.0, wire, 1_000, 3);
        let mut snapshots = 0;
        for i in 0..20_000u32 {
            if let Some(r) = p.process(i % 50) {
                match r.payload {
                    crate::message::ReportPayload::Aggregation(ref entries) => {
                        assert!(!entries.is_empty());
                        // Counts are exact for the point's local window.
                        let total: u64 = entries.iter().map(|(_, c)| *c).sum();
                        assert!(total <= 1_000);
                    }
                    _ => panic!("aggregation point must send aggregation payloads"),
                }
                snapshots += 1;
            }
        }
        assert!(snapshots > 0, "no snapshot was ever affordable");
        assert!(
            p.bytes_per_packet() <= 1.05,
            "budget exceeded: {}",
            p.bytes_per_packet()
        );
    }

    #[test]
    fn covered_packets_sum_to_processed_packets() {
        let wire = WireFormat::tcp_src();
        let mut p = MeasurementPoint::new(0, CommMethod::Batch(10), 2.0, wire, 0, 5);
        let mut covered = 0u64;
        let n = 30_000u32;
        for i in 0..n {
            if let Some(r) = p.process(i) {
                covered += r.covered_packets;
            }
        }
        assert!(covered <= n as u64);
        // Whatever is not covered yet is still pending at the point.
        assert!(n as u64 - covered <= 20_000, "covered = {covered}");
    }
}
