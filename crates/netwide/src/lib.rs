//! # memento-netwide
//!
//! Network-wide sliding-window measurement from §4.3 / §5.2 / §6.3 of the
//! [Memento paper][paper]: D-Memento (heavy hitters) and D-H-Memento
//! (hierarchical heavy hitters) with a centralized controller fed by `m`
//! measurement points under a per-packet bandwidth budget.
//!
//! * [`message`] — the report formats and their byte accounting (header
//!   overhead `O`, per-sample payload `E`).
//! * [`comm`] — the three communication methods the paper compares:
//!   **Aggregation** (periodic full-state snapshots), **Sample** (one sampled
//!   packet per report) and **Batch** (`b` sampled packets per report), each
//!   scheduled to exactly exhaust the budget `B`.
//! * [`point`] — the per-client measurement point logic.
//! * [`controller`] — the controller algorithms: [`DMementoController`],
//!   [`DHMementoController`], the idealized [`AggregationController`]
//!   baseline and the exact OPT oracle.
//! * [`simulator`] — a deterministic discrete-event driver that spreads a
//!   trace over the measurement points, delivers reports and compares the
//!   controller's view against the exact global window (Figures 9 and 10).
//!
//! [paper]: https://arxiv.org/abs/1810.02899

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod controller;
pub mod message;
pub mod point;
pub mod simulator;

pub use comm::CommMethod;
pub use controller::{
    AggregationController, DHMementoController, DMementoController, HhhController,
};
pub use message::{Report, ReportPayload, WireFormat};
pub use point::MeasurementPoint;
pub use simulator::{NetworkSimulator, SimConfig, SimMetrics};
