//! Network-wide simulation driver.
//!
//! Spreads a packet stream over `m` measurement points, runs the configured
//! communication method under the bandwidth budget, delivers reports to the
//! controller, and keeps an exact global sliding-window oracle so that the
//! controller's view can be scored (the setup behind Figures 9 and 10).

use std::hash::Hash;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use memento_baselines::ExactWindowHhh;
use memento_hierarchy::Hierarchy;

use crate::comm::CommMethod;
use crate::controller::{AggregationController, DHMementoController, HhhController};
use crate::message::WireFormat;
use crate::point::MeasurementPoint;

/// Configuration of a network-wide simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of measurement points `m` (the paper's testbed uses 10).
    pub points: usize,
    /// Network-wide window size `W` in packets.
    pub window: usize,
    /// Per-packet bandwidth budget `B` in bytes (the paper evaluates 1).
    pub budget: f64,
    /// Counters allocated to the controller's (H-)Memento instance.
    pub counters: usize,
    /// Communication method.
    pub method: CommMethod,
    /// Confidence parameter δ for the controller's sampling compensation.
    pub delta: f64,
    /// RNG seed (packet→point assignment, sampling).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            points: 10,
            window: 100_000,
            budget: 1.0,
            counters: 4_096,
            method: CommMethod::Batch(44),
            delta: 0.01,
            seed: 42,
        }
    }
}

/// A deterministic network-wide measurement simulation.
///
/// The controller is held as a `Box<dyn HhhController>` — the simulator's
/// per-packet driver is the same for every controller variant; picking
/// D-H-Memento vs. the Aggregation baseline happens once, at construction.
#[derive(Debug)]
pub struct NetworkSimulator<Hi: Hierarchy + 'static>
where
    Hi::Prefix: Hash,
{
    hier: Hi,
    config: SimConfig,
    wire: WireFormat,
    points: Vec<MeasurementPoint<Hi::Item>>,
    controller: Box<dyn HhhController<Hi>>,
    oracle: ExactWindowHhh<Hi>,
    assign_rng: StdRng,
    packets: u64,
    reports: u64,
    bytes: f64,
}

impl<Hi: Hierarchy + 'static> NetworkSimulator<Hi>
where
    Hi::Prefix: Hash,
{
    /// Creates a simulator.
    pub fn new(hier: Hi, config: SimConfig, wire: WireFormat) -> Self {
        assert!(config.points > 0, "at least one measurement point");
        assert!(config.window > 0, "window must be positive");
        let upstream_tau = config.method.tau_for_budget(config.budget, &wire);
        let local_window = (config.window / config.points).max(1);
        let points = (0..config.points)
            .map(|id| {
                MeasurementPoint::new(
                    id,
                    config.method,
                    config.budget,
                    wire,
                    local_window,
                    config.seed,
                )
            })
            .collect();
        let controller: Box<dyn HhhController<Hi>> = match config.method {
            CommMethod::Aggregation => {
                Box::new(AggregationController::new(hier.clone(), config.window))
            }
            _ => Box::new(DHMementoController::new(
                hier.clone(),
                config.counters,
                config.window,
                upstream_tau,
                config.delta,
                config.seed,
            )),
        };
        let oracle = ExactWindowHhh::new(hier.clone(), config.window);
        NetworkSimulator {
            hier,
            config,
            wire,
            points,
            controller,
            oracle,
            assign_rng: StdRng::seed_from_u64(config.seed ^ 0xA55A),
            packets: 0,
            reports: 0,
            bytes: 0.0,
        }
    }

    /// The simulation configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The hierarchy.
    pub fn hierarchy(&self) -> &Hi {
        &self.hier
    }

    /// The wire format (byte accounting) used by the measurement points.
    pub fn wire(&self) -> &WireFormat {
        &self.wire
    }

    /// Number of packets processed so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Number of reports delivered to the controller so far.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Total control-plane bytes sent so far.
    pub fn control_bytes(&self) -> f64 {
        self.bytes
    }

    /// Average control bytes per ingress packet (must stay near the budget).
    pub fn bytes_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes / self.packets as f64
        }
    }

    /// Processes one packet: assigns it to a uniformly random measurement
    /// point (each packet is measured exactly once, as in the paper's model),
    /// delivers any emitted report to the controller, and updates the exact
    /// oracle.
    pub fn process(&mut self, item: Hi::Item) {
        self.packets += 1;
        self.oracle.update(item);
        let idx = self.assign_rng.gen_range(0..self.points.len());
        if let Some(report) = self.points[idx].process(item) {
            self.bytes += report.bytes;
            self.reports += 1;
            self.controller.receive(&report);
        }
    }

    /// The controller running in this simulation.
    pub fn controller(&self) -> &dyn HhhController<Hi> {
        self.controller.as_ref()
    }

    /// The controller's estimate of a prefix's network-wide window frequency.
    pub fn estimate(&self, prefix: &Hi::Prefix) -> f64 {
        self.controller.estimate(prefix)
    }

    /// The exact network-wide window frequency of a prefix.
    pub fn exact(&self, prefix: &Hi::Prefix) -> u64 {
        self.oracle.frequency(prefix)
    }

    /// The controller's HHH set for threshold `θ`.
    pub fn output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.controller.output(theta)
    }

    /// The exact (OPT) HHH set for threshold `θ`.
    pub fn exact_output(&self, theta: f64) -> Vec<Hi::Prefix> {
        self.oracle.output(theta)
    }

    /// The exact oracle (OPT), e.g. for detection-latency comparisons.
    pub fn oracle(&self) -> &ExactWindowHhh<Hi> {
        &self.oracle
    }
}

/// Streaming error metrics (the on-arrival RMSE of §6).
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    sum_sq: f64,
    sum_abs: f64,
    n: u64,
}

impl SimMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SimMetrics::default()
    }

    /// Records one (estimate, exact) observation.
    pub fn record(&mut self, estimate: f64, exact: f64) {
        let d = estimate - exact;
        self.sum_sq += d * d;
        self.sum_abs += d.abs();
        self.n += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Root-mean-square error.
    pub fn rmse(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sum_sq / self.n as f64).sqrt()
        }
    }

    /// Mean absolute error.
    pub fn mae(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum_abs / self.n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memento_hierarchy::{Prefix1D, SrcHierarchy};
    use memento_traces::{TraceGenerator, TracePreset};

    fn run(method: CommMethod, n: usize) -> (NetworkSimulator<SrcHierarchy>, SimMetrics) {
        let config = SimConfig {
            points: 5,
            window: 20_000,
            budget: 1.0,
            counters: 2_048,
            method,
            delta: 0.01,
            seed: 7,
        };
        let mut sim = NetworkSimulator::new(SrcHierarchy, config, WireFormat::tcp_src());
        let mut gen = TraceGenerator::new(TracePreset::tiny(), 3);
        let mut metrics = SimMetrics::new();
        for i in 0..n {
            let pkt = gen.next_packet();
            sim.process(pkt.src);
            // Score the /8 estimate on arrival every 100 packets, after warmup.
            if i > n / 2 && i % 100 == 0 {
                let p = Prefix1D::new(pkt.src, 8);
                metrics.record(sim.estimate(&p), sim.exact(&p) as f64);
            }
        }
        (sim, metrics)
    }

    #[test]
    fn batch_respects_budget_and_tracks_truth() {
        let (sim, metrics) = run(CommMethod::Batch(44), 60_000);
        assert!(
            sim.bytes_per_packet() <= 1.05,
            "budget exceeded: {}",
            sim.bytes_per_packet()
        );
        assert!(sim.reports() > 0);
        assert!(metrics.count() > 0);
        // Estimates must be in the right order of magnitude for /8 subnets.
        assert!(
            metrics.rmse() < sim.config().window as f64 * 0.5,
            "rmse = {}",
            metrics.rmse()
        );
    }

    #[test]
    fn sample_and_aggregation_also_respect_budget() {
        for method in [CommMethod::Sample, CommMethod::Aggregation] {
            let (sim, _) = run(method, 40_000);
            assert!(
                sim.bytes_per_packet() <= 1.1,
                "{:?} exceeded budget: {}",
                method,
                sim.bytes_per_packet()
            );
            assert!(sim.reports() > 0, "{method:?} never reported");
        }
    }

    #[test]
    fn batch_is_more_accurate_than_sample_for_equal_budget() {
        let (_, batch) = run(CommMethod::Batch(44), 80_000);
        let (_, sample) = run(CommMethod::Sample, 80_000);
        assert!(
            batch.rmse() <= sample.rmse() * 1.5,
            "batch rmse {} should not be much worse than sample {}",
            batch.rmse(),
            sample.rmse()
        );
    }

    #[test]
    fn controller_output_overlaps_exact_output() {
        let (sim, _) = run(CommMethod::Batch(44), 60_000);
        let theta = 0.1;
        let exact = sim.exact_output(theta);
        let approx = sim.output(theta);
        // Every exact network-wide HHH should be covered by some reported
        // prefix (possibly an ancestor) — the approximate set errs on the
        // side of reporting more.
        for p in &exact {
            assert!(
                approx
                    .iter()
                    .any(|q| q == p || sim.hierarchy().generalizes(q, p)),
                "exact HHH {p} not covered by {approx:?}"
            );
        }
    }

    #[test]
    fn metrics_accumulator_math() {
        let mut m = SimMetrics::new();
        m.record(3.0, 1.0);
        m.record(1.0, 1.0);
        assert_eq!(m.count(), 2);
        assert!((m.rmse() - (4.0f64 / 2.0).sqrt()).abs() < 1e-12);
        assert!((m.mae() - 1.0).abs() < 1e-12);
        let empty = SimMetrics::new();
        assert_eq!(empty.rmse(), 0.0);
        assert_eq!(empty.mae(), 0.0);
    }
}
