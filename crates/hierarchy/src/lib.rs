//! # memento-hierarchy
//!
//! IP-prefix hierarchies and the hierarchical-heavy-hitter (HHH) set
//! machinery shared by H-Memento, the MST / window-MST baselines, RHHH and
//! the exact oracles in the [Memento (CoNEXT 2018)][paper] reproduction.
//!
//! The paper works with byte-granularity IPv4 hierarchies:
//!
//! * the **source hierarchy** — prefixes `/32, /24, /16, /8, /0` of the
//!   source address, hierarchy size `H = 5`, maximal depth `L = 4`;
//! * the **source × destination hierarchy** — all 25 combinations of source
//!   and destination byte prefixes, `H = 25`, maximal depth `L = 8`.
//!
//! The crate provides:
//!
//! * [`Prefix1D`] / [`Prefix2D`] — prefix types with the generalization
//!   partial order (`⪯`), parents and greatest lower bounds;
//! * the [`Hierarchy`] trait with [`SrcHierarchy`] and [`SrcDstHierarchy`]
//!   implementations, so every HHH algorithm in the workspace is generic over
//!   the dimensionality;
//! * [`hhh_set`] — `G(q|P)`, conditioned frequencies, `calcPred` for one and
//!   two dimensions (Algorithms 3 and 4 of the paper) and the level-by-level
//!   HHH set computation (the `output` procedure of Algorithm 2), plus exact
//!   oracles used as ground truth.
//!
//! [paper]: https://arxiv.org/abs/1810.02899

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hhh_set;
pub mod hierarchy;
pub mod prefix;

pub use hhh_set::{
    compute_hhh, conditioned_frequency_exact, exact_hhh, prefix_frequencies, ExactPrefixOracle,
    HhhParams, PrefixEstimator,
};
pub use hierarchy::{Hierarchy, SrcDstHierarchy, SrcHierarchy};
pub use prefix::{Prefix1D, Prefix2D};
